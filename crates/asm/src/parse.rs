//! Line tokenizer and statement parser.

use flexcore_isa::Reg;

use crate::error::AsmError;

/// A symbolic expression: `sym + addend` (either part optional).
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct Expr {
    pub sym: Option<String>,
    pub addend: i64,
}

impl Expr {
    pub fn constant(v: i64) -> Expr {
        Expr { sym: None, addend: v }
    }
}

/// An immediate operand, possibly wrapped in a relocation operator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum ImmOp {
    /// Plain expression.
    Plain(Expr),
    /// `%hi(expr)`: bits 31:10.
    Hi(Expr),
    /// `%lo(expr)`: bits 9:0.
    Lo(Expr),
}

/// A memory-address index: `[base + index]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum MemIndex {
    Reg(Reg),
    Imm(ImmOp),
}

/// One parsed operand.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Operand {
    Reg(Reg),
    Imm(ImmOp),
    Mem { base: Reg, index: MemIndex },
}

/// One parsed statement (instruction or directive).
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Stmt {
    Inst { mnemonic: String, annul: bool, operands: Vec<Operand> },
    Word(Vec<ImmOp>),
    Half(Vec<ImmOp>),
    Byte(Vec<ImmOp>),
    Ascii(Vec<u8>),
    Space(u32),
    Align(u32),
    Org(u32),
    Equ(String, i64),
}

/// A source line: optional label, optional statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct Line {
    pub num: usize,
    pub label: Option<String>,
    pub stmt: Option<Stmt>,
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Num(i64),
    Str(Vec<u8>),
    Punct(char),
}

struct Lexer<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, msg)
    }

    fn next_tok(&mut self) -> Result<Option<Tok>, AsmError> {
        self.rest = self.rest.trim_start();
        let mut chars = self.rest.chars();
        let Some(c) = chars.next() else { return Ok(None) };
        // Comments end the line.
        if c == '!' || c == '#' {
            self.rest = "";
            return Ok(None);
        }
        match c {
            'a'..='z' | 'A'..='Z' | '_' | '.' | '%' => {
                let end = self
                    .rest
                    .char_indices()
                    .skip(1)
                    .find(|&(_, ch)| !(ch.is_ascii_alphanumeric() || ch == '_'))
                    .map_or(self.rest.len(), |(i, _)| i);
                let (ident, rest) = self.rest.split_at(end);
                self.rest = rest;
                Ok(Some(Tok::Ident(ident.to_string())))
            }
            '0'..='9' => {
                let (value, consumed) = self.lex_number()?;
                self.rest = &self.rest[consumed..];
                Ok(Some(Tok::Num(value)))
            }
            '\'' => {
                let (value, consumed) =
                    lex_char(self.rest).ok_or_else(|| self.err("bad character literal"))?;
                self.rest = &self.rest[consumed..];
                Ok(Some(Tok::Num(value as i64)))
            }
            '"' => {
                let (bytes, consumed) =
                    lex_string(self.rest).ok_or_else(|| self.err("unterminated string literal"))?;
                self.rest = &self.rest[consumed..];
                Ok(Some(Tok::Str(bytes)))
            }
            ',' | '[' | ']' | '+' | '-' | '(' | ')' | ':' => {
                self.rest = chars.as_str();
                Ok(Some(Tok::Punct(c)))
            }
            _ => Err(self.err(format!("unexpected character `{c}`"))),
        }
    }

    fn lex_number(&self) -> Result<(i64, usize), AsmError> {
        let s = self.rest;
        let (radix, body_start) =
            if let Some(r) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                let _ = r;
                (16, 2)
            } else if s.starts_with("0b") || s.starts_with("0B") {
                (2, 2)
            } else {
                (10, 0)
            };
        let body = &s[body_start..];
        let end = body
            .char_indices()
            .find(|&(_, ch)| !ch.is_ascii_alphanumeric())
            .map_or(body.len(), |(i, _)| i);
        if end == 0 {
            return Err(self.err("bad numeric literal"));
        }
        let digits = &body[..end];
        let value = i64::from_str_radix(digits, radix)
            .map_err(|_| self.err(format!("bad numeric literal `{digits}`")))?;
        Ok((value, body_start + end))
    }
}

fn lex_char(s: &str) -> Option<(u8, usize)> {
    // s starts with '\''
    let bytes = s.as_bytes();
    if bytes.len() >= 3 && bytes[1] != b'\\' && bytes[2] == b'\'' {
        return Some((bytes[1], 3));
    }
    if bytes.len() >= 4 && bytes[1] == b'\\' && bytes[3] == b'\'' {
        return Some((unescape(bytes[2])?, 4));
    }
    None
}

fn lex_string(s: &str) -> Option<(Vec<u8>, usize)> {
    // s starts with '"'
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((out, i + 1)),
            b'\\' => {
                out.push(unescape(*bytes.get(i + 1)?)?);
                i += 2;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    None
}

fn unescape(c: u8) -> Option<u8> {
    Some(match c {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'"' => b'"',
        b'\'' => b'\'',
        _ => return None,
    })
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    line: usize,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), AsmError> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, AsmError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parses an expression: `[-] (num | sym | .) (('+'|'-') num)*`.
    /// The bare symbol `.` denotes the current statement's address.
    fn expr(&mut self) -> Result<Expr, AsmError> {
        let neg = self.eat_punct('-');
        let mut e = match self.next() {
            Some(Tok::Num(v)) => Expr::constant(if neg { -v } else { v }),
            Some(Tok::Ident(s)) if s == "." || (!s.starts_with('%') && !s.starts_with('.')) => {
                if neg {
                    return Err(self.err("cannot negate a symbol"));
                }
                Expr { sym: Some(s), addend: 0 }
            }
            other => return Err(self.err(format!("expected expression, found {other:?}"))),
        };
        loop {
            let sign = if self.eat_punct('+') {
                1
            } else if self.eat_punct('-') {
                -1
            } else {
                break;
            };
            match self.next() {
                Some(Tok::Num(v)) => e.addend += sign * v,
                other => {
                    return Err(self.err(format!("expected number after sign, found {other:?}")))
                }
            }
        }
        Ok(e)
    }

    /// Parses an immediate with optional `%hi(...)`/`%lo(...)`.
    fn imm(&mut self) -> Result<ImmOp, AsmError> {
        if let Some(Tok::Ident(id)) = self.peek() {
            if id == "%hi" || id == "%lo" {
                let hi = id == "%hi";
                self.pos += 1;
                self.expect_punct('(')?;
                let e = self.expr()?;
                self.expect_punct(')')?;
                return Ok(if hi { ImmOp::Hi(e) } else { ImmOp::Lo(e) });
            }
        }
        Ok(ImmOp::Plain(self.expr()?))
    }

    fn operand(&mut self) -> Result<Operand, AsmError> {
        match self.peek() {
            Some(Tok::Punct('[')) => {
                self.pos += 1;
                let base = self.reg()?;
                let index = if self.eat_punct(']') {
                    MemIndex::Imm(ImmOp::Plain(Expr::constant(0)))
                } else if self.eat_punct('+') {
                    let idx = match self.peek() {
                        Some(Tok::Ident(id))
                            if id.starts_with('%') && id != "%hi" && id != "%lo" =>
                        {
                            MemIndex::Reg(self.reg()?)
                        }
                        _ => MemIndex::Imm(self.imm()?),
                    };
                    self.expect_punct(']')?;
                    idx
                } else if self.eat_punct('-') {
                    let e = self.expr()?;
                    self.expect_punct(']')?;
                    MemIndex::Imm(ImmOp::Plain(Expr {
                        sym: e.sym.clone(),
                        addend: if e.sym.is_some() {
                            return Err(self.err("cannot negate a symbol in address"));
                        } else {
                            -e.addend
                        },
                    }))
                } else {
                    return Err(self.err("expected `]`, `+`, or `-` in address"));
                };
                Ok(Operand::Mem { base, index })
            }
            Some(Tok::Ident(id)) if id.starts_with('%') && id != "%hi" && id != "%lo" => {
                let r = self.reg()?;
                // `jmpl %o7 + 8, %g0` style: a bare register followed by
                // `+`/`-` forms an address operand without brackets.
                if self.eat_punct('+') {
                    let index = match self.peek() {
                        Some(Tok::Ident(id))
                            if id.starts_with('%') && id != "%hi" && id != "%lo" =>
                        {
                            MemIndex::Reg(self.reg()?)
                        }
                        _ => MemIndex::Imm(self.imm()?),
                    };
                    Ok(Operand::Mem { base: r, index })
                } else if matches!(self.peek(), Some(Tok::Punct('-'))) {
                    // Peek ahead: `-` here must start a negative offset.
                    self.pos += 1;
                    let e = self.expr()?;
                    if e.sym.is_some() {
                        return Err(self.err("cannot negate a symbol in address"));
                    }
                    Ok(Operand::Mem {
                        base: r,
                        index: MemIndex::Imm(ImmOp::Plain(Expr::constant(-e.addend))),
                    })
                } else {
                    Ok(Operand::Reg(r))
                }
            }
            _ => Ok(Operand::Imm(self.imm()?)),
        }
    }

    fn reg(&mut self) -> Result<Reg, AsmError> {
        match self.next() {
            Some(Tok::Ident(id)) => id.parse::<Reg>().map_err(|e| self.err(e.to_string())),
            other => Err(self.err(format!("expected register, found {other:?}"))),
        }
    }

    fn imm_list(&mut self) -> Result<Vec<ImmOp>, AsmError> {
        let mut v = vec![self.imm()?];
        while self.eat_punct(',') {
            v.push(self.imm()?);
        }
        Ok(v)
    }

    fn directive(&mut self, name: &str) -> Result<Stmt, AsmError> {
        match name {
            ".word" => Ok(Stmt::Word(self.imm_list()?)),
            ".half" => Ok(Stmt::Half(self.imm_list()?)),
            ".byte" => Ok(Stmt::Byte(self.imm_list()?)),
            ".ascii" | ".asciz" => {
                let mut bytes = match self.next() {
                    Some(Tok::Str(b)) => b,
                    other => return Err(self.err(format!("expected string, found {other:?}"))),
                };
                if name == ".asciz" {
                    bytes.push(0);
                }
                Ok(Stmt::Ascii(bytes))
            }
            ".space" | ".skip" => match self.next() {
                Some(Tok::Num(n)) if n >= 0 => Ok(Stmt::Space(n as u32)),
                other => Err(self.err(format!("expected size, found {other:?}"))),
            },
            ".align" => match self.next() {
                Some(Tok::Num(n)) if n > 0 && (n as u64).is_power_of_two() => {
                    Ok(Stmt::Align(n as u32))
                }
                other => Err(self.err(format!("expected power-of-two alignment, found {other:?}"))),
            },
            ".org" => match self.next() {
                Some(Tok::Num(n)) if n >= 0 => Ok(Stmt::Org(n as u32)),
                other => Err(self.err(format!("expected address, found {other:?}"))),
            },
            ".equ" | ".set" => {
                let name = self.expect_ident()?;
                self.expect_punct(',')?;
                let e = self.expr()?;
                if e.sym.is_some() {
                    return Err(self.err(".equ value must be a constant"));
                }
                Ok(Stmt::Equ(name, e.addend))
            }
            ".text" | ".data" | ".global" | ".globl" | ".section" => {
                // Accepted and ignored (single flat image); swallow the
                // rest of the line.
                self.pos = self.toks.len();
                Ok(Stmt::Space(0))
            }
            _ => Err(self.err(format!("unknown directive `{name}`"))),
        }
    }

    fn instruction(&mut self, mnemonic: String) -> Result<Stmt, AsmError> {
        // Branch annul suffix: `bne,a target`.
        let mut annul = false;
        if self.peek() == Some(&Tok::Punct(',')) {
            if let Some(Tok::Ident(a)) = self.toks.get(self.pos + 1) {
                if a == "a" {
                    annul = true;
                    self.pos += 2;
                }
            }
        }
        let mut operands = Vec::new();
        if self.peek().is_some() {
            operands.push(self.operand()?);
            while self.eat_punct(',') {
                operands.push(self.operand()?);
            }
        }
        Ok(Stmt::Inst { mnemonic, annul, operands })
    }
}

/// Parses one source line.
pub(crate) fn parse_line(text: &str, num: usize) -> Result<Line, AsmError> {
    let mut lexer = Lexer { rest: text, line: num };
    let mut toks = Vec::new();
    while let Some(t) = lexer.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser { toks, pos: 0, line: num };

    // Optional label.
    let mut label = None;
    if let (Some(Tok::Ident(id)), Some(Tok::Punct(':'))) = (p.toks.first(), p.toks.get(1)) {
        if !id.starts_with('%') && !id.starts_with('.') {
            label = Some(id.clone());
            p.pos = 2;
        }
    }

    let stmt = match p.next() {
        None => None,
        Some(Tok::Ident(id)) if id.starts_with('.') => Some(p.directive(&id)?),
        Some(Tok::Ident(id)) => Some(p.instruction(id)?),
        Some(other) => return Err(p.err(format!("expected mnemonic, found {other:?}"))),
    };
    if p.pos < p.toks.len() {
        return Err(p.err(format!("trailing tokens: {:?}", &p.toks[p.pos..])));
    }
    Ok(Line { num, label, stmt })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_comment_lines() {
        assert_eq!(parse_line("", 1).unwrap().stmt, None);
        assert_eq!(parse_line("   ! just a comment", 2).unwrap().stmt, None);
        assert_eq!(parse_line(" # hash comment", 3).unwrap().stmt, None);
    }

    #[test]
    fn label_only_line() {
        let l = parse_line("loop:", 1).unwrap();
        assert_eq!(l.label.as_deref(), Some("loop"));
        assert_eq!(l.stmt, None);
    }

    #[test]
    fn label_with_instruction() {
        let l = parse_line("top: add %g1, 4, %g2 ! comment", 1).unwrap();
        assert_eq!(l.label.as_deref(), Some("top"));
        let Some(Stmt::Inst { mnemonic, operands, .. }) = l.stmt else { panic!() };
        assert_eq!(mnemonic, "add");
        assert_eq!(operands.len(), 3);
        assert_eq!(operands[0], Operand::Reg(Reg::G1));
        assert_eq!(operands[1], Operand::Imm(ImmOp::Plain(Expr::constant(4))));
    }

    #[test]
    fn memory_operand_forms() {
        let forms = [
            ("ld [%sp], %o0", MemIndex::Imm(ImmOp::Plain(Expr::constant(0)))),
            ("ld [%sp + 8], %o0", MemIndex::Imm(ImmOp::Plain(Expr::constant(8)))),
            ("ld [%sp - 8], %o0", MemIndex::Imm(ImmOp::Plain(Expr::constant(-8)))),
            ("ld [%sp + %g2], %o0", MemIndex::Reg(Reg::G2)),
        ];
        for (src, want) in forms {
            let l = parse_line(src, 1).unwrap();
            let Some(Stmt::Inst { operands, .. }) = l.stmt else { panic!("{src}") };
            let Operand::Mem { base, index } = &operands[0] else { panic!("{src}") };
            assert_eq!(*base, Reg::SP, "{src}");
            assert_eq!(*index, want, "{src}");
        }
    }

    #[test]
    fn annul_suffix() {
        let l = parse_line("bne,a loop", 1).unwrap();
        let Some(Stmt::Inst { mnemonic, annul, .. }) = l.stmt else { panic!() };
        assert_eq!(mnemonic, "bne");
        assert!(annul);
    }

    #[test]
    fn hi_lo_operators() {
        let l = parse_line("sethi %hi(buffer + 4), %g1", 1).unwrap();
        let Some(Stmt::Inst { operands, .. }) = l.stmt else { panic!() };
        assert_eq!(
            operands[0],
            Operand::Imm(ImmOp::Hi(Expr { sym: Some("buffer".into()), addend: 4 }))
        );
    }

    #[test]
    fn numeric_literals() {
        for (src, want) in [
            ("mov 10, %g1", 10),
            ("mov 0x1f, %g1", 0x1f),
            ("mov 0b101, %g1", 5),
            ("mov -3, %g1", -3),
            ("mov 'A', %g1", 65),
        ] {
            let l = parse_line(src, 1).unwrap();
            let Some(Stmt::Inst { operands, .. }) = l.stmt else { panic!("{src}") };
            assert_eq!(operands[0], Operand::Imm(ImmOp::Plain(Expr::constant(want))), "{src}");
        }
    }

    #[test]
    fn directives() {
        assert_eq!(
            parse_line(".word 1, 2, 3", 1).unwrap().stmt,
            Some(Stmt::Word(vec![
                ImmOp::Plain(Expr::constant(1)),
                ImmOp::Plain(Expr::constant(2)),
                ImmOp::Plain(Expr::constant(3)),
            ]))
        );
        assert_eq!(parse_line(".space 64", 1).unwrap().stmt, Some(Stmt::Space(64)));
        assert_eq!(parse_line(".align 4", 1).unwrap().stmt, Some(Stmt::Align(4)));
        assert_eq!(parse_line(".org 0x2000", 1).unwrap().stmt, Some(Stmt::Org(0x2000)));
        assert_eq!(
            parse_line(".equ SIZE, 128", 1).unwrap().stmt,
            Some(Stmt::Equ("SIZE".into(), 128))
        );
        assert_eq!(
            parse_line(".asciz \"hi\\n\"", 1).unwrap().stmt,
            Some(Stmt::Ascii(vec![b'h', b'i', b'\n', 0]))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_line("add %g1 %g2", 42).unwrap_err();
        assert_eq!(e.line(), 42);
        assert!(parse_line(".align 3", 1).is_err());
        assert!(parse_line("mov @, %g1", 1).is_err());
        assert!(parse_line(".asciz \"unterminated", 1).is_err());
    }

    #[test]
    fn symbol_plus_offset_expression() {
        let l = parse_line(".word table + 8 - 4", 1).unwrap();
        assert_eq!(
            l.stmt,
            Some(Stmt::Word(vec![ImmOp::Plain(Expr { sym: Some("table".into()), addend: 4 })]))
        );
    }
}
