/root/repo/target/debug/deps/ablations-0251ee676938f41c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-0251ee676938f41c.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
