/root/repo/target/debug/deps/flexcore_suite-d6447d4ea50419d7.d: src/lib.rs

/root/repo/target/debug/deps/flexcore_suite-d6447d4ea50419d7: src/lib.rs

src/lib.rs:
