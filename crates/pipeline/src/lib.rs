//! Leon3-like in-order SPARC core model.
//!
//! The FlexCore paper prototypes on Leon3: a synthesizable 32-bit SPARC
//! V8 processor with a single-issue, in-order, 7-stage pipeline,
//! 32-KB write-through L1 caches, and an AMBA bus to off-chip SDRAM.
//! This crate models that core at the level the paper's evaluation
//! depends on:
//!
//! * **Functional execution** of the SPARC subset in [`flexcore_isa`],
//!   with the pc/npc delay-slot architecture, annulled slots,
//!   condition codes, traps (`ta` halts the program), and big-endian
//!   memory.
//! * **Commit-driven timing**: one base cycle per instruction, plus
//!   I-cache and D-cache misses (refilled over the shared
//!   [`SystemBus`](flexcore_mem::SystemBus)), write-through store
//!   traffic through a [`StoreBuffer`](flexcore_mem::StoreBuffer),
//!   load-use and multiply/divide latencies.
//! * A **commit-stage tap**: every committed instruction is described
//!   by a [`TracePacket`] carrying exactly the fields of the paper's
//!   Table II forward-FIFO packet (PC, undecoded instruction, address,
//!   result, both source values, condition codes, branch direction, and
//!   the decoded opcode/register fields). The FlexCore interface crate
//!   consumes these packets.
//!
//! The model is *commit-driven*: stalls are charged at the instruction
//! that suffers them rather than tracked per stage. For a single-issue
//! in-order core this reproduces cycle counts at the fidelity the
//! paper's experiments need (CPI, miss behaviour, bus contention, FIFO
//! back-pressure).
//!
//! # Example
//!
//! ```
//! use flexcore_asm::assemble;
//! use flexcore_mem::{MainMemory, SystemBus};
//! use flexcore_pipeline::{Core, CoreConfig, ExitReason};
//!
//! let program = assemble("
//!     start:  mov 10, %o0
//!             mov 0, %o1
//!     loop:   add %o1, %o0, %o1
//!             subcc %o0, 1, %o0
//!             bne loop
//!             nop
//!             ta 0
//! ")?;
//! let mut mem = MainMemory::new();
//! let mut bus = SystemBus::default();
//! let mut core = Core::new(CoreConfig::leon3());
//! core.load_program(&program, &mut mem);
//! let exit = core.run(&mut mem, &mut bus, 1_000_000);
//! assert_eq!(exit, ExitReason::Halt(0));
//! assert_eq!(core.reg(flexcore_isa::Reg::O1), 55); // sum 1..=10
//! # Ok::<(), flexcore_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod alu;
mod config;
mod core;
#[cfg(feature = "serde")]
mod serde_impls;
mod stats;
mod trace;

pub use config::CoreConfig;
pub use core::{Core, CoreSnapshot, ExitReason, StepResult};
pub use stats::CoreStats;
pub use trace::TracePacket;

/// Byte stores to this address appear on the simulated console
/// (see [`Core::console`]).
pub const CONSOLE_ADDR: u32 = 0xffff_0000;
