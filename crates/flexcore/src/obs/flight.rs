//! The crash-context flight recorder: a ring buffer of the last N
//! committed instructions.

use std::collections::VecDeque;
use std::fmt;

use flexcore_isa::Instruction;
use flexcore_pipeline::TracePacket;

use crate::obs::{TraceEvent, TraceSink};

/// One committed instruction as remembered by the [`FlightRecorder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// Core-clock cycle of the commit.
    pub cycle: u64,
    /// Committed-instruction count after this commit (1-based).
    pub instret: u64,
    /// Program counter.
    pub pc: u32,
    /// The committed instruction, decoded (its `Display` is the
    /// disassembly).
    pub inst: Instruction,
}

impl fmt::Display for FlightEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {:#010x} {}", self.instret, self.cycle, self.pc, self.inst)
    }
}

/// A [`TraceSink`] that keeps the last `depth` committed instructions
/// and freezes a copy at the first monitor trap.
///
/// FlexCore exceptions are imprecise (§III.C): by the time the TRAP
/// signal asserts, the core has committed past the violating
/// instruction. The frozen [`at_trap`](FlightRecorder::at_trap) log
/// therefore shows the violating instruction *and* the skid behind it —
/// exactly the context a monitor-trap diagnosis needs. The live log is
/// what [`System`](crate::System) attaches to deadlock snapshots and
/// the final [`RunResult`](crate::RunResult).
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    depth: usize,
    ring: VecDeque<FlightEntry>,
    instret: u64,
    at_trap: Option<Vec<FlightEntry>>,
}

impl FlightRecorder {
    /// A recorder remembering the last `depth` commits (clamped to
    /// ≥ 1).
    pub fn new(depth: usize) -> FlightRecorder {
        let depth = depth.max(1);
        FlightRecorder {
            depth,
            ring: VecDeque::with_capacity(depth.min(4096)),
            instret: 0,
            at_trap: None,
        }
    }

    /// Configured ring depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The live log, oldest entry first.
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        self.ring.iter()
    }

    /// The log as it stood when the first monitor trap was scheduled
    /// (`None` if no trap fired). Because the trap is scheduled at the
    /// violating commit, the newest entry here *is* the violating
    /// instruction.
    pub fn at_trap(&self) -> Option<&[FlightEntry]> {
        self.at_trap.as_deref()
    }

    /// Discards the frozen trap snapshot so the next trap freezes a
    /// fresh one. The recovery supervisor calls this after a successful
    /// restore — the pre-recovery snapshot describes a timeline that was
    /// rolled back.
    pub fn rearm(&mut self) {
        self.at_trap = None;
    }
}

impl TraceSink for FlightRecorder {
    fn event(&mut self, ev: TraceEvent) {
        if let TraceEvent::Trap { .. } = ev {
            if self.at_trap.is_none() {
                self.at_trap = Some(self.ring.iter().copied().collect());
            }
        }
    }

    fn commit_packet(&mut self, pkt: &TracePacket) {
        self.instret += 1;
        if self.ring.len() == self.depth {
            self.ring.pop_front();
        }
        self.ring.push_back(FlightEntry {
            cycle: pkt.commit_cycle,
            instret: self.instret,
            pc: pkt.pc,
            inst: pkt.inst,
        });
    }

    fn flight_log(&self) -> Vec<FlightEntry> {
        self.ring.iter().copied().collect()
    }

    fn rearm_flight(&mut self) {
        self.rearm();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::tests_util::packet;
    use flexcore_isa::{Instruction, Reg};

    fn pkt(pc: u32, cycle: u64) -> TracePacket {
        let mut p = packet(Instruction::Sethi { rd: Reg::O0, imm22: 1 });
        p.pc = pc;
        p.commit_cycle = cycle;
        p
    }

    #[test]
    fn ring_keeps_only_the_newest_entries() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u32 {
            fr.commit_packet(&pkt(i * 4, u64::from(i) + 10));
        }
        let log = fr.flight_log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].pc, 8, "oldest surviving entry");
        assert_eq!(log[2].pc, 16, "newest entry last");
        assert_eq!(log[2].instret, 5);
    }

    #[test]
    fn trap_freezes_a_snapshot_while_live_log_moves_on() {
        let mut fr = FlightRecorder::new(2);
        fr.commit_packet(&pkt(0, 1));
        fr.commit_packet(&pkt(4, 2));
        fr.event(TraceEvent::Trap { cycle: 9, pc: 4, instret: 2 });
        fr.commit_packet(&pkt(8, 3));
        let frozen = fr.at_trap().expect("trap seen");
        assert_eq!(frozen.last().unwrap().pc, 4, "violating instruction is newest");
        assert_eq!(fr.flight_log().last().unwrap().pc, 8, "live log advanced");
    }

    #[test]
    fn rearm_lets_a_second_trap_freeze_a_fresh_snapshot() {
        let mut fr = FlightRecorder::new(2);
        fr.commit_packet(&pkt(0, 1));
        fr.event(TraceEvent::Trap { cycle: 5, pc: 0, instret: 1 });
        assert_eq!(fr.at_trap().unwrap().last().unwrap().pc, 0);
        // Recovery rolled the trap back; the stale snapshot goes away.
        fr.rearm();
        assert!(fr.at_trap().is_none());
        fr.commit_packet(&pkt(4, 2));
        fr.commit_packet(&pkt(8, 3));
        fr.event(TraceEvent::Trap { cycle: 9, pc: 8, instret: 3 });
        let frozen = fr.at_trap().expect("second trap freezes again");
        assert_eq!(frozen.last().unwrap().pc, 8, "fresh snapshot, not the stale one");
    }

    #[test]
    fn entry_display_is_one_line() {
        let mut fr = FlightRecorder::new(1);
        fr.commit_packet(&pkt(0x1000, 42));
        let line = fr.flight_log()[0].to_string();
        assert!(line.starts_with("1 42 0x00001000 "), "got: {line}");
        assert!(!line.contains('\n'));
    }
}
