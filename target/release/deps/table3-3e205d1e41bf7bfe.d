/root/repo/target/release/deps/table3-3e205d1e41bf7bfe.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-3e205d1e41bf7bfe: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
