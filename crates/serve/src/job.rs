//! Campaign jobs: what a client submits to `flexserve`.
//!
//! A [`JobSpec`] describes one fault campaign — the sweep parameters,
//! the workload set, and the recovery policy — and deterministically
//! expands into the same trial list `faultsweep` would run (via
//! [`flexcore_bench::trial`]). Jobs are keyed by a campaign hash
//! ([`JobId`]) over the work-defining fields, so a resubmitted or
//! resumed campaign maps to the same journal file, and two jobs that
//! would do identical work collide as duplicates at admission.

use flexcore::recovery::RecoveryPolicy;
use flexcore_bench::trial::{
    campaign1_trials, reconfig_trials, sweep_trials, CampaignSpec, TrialSpec,
};
use flexcore_workloads::Workload;
use serde::Value;

/// Stable identity of a campaign: an FNV-1a hash of the canonical
/// work-defining spec fields (everything except `name` and
/// `priority`, which affect labeling and scheduling but not the work).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Why a [`JobSpec`] could not be interpreted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobSpecError {
    /// A workload name that is not in the reproduction's kernel set.
    UnknownWorkload(String),
    /// The spec asked for an empty workload set or zero trials.
    EmptyCampaign,
    /// A spec file/record that does not decode.
    Malformed(String),
}

impl std::fmt::Display for JobSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobSpecError::UnknownWorkload(w) => {
                let known: Vec<&str> = known_workloads().iter().map(|w| w.name()).collect();
                write!(f, "unknown workload `{w}` (known: {})", known.join(", "))
            }
            JobSpecError::EmptyCampaign => {
                write!(f, "campaign would run zero trials (empty workload set or trials = 0)")
            }
            JobSpecError::Malformed(detail) => write!(f, "malformed job spec: {detail}"),
        }
    }
}

impl std::error::Error for JobSpecError {}

fn known_workloads() -> Vec<Workload> {
    let mut all = Workload::all();
    all.extend(Workload::extra());
    all
}

/// One fault-campaign job: the unit of admission, scheduling, and
/// journaling.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human-readable label (not part of the campaign hash).
    pub name: String,
    /// Campaign seed — every trial seed derives from it.
    pub seed: u64,
    /// Campaign-1 trials per workload (single-bit ALU flips under SEC).
    pub trials: usize,
    /// Workload names (resolved against the reproduction kernel set).
    pub workloads: Vec<String>,
    /// Step the ISA-level golden model on every trial.
    pub lockstep: bool,
    /// Run campaign-1 trials under the rollback-and-replay supervisor
    /// with Masked/Recovered/SDC/DUE triage.
    pub recover: bool,
    /// Also run the rate × target sweep (campaigns 2–3).
    pub sweep: bool,
    /// Also run the reconfig-window campaign: per workload, `trials`
    /// UMC → CFI hot-swaps with bitstream faults striking inside the
    /// swap window (requires `recover` for triage; without it the
    /// trials still run but exhaustion surfaces as an error outcome).
    pub reconfig: bool,
    /// Scheduling priority: higher runs first, and under queue
    /// overload the lowest-priority queued job is shed first.
    pub priority: u8,
    /// Supervisor knobs for `recover` trials.
    pub policy: RecoveryPolicy,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            name: "campaign".to_string(),
            seed: 0xf1ec,
            trials: 8,
            workloads: vec!["sha".to_string(), "bitcount".to_string()],
            lockstep: false,
            recover: false,
            sweep: false,
            reconfig: false,
            priority: 1,
            policy: RecoveryPolicy::default(),
        }
    }
}

impl JobSpec {
    /// The canonical work-defining serialization — the campaign-hash
    /// preimage and the string journal headers are checked against on
    /// resume. Excludes `name` and `priority` deliberately: renaming or
    /// reprioritizing a campaign must not orphan its journal.
    pub fn canonical(&self) -> String {
        let mut v = Value::object()
            .field("seed", &self.seed)
            .field("trials", &(self.trials as u64))
            .field("workloads", &self.workloads)
            .field("lockstep", &self.lockstep)
            .field("recover", &self.recover)
            .field("sweep", &self.sweep);
        // Stamped only when set, so every pre-reconfig campaign keeps
        // its hash (and therefore its journal file) across the upgrade.
        if self.reconfig {
            v = v.field("reconfig", &true);
        }
        serde::to_string(&v.field("policy", &self.policy).build())
    }

    /// The campaign hash keying this job's queue slot and journal file.
    pub fn id(&self) -> JobId {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.canonical().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        JobId(h)
    }

    /// The journal header record stamped as line 1 of this campaign's
    /// journal.
    pub fn header(&self) -> Value {
        Value::object()
            .field("flexserve", &1u64)
            .field("campaign", &self.id().to_string())
            .field("name", &self.name)
            .field("spec", &self.canonical())
            .build()
    }

    /// Serializes the full spec (spec-file shape; includes `name` and
    /// `priority`).
    pub fn to_value(&self) -> Value {
        Value::object()
            .field("name", &self.name)
            .field("seed", &self.seed)
            .field("trials", &(self.trials as u64))
            .field("workloads", &self.workloads)
            .field("lockstep", &self.lockstep)
            .field("recover", &self.recover)
            .field("sweep", &self.sweep)
            .field("reconfig", &self.reconfig)
            .field("priority", &(u64::from(self.priority)))
            .field("policy", &self.policy)
            .build()
    }

    /// Decodes a spec-file object; absent fields keep their defaults.
    pub fn from_value(v: &Value) -> Result<JobSpec, JobSpecError> {
        let d = JobSpec::default();
        let bool_or = |key: &str, fallback: bool| match v.get(key) {
            Some(Value::Bool(b)) => *b,
            _ => fallback,
        };
        let spec = JobSpec {
            name: v.get("name").and_then(Value::as_str).unwrap_or(&d.name).to_string(),
            seed: v.get("seed").and_then(Value::as_u64).unwrap_or(d.seed),
            trials: v.get("trials").and_then(Value::as_u64).unwrap_or(d.trials as u64) as usize,
            workloads: match v.get("workloads") {
                Some(Value::Array(items)) => {
                    let mut names = Vec::with_capacity(items.len());
                    for item in items {
                        match item.as_str() {
                            Some(s) => names.push(s.to_string()),
                            None => {
                                return Err(JobSpecError::Malformed(
                                    "`workloads` must be an array of strings".into(),
                                ))
                            }
                        }
                    }
                    names
                }
                Some(_) => {
                    return Err(JobSpecError::Malformed("`workloads` must be an array".into()))
                }
                None => d.workloads,
            },
            lockstep: bool_or("lockstep", d.lockstep),
            recover: bool_or("recover", d.recover),
            sweep: bool_or("sweep", d.sweep),
            reconfig: bool_or("reconfig", d.reconfig),
            priority: v.get("priority").and_then(Value::as_u64).unwrap_or(u64::from(d.priority))
                as u8,
            policy: v.get("policy").map_or(d.policy, RecoveryPolicy::from_value),
        };
        spec.resolve_workloads()?;
        Ok(spec)
    }

    /// Parses a JSON spec file's contents.
    pub fn from_json(text: &str) -> Result<JobSpec, JobSpecError> {
        let v = serde::from_str(text).map_err(|e| JobSpecError::Malformed(e.to_string()))?;
        JobSpec::from_value(&v)
    }

    /// Resolves the workload names against the kernel set.
    pub fn resolve_workloads(&self) -> Result<Vec<Workload>, JobSpecError> {
        let known = known_workloads();
        let mut out = Vec::with_capacity(self.workloads.len());
        for name in &self.workloads {
            match known.iter().find(|w| w.name() == name.as_str()) {
                Some(w) => out.push(*w),
                None => return Err(JobSpecError::UnknownWorkload(name.clone())),
            }
        }
        Ok(out)
    }

    /// Expands the job into its full trial list — campaign-1 ALU flips
    /// for every workload, then (with `sweep`) the rate × target
    /// sweep, then (with `reconfig`) the reconfig-window hot-swap
    /// trials — in exactly the order `faultsweep` runs and records
    /// them, so a merged `flexserve` trial log diffs clean against a
    /// `faultsweep` progress log.
    pub fn trial_specs(&self) -> Result<Vec<TrialSpec>, JobSpecError> {
        let workloads = self.resolve_workloads()?;
        if workloads.is_empty() || self.trials == 0 {
            return Err(JobSpecError::EmptyCampaign);
        }
        let cspec = CampaignSpec {
            seed: self.seed,
            trials: self.trials,
            lockstep: self.lockstep,
            recover: self.recover,
            policy: self.policy,
        };
        let mut trials = campaign1_trials(&cspec, &workloads);
        if self.sweep {
            trials.extend(sweep_trials(&cspec, &workloads));
        }
        if self.reconfig {
            trials.extend(reconfig_trials(&cspec, &workloads));
        }
        Ok(trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_hash_ignores_name_and_priority_only() {
        let a = JobSpec::default();
        let renamed = JobSpec { name: "other".into(), priority: 7, ..a.clone() };
        assert_eq!(a.id(), renamed.id(), "name/priority are not work-defining");

        let reseeded = JobSpec { seed: 1, ..a.clone() };
        assert_ne!(a.id(), reseeded.id());
        let resized = JobSpec { trials: a.trials + 1, ..a.clone() };
        assert_ne!(a.id(), resized.id());
        let swept = JobSpec { sweep: true, ..a.clone() };
        assert_ne!(a.id(), swept.id());
        let reconfigured = JobSpec { reconfig: true, ..a.clone() };
        assert_ne!(a.id(), reconfigured.id());
        // The reconfig stamp is append-only: a job that does not ask
        // for it serializes exactly as it did before the field existed,
        // so pre-upgrade journals still match their campaign hash.
        assert!(!a.canonical().contains("reconfig"));
        let repoliced = JobSpec {
            policy: RecoveryPolicy { max_replays: 9, ..RecoveryPolicy::default() },
            ..a.clone()
        };
        assert_ne!(a.id(), repoliced.id());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = JobSpec {
            name: "soak".into(),
            seed: 0xabcd,
            trials: 12,
            workloads: vec!["bitcount".into()],
            lockstep: true,
            recover: true,
            sweep: true,
            reconfig: true,
            priority: 3,
            policy: RecoveryPolicy { checkpoint_every: 512, ..RecoveryPolicy::default() },
        };
        let json = serde::to_string(&spec.to_value());
        let back = JobSpec::from_json(&json).expect("roundtrips");
        assert_eq!(back, spec);
        assert_eq!(back.id(), spec.id());
    }

    #[test]
    fn unknown_workloads_are_a_typed_error() {
        let spec = JobSpec { workloads: vec!["doom".into()], ..JobSpec::default() };
        let err = spec.trial_specs().expect_err("doom is not a kernel");
        assert_eq!(err, JobSpecError::UnknownWorkload("doom".into()));
        assert!(err.to_string().contains("sha"), "error lists the known kernels: {err}");
    }

    #[test]
    fn trial_expansion_matches_the_faultsweep_shape() {
        let spec = JobSpec { trials: 2, sweep: true, ..JobSpec::default() };
        let trials = spec.trial_specs().expect("expands");
        // campaign-1: 2 trials × 2 workloads; sweep: 2 × 4 ext × 4
        // targets × 4 rates.
        assert_eq!(trials.len(), 4 + 128);
        assert_eq!(trials[0].label, "sha trial 0");
        assert_eq!(trials[2].label, "bitcount trial 0");
        assert_eq!(trials[4].label, "sha UMC result rate 0");
        let labels: std::collections::HashSet<&str> =
            trials.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels.len(), trials.len(), "labels are unique resume keys");
    }

    #[test]
    fn reconfig_jobs_append_the_swap_window_trials() {
        let spec = JobSpec { trials: 2, reconfig: true, recover: true, ..JobSpec::default() };
        let trials = spec.trial_specs().expect("expands");
        // campaign-1: 2 × 2 workloads; reconfig: 2 × 2 workloads.
        assert_eq!(trials.len(), 4 + 4);
        assert_eq!(trials[4].label, "sha swap 0");
        assert_eq!(trials[6].label, "bitcount swap 0");
        assert!(trials[4].recover, "swap trials inherit the job's recovery setting");
    }

    #[test]
    fn empty_campaigns_are_refused() {
        let spec = JobSpec { trials: 0, ..JobSpec::default() };
        assert_eq!(spec.trial_specs().expect_err("zero trials"), JobSpecError::EmptyCampaign);
        let spec = JobSpec { workloads: Vec::new(), ..JobSpec::default() };
        assert_eq!(spec.trial_specs().expect_err("no workloads"), JobSpecError::EmptyCampaign);
    }
}
