/root/repo/target/release/deps/faultsweep-835274a78954e6e1.d: crates/bench/src/bin/faultsweep.rs

/root/repo/target/release/deps/faultsweep-835274a78954e6e1: crates/bench/src/bin/faultsweep.rs

crates/bench/src/bin/faultsweep.rs:
