/root/repo/target/debug/deps/flexsim-a65cd8c03267807b.d: crates/bench/src/bin/flexsim.rs

/root/repo/target/debug/deps/libflexsim-a65cd8c03267807b.rmeta: crates/bench/src/bin/flexsim.rs

crates/bench/src/bin/flexsim.rs:
