/root/repo/target/debug/deps/ablations-2cf425361181ca80.d: tests/ablations.rs

/root/repo/target/debug/deps/libablations-2cf425361181ca80.rmeta: tests/ablations.rs

tests/ablations.rs:
