/root/repo/target/debug/examples/fifo_sweep-fd2ebb05a753aee2.d: examples/fifo_sweep.rs

/root/repo/target/debug/examples/fifo_sweep-fd2ebb05a753aee2: examples/fifo_sweep.rs

examples/fifo_sweep.rs:
