//! Reproduction-shape assertions: the qualitative claims of the
//! paper's evaluation must hold in this reproduction (see DESIGN.md §3
//! for the pass criteria). Absolute numbers are checked loosely; the
//! *orderings* and *crossovers* are checked strictly.
//!
//! These tests run a subset of the workloads to keep `cargo test`
//! affordable; the full sweeps live in the `flexcore-bench` binaries.

use flexcore_suite::fabric::{AsicCost, FpgaCost};
use flexcore_suite::flexcore::ext::{Bc, Dift, Extension, Sec, Umc};
use flexcore_suite::flexcore::software::{run_software_monitored, SoftwareMonitor};
use flexcore_suite::flexcore::{System, SystemConfig};
use flexcore_suite::mem::{MainMemory, SystemBus};
use flexcore_suite::pipeline::{Core, CoreConfig, ExitReason};
use flexcore_suite::workloads::Workload;

fn baseline(w: &Workload) -> u64 {
    let program = w.program().unwrap();
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    assert_eq!(core.run(&mut mem, &mut bus, 100_000_000), ExitReason::Halt(0));
    core.quiesced_at()
}

fn monitored<E: Extension>(w: &Workload, cfg: SystemConfig, ext: E) -> (u64, f64) {
    let program = w.program().unwrap();
    let mut sys = System::new(cfg, ext);
    sys.load_program(&program);
    let r = sys.try_run(100_000_000).expect("simulation error");
    assert_eq!(r.exit, ExitReason::Halt(0), "{}: {:?}", w.name(), r.monitor_trap);
    (r.cycles, r.forward.forwarded_fraction())
}

/// Table IV shape on a fast benchmark (bitcount): ASIC (1X) is nearly
/// free; 0.5X costs more; 0.25X costs the most; UMC stays near 1.0
/// throughout.
#[test]
fn table_iv_slowdowns_order_by_fabric_clock() {
    let w = Workload::bitcount();
    let base = baseline(&w) as f64;
    let (d1, _) = monitored(&w, SystemConfig::fabric_full_speed(), Dift::new());
    let (d2, _) = monitored(&w, SystemConfig::fabric_half_speed(), Dift::new());
    let (d4, _) = monitored(&w, SystemConfig::fabric_quarter_speed(), Dift::new());
    let (r1, r2, r4) = (d1 as f64 / base, d2 as f64 / base, d4 as f64 / base);
    assert!(r1 <= r2 && r2 <= r4, "{r1} {r2} {r4}");
    assert!(r1 < 1.1, "ASIC-speed DIFT should be nearly free: {r1}");
    assert!(r2 > 1.05 && r2 < 1.6, "half-speed DIFT in the paper's regime: {r2}");
    assert!(r4 > r2 + 0.1, "quarter speed clearly worse: {r4} vs {r2}");

    let (u2, _) = monitored(&w, SystemConfig::fabric_half_speed(), Umc::new());
    assert!(u2 as f64 / base < 1.05, "UMC at 0.5X is nearly free (paper: 1.02)");
}

/// Figure 4 shape: forwarded fraction ordering UMC < SEC <= BC <= DIFT
/// on every tested benchmark.
#[test]
fn figure_4_forwarding_fractions_order() {
    for w in [Workload::sha(), Workload::bitcount()] {
        let cfg = SystemConfig::fabric_full_speed();
        let (_, umc) = monitored(&w, cfg, Umc::new());
        let (_, dift) = monitored(&w, cfg, Dift::new());
        let (_, bc) = monitored(&w, cfg, Bc::new());
        let (_, sec) = monitored(&w, cfg, Sec::new());
        assert!(umc < sec, "{}: UMC {umc} < SEC {sec}", w.name());
        assert!(sec <= bc + 1e-9, "{}: SEC {sec} <= BC {bc}", w.name());
        assert!(bc <= dift + 1e-9, "{}: BC {bc} <= DIFT {dift}", w.name());
        assert!(dift < 0.95, "{}: nothing forwards everything", w.name());
    }
}

/// Figure 5 shape: small FIFOs are worse; 64 entries is on the flat
/// part of the curve.
#[test]
fn figure_5_fifo_size_curve_flattens() {
    let w = Workload::sha();
    let tiny = monitored(&w, SystemConfig::fabric_half_speed().with_fifo_depth(2), Dift::new()).0;
    let small = monitored(&w, SystemConfig::fabric_half_speed().with_fifo_depth(8), Dift::new()).0;
    let paper = monitored(&w, SystemConfig::fabric_half_speed().with_fifo_depth(64), Dift::new()).0;
    let huge = monitored(&w, SystemConfig::fabric_half_speed().with_fifo_depth(512), Dift::new()).0;
    assert!(tiny > small, "2-entry {tiny} worse than 8-entry {small}");
    assert!(small >= paper, "8-entry {small} >= 64-entry {paper}");
    let flat = (paper as f64 - huge as f64).abs() / paper as f64;
    assert!(flat < 0.01, "64 -> 512 entries changes things by {flat}: already flat");
}

/// §V.C: software monitoring is far slower than FlexCore monitoring of
/// the same program.
#[test]
fn software_monitoring_is_an_order_slower_than_flexcore() {
    let w = Workload::bitcount();
    let program = w.program().unwrap();
    let base = baseline(&w) as f64;
    let (flex, _) = monitored(&w, SystemConfig::fabric_half_speed(), Dift::new());
    let sw = run_software_monitored(&SoftwareMonitor::dift(), &program, 100_000_000);
    let flex_ratio = flex as f64 / base;
    let sw_ratio = sw.cycles as f64 / base;
    assert!(sw_ratio > 2.5, "software DIFT should be >2.5x: {sw_ratio}");
    assert!(
        sw_ratio > 2.0 * flex_ratio,
        "software ({sw_ratio:.2}x) must be far worse than FlexCore ({flex_ratio:.2}x)"
    );
}

/// Table III shapes: LUT ordering UMC < DIFT < BC < SEC; fabric runs at
/// roughly half the core clock or less; ASIC logic is far denser than
/// the fabric; every extension fits the paper's 0.4 mm^2 fabric budget
/// (with margin for this mapper's LUT inflation).
#[test]
fn table_iii_cost_orderings() {
    let netlists =
        [Umc::new().netlist(), Dift::new().netlist(), Bc::new().netlist(), Sec::new().netlist()];
    let fpga: Vec<FpgaCost> = netlists.iter().map(FpgaCost::of).collect();
    let luts: Vec<usize> = fpga.iter().map(FpgaCost::luts).collect();
    assert!(luts.windows(2).all(|w| w[0] < w[1]), "LUT ordering: {luts:?}");

    for f in &fpga {
        assert!(
            f.fmax_mhz() < 465.0 * 0.62,
            "{}: fabric must be well below the 465 MHz core ({} MHz)",
            f.name(),
            f.fmax_mhz()
        );
        assert!(f.fmax_mhz() > 150.0, "{}: not absurdly slow", f.name());
        assert!(f.area_um2() < 650_000.0, "{}: fits a ~0.65 mm^2 fabric", f.name());
    }
    // SEC is the slowest fabric design (deepest pipeline), as in the
    // paper (213 MHz).
    let sec_fmax = fpga[3].fmax_mhz();
    assert!(fpga.iter().all(|f| f.fmax_mhz() >= sec_fmax));

    for n in &netlists {
        let a = AsicCost::of(n);
        let f = FpgaCost::of(n);
        assert!(
            a.area_um2() * 10.0 < f.area_um2(),
            "{}: ASIC logic should be >10x denser than LUTs",
            n.name()
        );
    }
}

/// §VII future work, quantified: a faster-committing core puts
/// proportionally more pressure on a fixed-ratio fabric, so monitoring
/// overhead grows with commit width.
#[test]
fn superscalar_cores_need_faster_fabrics() {
    let w = Workload::bitcount();
    let overhead_at = |width: u32| {
        let core = flexcore_suite::pipeline::CoreConfig::superscalar(width);
        // Width-matched baseline.
        let program = w.program().unwrap();
        let mut mem = MainMemory::new();
        let mut bus = SystemBus::default();
        let mut c = flexcore_suite::pipeline::Core::new(core);
        c.load_program(&program, &mut mem);
        assert_eq!(c.run(&mut mem, &mut bus, 100_000_000), ExitReason::Halt(0));
        let base = c.quiesced_at() as f64;
        let mut cfg = SystemConfig::fabric_half_speed();
        cfg.core = core;
        let (cycles, _) = monitored(&w, cfg, Dift::new());
        cycles as f64 / base
    };
    let w1 = overhead_at(1);
    let w2 = overhead_at(2);
    let w4 = overhead_at(4);
    assert!(w2 > w1, "2-wide overhead {w2} must exceed 1-wide {w1}");
    assert!(w4 > w2, "4-wide overhead {w4} must exceed 2-wide {w2}");
}

/// The meta-data subsystem is exercised for real: a monitored run of
/// the big-footprint workload generates meta-cache misses and fabric
/// bus traffic.
#[test]
fn meta_data_traffic_is_real() {
    let w = Workload::stringsearch();
    let program = w.program().unwrap();
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Bc::new());
    sys.load_program(&program);
    let r = sys.try_run(100_000_000).expect("simulation error");
    assert_eq!(r.exit, ExitReason::Halt(0));
    assert!(r.meta_cache.accesses() > 100_000, "{}", r.meta_cache.accesses());
    assert!(r.meta_cache.miss_ratio() > 0.001, "{}", r.meta_cache.miss_ratio());
    assert!(r.bus.fabric_transfers > 100, "{}", r.bus.fabric_transfers);
}
