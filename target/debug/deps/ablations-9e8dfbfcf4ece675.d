/root/repo/target/debug/deps/ablations-9e8dfbfcf4ece675.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-9e8dfbfcf4ece675: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
