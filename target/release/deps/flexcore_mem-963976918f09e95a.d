/root/repo/target/release/deps/flexcore_mem-963976918f09e95a.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

/root/repo/target/release/deps/libflexcore_mem-963976918f09e95a.rlib: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

/root/repo/target/release/deps/libflexcore_mem-963976918f09e95a.rmeta: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/mainmem.rs:
crates/mem/src/metacache.rs:
crates/mem/src/serde_impls.rs:
crates/mem/src/storebuf.rs:
