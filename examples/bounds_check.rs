//! BC demo: color-tag bound checking catches a buffer overrun that
//! walks off the end of one heap allocation into its neighbor — even
//! though the neighboring memory is itself validly allocated (the case
//! guard-zone schemes miss, §IV.C).
//!
//! ```sh
//! cargo run --example bounds_check
//! ```

use flexcore_suite::asm::assemble;
use flexcore_suite::flexcore::ext::{bc, Bc};
use flexcore_suite::flexcore::{System, SystemConfig};
use flexcore_suite::isa::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two adjacent 8-word "heap allocations" with distinct colors.
    // The program writes NWRITES words through a pointer into array A.
    let run = |nwrites: u32| -> Result<_, Box<dyn std::error::Error>> {
        let program = assemble(&format!(
            "start:  ! malloc() returns A: color the block and pointer 3.
                set array_a, %o0
                set {len_color_a}, %o1
                cpop1 {color_range}, %o0, %o1, %g0
                mov {reg_o0}, %o2
                mov 3, %o3
                cpop1 {set_reg}, %o2, %o3, %g0
                ! malloc() returns B right after A: color 9.
                set array_b, %o4
                set {len_color_b}, %o1
                cpop1 {color_range}, %o4, %o1, %g0
                ! Write {nwrites} words through the A pointer.
                mov {nwrites}, %o1
        wloop:  st %o1, [%o0]
                add %o0, 4, %o0
                subcc %o1, 1, %o1
                bne wloop
                nop
                ta 0
                .align 4
        array_a: .space 32
        array_b: .space 32",
            color_range = bc::ops::COLOR_RANGE,
            set_reg = bc::ops::SET_REG_COLOR,
            reg_o0 = Reg::O0.index(),
            len_color_a = (32 << 4) | 3,
            len_color_b = (32 << 4) | 9,
        ))?;
        let mut sys = System::new(SystemConfig::fabric_half_speed(), Bc::new());
        sys.load_program(&program);
        Ok(sys.try_run(100_000).expect("simulation error"))
    };

    // 8 writes: exactly fills A. In bounds.
    let ok = run(8)?;
    assert!(ok.monitor_trap.is_none(), "in-bounds run must pass: {:?}", ok.monitor_trap);
    println!("8 writes (fills A exactly):   ok, no trap");

    // 9 writes: the ninth lands in B. B is allocated memory, so an
    // address-validity check would accept it — the color check does
    // not.
    let overrun = run(9)?;
    match &overrun.monitor_trap {
        Some(trap) => println!("9 writes (overruns into B):  {trap}"),
        None => println!("9 writes: overrun NOT detected"),
    }
    assert!(overrun.monitor_trap.is_some(), "BC must catch the overrun");
    Ok(())
}
