//! DIFT demo: a simulated control-flow hijack through untrusted input.
//!
//! A 10-word "network packet" arrives (DMA'd into `input` before the
//! program runs; the OS marks it tainted with the DIFT co-processor
//! instruction). A vulnerable memcpy copies it into an 8-word stack
//! buffer, overflowing into an adjacent function pointer. Taint
//! propagates through the copy loop's loads and stores; when the
//! program later jumps through the corrupted pointer, the DIFT
//! extension sees a tainted indirect-jump target and raises the TRAP
//! signal — the classic detection scenario from the paper's §II.B.
//!
//! ```sh
//! cargo run --example dift_attack
//! ```

use flexcore_suite::asm::assemble;
use flexcore_suite::flexcore::ext::{dift, Dift};
use flexcore_suite::flexcore::{System, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(&format!(
        "start:  ! The OS marks the freshly-DMA'd packet as tainted:
                ! cpop1 {taint}, start_addr, length.
                set input, %o0
                mov 40, %o1
                cpop1 {taint}, %o0, %o1, %g0
                ! Vulnerable memcpy: 10 words into an 8-word buffer.
                set input, %o0
                set dest, %o2
                mov 10, %o1
        copy:   ld [%o0], %o3        ! load: %o3 becomes tainted
                st %o3, [%o2]        ! store: taint follows into dest
                add %o0, 4, %o0
                add %o2, 4, %o2
                subcc %o1, 1, %o1
                bne copy
                nop
                ! Dispatch through the (corrupted, tainted) pointer.
                set funcptr, %o0
                ld [%o0], %o3
                jmpl %o3, %o7        ! DIFT checks this indirect jump
                nop
                ta 0
        evil:   mov 0xbad, %o0       ! attacker-controlled code
                ta 0
                .align 4
        input:  .word evil, evil, evil, evil, evil, evil, evil, evil, evil, evil
        dest:   .space 32
        funcptr: .word 0
                .word 0",
        taint = dift::ops::TAINT_RANGE,
    ))?;

    let mut sys = System::new(SystemConfig::fabric_half_speed(), Dift::new());
    sys.load_program(&program);
    let result = sys.try_run(100_000).expect("simulation error");

    match &result.monitor_trap {
        Some(trap) => println!("DIFT detected the attack: {trap}"),
        None => println!("attack NOT detected — exit {:?}", result.exit),
    }
    assert!(result.monitor_trap.is_some(), "DIFT must catch the tainted jump");

    // Control experiment: the same dispatch through an untainted
    // pointer must pass.
    let benign = assemble(
        "start:  set target, %o3
                jmpl %o3, %o7
                nop
                ta 1                 ! not reached
        target: ta 0",
    )?;
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Dift::new());
    sys.load_program(&benign);
    let result = sys.try_run(100_000).expect("simulation error");
    assert!(result.monitor_trap.is_none());
    println!("benign indirect jump passed (no false positive)");
    Ok(())
}
