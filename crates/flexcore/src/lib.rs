//! FlexCore: instruction-grained run-time monitoring on an on-chip
//! reconfigurable fabric.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Deng, Lo, Malysa, Schneider, Suh — MICRO 2010): a hybrid
//! architecture where a bit-level reconfigurable fabric is coupled to
//! the commit stage of an in-order core through a decoupling FIFO
//! interface, so that monitoring and bookkeeping extensions run in
//! parallel with the main computation.
//!
//! The pieces, mirroring the paper's §III:
//!
//! * [`interface`] — the core–fabric interface of Table II: the 64-bit
//!   forwarding configuration register ([`Cfgr`]) with a 2-bit policy
//!   per instruction class, the forward FIFO ([`ForwardFifo`]) whose
//!   back-pressure stalls the commit stage, and the control/return
//!   signals (CACK/EMPTY/TRAP and the BFIFO return value).
//! * [`ShadowRegFile`] — the embedded 8-bit-per-register meta-data
//!   register file implemented as custom hardware inside the fabric.
//! * [`ext`] — the four prototype extensions, each with a functional
//!   model **and** a gate-level netlist for the cost models:
//!   [`ext::Umc`] (uninitialized memory check), [`ext::Dift`] (dynamic
//!   information flow tracking), [`ext::Bc`] (array bound checking via
//!   color tags), and [`ext::Sec`] (soft-error checking of ALU
//!   results).
//! * [`System`] — the full system: Leon3-like core, shared bus, 4-KB
//!   meta-data cache, the interface, and one extension, with the fabric
//!   in its own clock domain (1X / 0.5X / 0.25X of the core clock).
//! * [`software`] — the software-instrumentation baselines the paper
//!   compares against (§V.C).
//! * [`faults`] — deterministic, seeded fault injection
//!   ([`faults::FaultPlan`]): bit flips in architectural state, FFIFO
//!   packets, meta-data lines, and serialized bitstreams, validating
//!   the SEC story end-to-end. Paired with the typed [`SimError`]
//!   returned by [`System::try_run`], whose forward-progress watchdog
//!   turns would-be hangs into [`SimError::Deadlock`] diagnostics.
//! * [`checkpoint`] — complete-state snapshots ([`Snapshot`], via
//!   [`System::snapshot`]/[`System::restore`]) with delta-compressed
//!   memory: interrupt a run at any commit boundary, restore, and the
//!   final [`RunResult`] is bit-identical to the uninterrupted run.
//! * [`lockstep`] — an ISA-level golden model stepped
//!   commit-for-commit with the cycle-level pipeline
//!   ([`System::enable_lockstep`]); any architectural disagreement
//!   surfaces as [`SimError::Divergence`] carrying a minimized
//!   [`DivergenceReport`].
//! * [`recovery`] — the supervised rollback-and-replay layer on top of
//!   all of the above: a [`Supervisor`] checkpoints the system, walks
//!   an escalation ladder (replay → bitstream reload → degraded mode →
//!   abort) on any detected error, and [`FaultOutcome::classify`]
//!   triages each trial as Masked / Detected-Recovered / SDC / DUE.
//!
//! # Example: catching an uninitialized read
//!
//! ```
//! use flexcore::{ext::Umc, Implementation, System, SystemConfig};
//! use flexcore_asm::assemble;
//!
//! let program = assemble("
//!     start:  set 0x8000, %o0     ! a heap buffer, never written
//!             st %g0, [%o0]       ! initialize word 0
//!             ld [%o0], %o1       ! ok
//!             ld [%o0 + 4], %o2   ! uninitialized! UMC must trap
//!             ta 0
//! ")?;
//! let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
//! sys.load_program(&program);
//! let result = sys.try_run(1_000_000).expect("simulation error");
//! assert!(result.monitor_trap.is_some(), "UMC caught the bug");
//! # Ok::<(), flexcore_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod ext;
pub mod faults;
pub mod interface;
pub mod lockstep;
pub mod obs;
pub mod reconfig;
pub mod recovery;
pub mod software;

mod elide;
mod error;
#[cfg(feature = "serde")]
mod serde_impls;
mod shadow;
mod stats;
mod system;

pub use checkpoint::{RestoreError, Snapshot};
pub use elide::{ElisionTable, ELIDE_CFI, ELIDE_DIFT, ELIDE_UMC, ELISION_FORMAT};
pub use error::{DeadlockSnapshot, SimError};
pub use ext::{Extension, ExtensionDescriptor, MonitorTrap};
pub use interface::{Cfgr, ForwardFifo, ForwardPolicy};
pub use lockstep::{DivergenceReport, LockstepChecker};
pub use reconfig::{SwapPolicy, SwapReport, SwapRequest};
pub use recovery::{FaultOutcome, RecoveryAttempt, RecoveryPolicy, RecoveryReport, Supervisor};
pub use shadow::ShadowRegFile;
pub use stats::{ForwardStats, ResilienceStats, RunResult};
pub use system::{Implementation, OverflowPolicy, RunOutcome, System, SystemConfig};
