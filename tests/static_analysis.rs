//! The static-verification acceptance gates, as integration tests:
//!
//! * every paper workload analyzes with zero error-severity findings;
//! * every extension netlist in the swappable registry lints with zero
//!   error-severity findings;
//! * the static/dynamic cross-check holds — UMC never traps at a load
//!   the analysis proved initialized, and the proven set is non-empty
//!   across the suite (the gate is not vacuous);
//! * seeded defects ARE caught (the analyzer is not silently inert);
//! * the taint pass never panics (fuzzed programs, truncated images,
//!   self-loops through delay slots) and is byte-identical between
//!   runs;
//! * check elision is sound: running with the statically proven
//!   elision table is bit-identical to the full run on every kernel,
//!   and the taint pass discharges real DIFT work on most of them.

use flexcore_bench::elide::{build_elision_table, verify_elision, ELIDABLE_EXTENSIONS};
use flexcore_bench::swap::{build_extension, SWAPPABLE};
use flexcore_suite::analysis::{analyze_program, analyze_taint, lint_netlist, Rule, Severity};
use flexcore_suite::asm::assemble;
use flexcore_suite::flexcore::ext::Umc;
use flexcore_suite::flexcore::{System, SystemConfig};
use flexcore_suite::pipeline::ExitReason;
use flexcore_suite::workloads::Workload;
use proptest::prelude::*;

#[test]
fn all_workloads_analyze_clean() {
    for w in Workload::all() {
        let report = analyze_program(&w.program().unwrap());
        let errors: Vec<_> = report.errors().collect();
        assert!(errors.is_empty(), "{}: {errors:?}", w.name());
    }
}

/// Every netlist in the swappable-extension registry lints clean —
/// enumerated through [`SWAPPABLE`] so a new extension cannot ship
/// without joining this gate.
#[test]
fn all_extension_netlists_lint_clean() {
    let program = Workload::bitcount().program().unwrap();
    assert_eq!(SWAPPABLE.len(), 7, "keep this gate in sync with the registry");
    for name in SWAPPABLE {
        let ext = build_extension(name, &program).expect("registry names build");
        let nl = ext.netlist();
        let errors: Vec<_> =
            lint_netlist(&nl, 6).into_iter().filter(|d| d.severity == Severity::Error).collect();
        assert!(errors.is_empty(), "{}: {errors:?}", nl.name());
    }
}

/// The soundness direction of `flexcheck --xcheck`: a load the static
/// pass proves in-image must never raise a UMC uninitialized-read
/// trap, because the loader marks the whole image initialized.
#[test]
fn umc_never_traps_on_statically_proven_loads() {
    let mut total_proven = 0usize;
    for w in Workload::all() {
        let program = w.program().unwrap();
        let report = analyze_program(&program);
        total_proven += report.proven_loads.len();

        let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
        sys.load_program(&program);
        let r = sys.try_run(200_000_000).unwrap();
        assert_eq!(r.exit, ExitReason::Halt(0), "{}: {:?}", w.name(), r.monitor_trap);
        if let Some(trap) = &r.monitor_trap {
            assert!(
                !report.proven_loads.iter().any(|p| p.pc == trap.pc),
                "{}: UMC trap at statically proven load: {trap}",
                w.name()
            );
        }
    }
    // The gate must not hold vacuously: the interval domain proves
    // loads in several kernels (sha, stringsearch, bitcount).
    assert!(total_proven >= 10, "only {total_proven} proven loads across the suite");
}

/// A seeded uninitialized *register* read is caught statically —
/// the register-level analog of UMC's memory check.
#[test]
fn seeded_uninit_register_read_is_caught_statically() {
    let src = "start: add %l5, 1, %o0
                      set out, %l1
                      st %o0, [%l1]
                      ta 0
               out:   .space 4";
    let report = analyze_program(&assemble(src).unwrap());
    assert!(
        report.diagnostics.iter().any(|d| d.rule == Rule::UninitRead && d.is_error()),
        "{:?}",
        report.diagnostics
    );
}

/// A seeded uninitialized *memory* read: the static pass flags the
/// load (wild address, never initialized at load), the dynamic UMC
/// monitor traps on it, and — the cross-check invariant — the trapped
/// pc is not in the proven set.
#[test]
fn seeded_uninit_memory_read_is_caught_statically_and_dynamically() {
    let src = "start: set 0x00200000, %l1
                      ld [%l1], %o0
                      tst %o0
                      ta 0";
    let program = assemble(src).unwrap();
    let report = analyze_program(&program);
    assert!(
        report.diagnostics.iter().any(|d| d.rule == Rule::LoadOutOfImage && d.is_error()),
        "{:?}",
        report.diagnostics
    );

    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    let r = sys.try_run(1_000_000).unwrap();
    let trap = r.monitor_trap.expect("UMC must trap the seeded read");
    assert!(trap.reason.contains("uninitialized"), "{trap}");
    assert!(
        !report.proven_loads.iter().any(|p| p.pc == trap.pc),
        "a trapped load must never be in the proven set: {trap}"
    );
}

/// A seeded delay-slot hazard (CTI in a delay slot) is an error.
#[test]
fn seeded_delay_slot_hazard_is_an_error() {
    let program = assemble("start: ba out\n ba out\nout: ta 0").unwrap();
    let report = analyze_program(&program);
    assert!(report.diagnostics.iter().any(|d| d.rule == Rule::DelaySlotCti && d.is_error()));
}

/// Pathological control flow — self-loops through delay slots, a
/// branch targeting its own delay slot, a self-call — must neither
/// panic nor hang the taint fixpoint.
#[test]
fn taint_terminates_on_self_loops_through_delay_slots() {
    let sources = [
        "start: ba start\n nop",
        "start: ba slot\nslot: nop\n ta 0",
        "start: be start\n ba start\nout: ta 0",
        "start: call start\n nop",
        "start: bne start\n add %o0, 1, %o0",
    ];
    for src in sources {
        let program = assemble(src).unwrap();
        let _ = analyze_program(&program);
        let _ = analyze_taint(&program);
    }
}

/// The analysis and the elision builder are deterministic: two runs
/// over the same program produce byte-identical reports and tables.
#[test]
fn taint_and_elision_are_byte_identical_between_runs() {
    for w in Workload::all() {
        let program = w.program().unwrap();
        let a = analyze_taint(&program);
        let b = analyze_taint(&program);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{}: taint report", w.name());
        let (t1, _) = build_elision_table(&program);
        let (t2, _) = build_elision_table(&program);
        assert_eq!(t1.to_json(), t2.to_json(), "{}: elision table JSON", w.name());
    }
}

/// The acceptance gate on usefulness: the taint pass discharges a
/// nonzero number of dynamic DIFT checks on at least three of the six
/// paper kernels, and every elided DIFT run stays bit-identical.
#[test]
fn taint_discharges_dift_checks_on_most_kernels() {
    let mut discharging = Vec::new();
    for w in Workload::all() {
        let program = w.program().unwrap();
        let (table, summary) = build_elision_table(&program);
        if summary.dift_pcs == 0 {
            continue;
        }
        let v = verify_elision(&program, "dift", &table, 200_000_000).unwrap();
        assert!(v.is_clean(), "{}: {}", w.name(), v.divergence.unwrap_or_default());
        if v.elided_checks > 0 {
            discharging.push(w.name());
        }
    }
    assert!(
        discharging.len() >= 3,
        "DIFT checks discharged on only {} kernel(s): {discharging:?}",
        discharging.len()
    );
}

/// Rebuilds a program from the first `keep` words of an assembled
/// image — the truncated/fuzzed-image shape the analyzer must survive.
fn reassemble_words(words: &[u32]) -> Option<flexcore_suite::asm::Program> {
    let mut src = String::from("start:\n");
    for w in words {
        src.push_str(&format!("    .word {w:#010x}\n"));
    }
    assemble(&src).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The analyzer and taint pass never panic on arbitrary word soup.
    #[test]
    fn taint_never_panics_on_fuzzed_programs(words in prop::collection::vec(any::<u32>(), 0..48)) {
        if let Some(program) = reassemble_words(&words) {
            let _ = analyze_program(&program);
            let _ = analyze_taint(&program);
        }
    }

    /// Truncating a real kernel image mid-function (dangling branches,
    /// severed delay slots) never panics the analyzer or taint pass.
    #[test]
    fn taint_never_panics_on_truncated_images(idx in 0usize..6, keep_ppm in 0u32..1_000_000) {
        let w = Workload::all()[idx];
        let words = w.program().unwrap().words();
        let keep = (words.len() as u64 * u64::from(keep_ppm) / 1_000_000) as usize;
        if let Some(program) = reassemble_words(&words[..keep]) {
            let _ = analyze_program(&program);
            let _ = analyze_taint(&program);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline soundness gate: on a random kernel × elidable
    /// extension, the elided run's trap verdict, counters, and final
    /// architectural state are bit-identical to the full run, and every
    /// elided check accounts for exactly one unforwarded packet.
    #[test]
    fn elided_runs_are_bit_identical(idx in 0usize..6, ext_idx in 0usize..3) {
        let w = Workload::all()[idx];
        let ext = ELIDABLE_EXTENSIONS[ext_idx];
        let program = w.program().unwrap();
        let (table, _) = build_elision_table(&program);
        let v = verify_elision(&program, ext, &table, 200_000_000).unwrap();
        prop_assert!(v.is_clean(), "{} {ext}: {}", w.name(), v.divergence.unwrap_or_default());
        prop_assert_eq!(v.elided_forwarded + v.elided_checks, v.full_forwarded);
    }
}
