/root/repo/target/debug/examples/custom_monitor-ada135a044b1421d.d: examples/custom_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_monitor-ada135a044b1421d.rmeta: examples/custom_monitor.rs Cargo.toml

examples/custom_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
