/root/repo/target/debug/deps/sim_throughput-60c5776ca5eb1d56.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/debug/deps/libsim_throughput-60c5776ca5eb1d56.rmeta: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
