//! The full FlexCore system model.

use flexcore_asm::Program;
use flexcore_fabric::{LutMapping, PartialRegion};
use flexcore_mem::{CacheConfig, MainMemory, MetaDataCache, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason, StepResult, TracePacket};
use flexcore_telemetry::{NullPhaseClock, Phase, PhaseClock};

use crate::checkpoint::{self, RestoreError, Snapshot, SNAPSHOT_FORMAT};
use crate::error::{DeadlockSnapshot, SimError};
use crate::ext::{ExtEnv, Extension, MonitorTrap};
use crate::faults::{
    FaultAction, FaultEvent, FaultInjector, FaultModel, FaultPlan, FaultSchedule, FaultSpec,
    FaultTarget, PacketField,
};
use crate::interface::{Cfgr, ForwardFifo, ForwardPolicy};
use crate::lockstep::{DivergenceReport, LockstepChecker};
use crate::obs::{NullSink, TraceEvent, TraceSink};
use crate::reconfig::{ReconfigController, SwapPolicy, SwapReport, SwapRequest};
use crate::stats::{ForwardStats, ResilienceStats, RunResult};
use crate::ShadowRegFile;

/// A wedged fabric "frees up" this far in the future — effectively
/// never, while leaving headroom so grid alignment cannot overflow.
const STUCK: u64 = 1 << 62;

/// How the monitoring extension is implemented.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Implementation {
    /// Dedicated hardware integrated with the core, running at the
    /// core clock (the paper's "full ASIC" configuration — Table IV's
    /// 1X columns).
    Asic,
    /// On the reconfigurable fabric, running at `core clock / divisor`
    /// (the paper's FlexCore configuration: divisor 2 for UMC/DIFT/BC,
    /// divisor 4 for SEC).
    Fabric {
        /// Core-to-fabric clock ratio (1, 2, or 4).
        divisor: u32,
    },
}

impl Implementation {
    /// Core cycles per fabric cycle.
    pub fn divisor(self) -> u64 {
        match self {
            Implementation::Asic => 1,
            Implementation::Fabric { divisor } => u64::from(divisor.max(1)),
        }
    }
}

/// What the commit stage does when the forward FIFO is full under an
/// [`Always`](ForwardPolicy::Always) forwarding policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverflowPolicy {
    /// Stall the commit stage until a slot frees (the paper's
    /// mechanism; lossless).
    #[default]
    Stall,
    /// Drop the packet and count it
    /// ([`ResilienceStats::dropped_overflow`]) — graceful degradation
    /// for monitors that tolerate gaps.
    ///
    /// [`ResilienceStats::dropped_overflow`]: crate::ResilienceStats::dropped_overflow
    DropWithAccounting,
}

/// What [`System::try_run_until`] produced: a finished run, or a pause
/// at a commit boundary (the moment to call [`System::snapshot`]).
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)] // Done is the overwhelmingly common case
pub enum RunOutcome {
    /// The run finished: program exit, monitor trap, or instruction
    /// limit.
    Done(RunResult),
    /// The run paused at the requested commit boundary.
    Paused {
        /// Instructions committed so far.
        instret: u64,
        /// Core-clock cycle at the pause.
        cycle: u64,
    },
}

/// Configuration of a [`System`].
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Meta-data cache geometry (the paper's default: 4 KB, 32-B
    /// lines).
    pub meta_cache: CacheConfig,
    /// Forward-FIFO depth (the paper's default: 64).
    pub fifo_depth: usize,
    /// Extension implementation and clock ratio.
    pub implementation: Implementation,
    /// Whether the core pre-decodes instructions for the fabric (the
    /// OPCODE/SRC1/SRC2/DEST fields of Table II). The paper found
    /// core-side decoding makes DIFT 30% faster; turning this off
    /// charges the fabric an extra cycle per packet to decode the raw
    /// instruction word. Ablation knob; default `true`.
    pub decode_on_core: bool,
    /// Whether the meta-data cache supports bit-granular write masks
    /// (§III.D). Turning this off forces every meta-data update into an
    /// explicit read-modify-write pair, "an explicit cache read and
    /// then an explicit cache write". Ablation knob; default `true`.
    pub masked_meta_writes: bool,
    /// Whether monitor exceptions must be precise: every forwarded
    /// instruction stalls the commit stage until the fabric
    /// acknowledges it (no decoupling). Ablation knob; default `false`
    /// — the paper's extensions all terminate the program, so
    /// imprecise traps suffice and the FIFO decouples fully.
    pub precise_exceptions: bool,
    /// Forward-progress watchdog: if the commit stage would have to
    /// wait more than this many core cycles for a FIFO slot — or no
    /// instruction commits for this long — [`System::try_run`] returns
    /// [`SimError::Deadlock`] instead of spinning.
    pub watchdog_cycles: u64,
    /// Optional hard ceiling on core-clock cycles; exceeding it makes
    /// [`System::try_run`] return [`SimError::CycleBudgetExceeded`].
    pub cycle_budget: Option<u64>,
    /// FIFO overflow behavior under `Always` forwarding.
    pub overflow_policy: OverflowPolicy,
    /// How many times [`System::load_bitstream`] re-transfers a
    /// bitstream that fails validation before giving up.
    pub bitstream_retry_limit: u32,
}

impl SystemConfig {
    /// The paper's ASIC configuration: extension at the core clock.
    pub fn asic() -> SystemConfig {
        SystemConfig {
            core: CoreConfig::leon3(),
            meta_cache: CacheConfig::meta_default(),
            fifo_depth: 64,
            implementation: Implementation::Asic,
            decode_on_core: true,
            masked_meta_writes: true,
            precise_exceptions: false,
            watchdog_cycles: 1_000_000,
            cycle_budget: None,
            overflow_policy: OverflowPolicy::Stall,
            bitstream_retry_limit: 3,
        }
    }

    /// FlexCore with the fabric at the full core clock (Table IV "1X").
    pub fn fabric_full_speed() -> SystemConfig {
        SystemConfig {
            implementation: Implementation::Fabric { divisor: 1 },
            ..SystemConfig::asic()
        }
    }

    /// FlexCore with the fabric at half the core clock (Table IV
    /// "0.5X" — UMC/DIFT/BC).
    pub fn fabric_half_speed() -> SystemConfig {
        SystemConfig {
            implementation: Implementation::Fabric { divisor: 2 },
            ..SystemConfig::asic()
        }
    }

    /// FlexCore with the fabric at a quarter of the core clock
    /// (Table IV "0.25X" — SEC).
    pub fn fabric_quarter_speed() -> SystemConfig {
        SystemConfig {
            implementation: Implementation::Fabric { divisor: 4 },
            ..SystemConfig::asic()
        }
    }

    /// Returns a copy with a different forward-FIFO depth (the
    /// Figure 5 sweep).
    pub fn with_fifo_depth(mut self, depth: usize) -> SystemConfig {
        self.fifo_depth = depth;
        self
    }

    /// Returns a copy with fabric-side instruction decoding (ablation:
    /// the fabric pays an extra cycle per packet).
    pub fn without_core_decode(mut self) -> SystemConfig {
        self.decode_on_core = false;
        self
    }

    /// Returns a copy without bit-granular meta-data writes (ablation:
    /// every meta update becomes a read-modify-write pair).
    pub fn without_masked_writes(mut self) -> SystemConfig {
        self.masked_meta_writes = false;
        self
    }

    /// Returns a copy with precise monitor exceptions (ablation: no
    /// decoupling — commit waits for the fabric on every forwarded
    /// instruction).
    pub fn with_precise_exceptions(mut self) -> SystemConfig {
        self.precise_exceptions = true;
        self
    }

    /// Returns a copy with a different meta-data cache capacity in
    /// bytes (geometry otherwise unchanged).
    pub fn with_meta_cache_bytes(mut self, bytes: u32) -> SystemConfig {
        self.meta_cache.size_bytes = bytes;
        self
    }

    /// Returns a copy with a different forward-progress watchdog window
    /// (core cycles without a commit before `try_run` declares
    /// deadlock). Clamped to at least 1.
    pub fn with_watchdog_cycles(mut self, cycles: u64) -> SystemConfig {
        self.watchdog_cycles = cycles.max(1);
        self
    }

    /// Returns a copy with a hard core-cycle budget.
    pub fn with_cycle_budget(mut self, budget: u64) -> SystemConfig {
        self.cycle_budget = Some(budget);
        self
    }

    /// Returns a copy with the given FIFO overflow policy.
    pub fn with_overflow_policy(mut self, policy: OverflowPolicy) -> SystemConfig {
        self.overflow_policy = policy;
        self
    }

    /// Returns a copy with a different bitstream reload budget.
    pub fn with_bitstream_retry_limit(mut self, retries: u32) -> SystemConfig {
        self.bitstream_retry_limit = retries;
        self
    }
}

/// A complete FlexCore system: core + shared bus + meta-data cache +
/// core–fabric interface + one monitoring extension.
///
/// The second type parameter is the instrumentation sink (see
/// [`crate::obs`]). It defaults to [`NullSink`], which compiles every
/// hook point away; [`System::with_sink`] installs a recording sink.
///
/// The third type parameter is the host-time phase clock (see
/// [`flexcore_telemetry`]). It defaults to [`NullPhaseClock`], which
/// likewise compiles every profiling hook away;
/// [`System::with_profiler`] installs a live
/// [`PhaseProfiler`](flexcore_telemetry::PhaseProfiler) that
/// attributes host wall-clock to simulator phases (the `flexprof`
/// entry point).
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct System<E: Extension, S: TraceSink = NullSink, P: PhaseClock = NullPhaseClock> {
    config: SystemConfig,
    core: Core,
    mem: MainMemory,
    bus: SystemBus,
    meta: MetaDataCache,
    shadow: ShadowRegFile,
    ext: E,
    cfgr: Cfgr,
    fifo: ForwardFifo,
    fabric_free_at: u64,
    forward: ForwardStats,
    monitor_trap: Option<MonitorTrap>,
    /// TRAP delivery: `(fabric time the signal asserts, instret at the
    /// violating instruction)`. The exception is imprecise (§III.C):
    /// the core keeps committing until the signal arrives.
    pending_trap: Option<(u64, u64)>,
    faults: Option<FaultInjector>,
    resilience: ResilienceStats,
    /// Set by a `FabricStuck` fault: the fabric never drains again.
    fabric_stuck: bool,
    /// Set when the commit stage detects it can never make progress;
    /// `try_run` converts it into `SimError::Deadlock`.
    wedged: Option<DeadlockSnapshot>,
    /// Memory image as it stood right after [`System::load_program`] —
    /// the baseline that [`System::snapshot`] delta-compresses against.
    baseline_mem: Option<MainMemory>,
    /// The golden-model checker, when
    /// [`System::enable_lockstep`] is active.
    lockstep: Option<LockstepChecker>,
    /// Set by the commit-path lockstep check; `try_run` converts it
    /// into [`SimError::Divergence`].
    diverged: Option<Box<DivergenceReport>>,
    /// Degraded mode: monitoring is bypassed; commits are counted as
    /// unmonitored instead of being forwarded. Entered by the recovery
    /// supervisor's rung 3, never by the system itself. Not part of a
    /// [`Snapshot`] — the supervisor never restores past a degraded
    /// entry.
    degraded: bool,
    /// `(cycle, committed)` at degraded-mode entry, for residency
    /// accounting.
    degraded_entry: Option<(u64, u64)>,
    /// FIFO entries still in flight at each [`System::restore`],
    /// accumulated across restores. Rollback discards these packets
    /// un-processed; recovery reports surface the count. Deliberately
    /// not in the [`Snapshot`] and never reset by a restore.
    fifo_drained_on_restore: u64,
    /// Scheduled mid-run hot-swaps (see [`crate::reconfig`]). Swap
    /// *schedules* are construction-time configuration (like the fault
    /// plan), not snapshot state: [`System::restore`] realigns the
    /// lifecycle against the restored commit count so a replay
    /// re-executes the swap deterministically.
    reconfig: ReconfigController<E>,
    /// The fabric's partial-reconfiguration region, programmed frame by
    /// frame during each swap window.
    region: PartialRegion,
    /// Static check-elision table ([`System::set_elision`]).
    /// Construction-time configuration like the CFGR, not snapshot
    /// state: a restored run must be built with the same table.
    elision: Option<crate::elide::ElisionTable>,
    /// Host wall-clock nanoseconds spent inside the run loop so far,
    /// accumulated across `try_run`/`try_run_until` segments. Not part
    /// of a [`Snapshot`] (host time is not architectural state) and
    /// excluded from [`RunResult`] equality.
    host_ns: u64,
    sink: S,
    prof: P,
}

impl<E: Extension> System<E> {
    /// Builds a system around `ext` with no instrumentation (the
    /// [`NullSink`] — zero overhead).
    pub fn new(config: SystemConfig, ext: E) -> System<E> {
        System::with_sink(config, ext, NullSink)
    }
}

impl<E: Extension, S: TraceSink> System<E, S> {
    /// Builds a system around `ext` with `sink` receiving every
    /// instrumentation event (see [`crate::obs`]). The phase clock
    /// stays off ([`NullPhaseClock`]).
    pub fn with_sink(config: SystemConfig, ext: E, sink: S) -> System<E, S> {
        System::with_profiler(config, ext, sink, NullPhaseClock)
    }
}

impl<E: Extension, S: TraceSink, P: PhaseClock> System<E, S, P> {
    /// Builds a system around `ext` with `sink` receiving trace events
    /// and `prof` attributing host wall-clock to simulator phases.
    pub fn with_profiler(config: SystemConfig, ext: E, sink: S, prof: P) -> System<E, S, P> {
        let cfgr = ext.cfgr();
        System {
            config,
            core: Core::new(config.core),
            mem: MainMemory::new(),
            bus: SystemBus::default(),
            meta: MetaDataCache::new(config.meta_cache),
            shadow: ShadowRegFile::new(),
            ext,
            cfgr,
            fifo: ForwardFifo::new(config.fifo_depth),
            fabric_free_at: 0,
            forward: ForwardStats::default(),
            monitor_trap: None,
            pending_trap: None,
            faults: None,
            resilience: ResilienceStats::default(),
            fabric_stuck: false,
            wedged: None,
            baseline_mem: None,
            lockstep: None,
            diverged: None,
            degraded: false,
            degraded_entry: None,
            fifo_drained_on_restore: 0,
            reconfig: ReconfigController::new(),
            region: PartialRegion::new(),
            elision: None,
            host_ns: 0,
            sink,
            prof,
        }
    }

    /// Installs a static check-elision table (see
    /// [`ElisionTable`](crate::ElisionTable)): packets whose PC the
    /// table marks for this extension's
    /// [`elision_class`](Extension::elision_class) — and that the
    /// extension itself confirms via
    /// [`check_elidable`](Extension::check_elidable) — are never
    /// enqueued toward the fabric. Each skip is counted in
    /// [`ResilienceStats::elided_checks`](crate::ResilienceStats::elided_checks).
    pub fn set_elision(&mut self, table: crate::elide::ElisionTable) {
        self.elision = Some(table);
    }

    /// The installed elision table, if any.
    pub fn elision(&self) -> Option<&crate::elide::ElisionTable> {
        self.elision.as_ref()
    }

    /// The installed trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the system, returning the sink (and whatever it
    /// recorded) — the usual way to extract metrics after a run.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// The installed phase clock (e.g. to read
    /// [`PhaseClock::stats`] after a profiled run).
    pub fn profiler(&self) -> &P {
        &self.prof
    }

    /// Consumes the system, returning the phase clock and whatever it
    /// attributed.
    pub fn into_profiler(self) -> P {
        self.prof
    }

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if S::ENABLED {
            self.sink.event(ev);
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The active CFGR value.
    pub fn cfgr(&self) -> Cfgr {
        self.cfgr
    }

    /// The monitored core.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Main memory (e.g. to inspect program results).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable main memory (e.g. to pre-load inputs).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// The extension.
    pub fn extension(&self) -> &E {
        &self.ext
    }

    /// Loads a program and lets the extension initialize meta-data for
    /// the image (e.g. UMC marks static data as written). The
    /// initialization happens "before time zero": it does not consume
    /// simulated cycles or bus bandwidth.
    pub fn load_program(&mut self, program: &Program) {
        self.core.load_program(program, &mut self.mem);
        let mut scratch_bus = SystemBus::default();
        let mut env =
            ExtEnv::new(&mut self.meta, &mut self.mem, &mut scratch_bus, &mut self.shadow, 0);
        self.ext.on_program_load(program.base(), program.len() as u32, &mut env);
        // Leave the meta cache cold and its statistics clean.
        self.meta.flush(&mut self.mem);
        self.meta = MetaDataCache::new(self.config.meta_cache);
        // The checkpoint baseline: the complete image (text, data, and
        // the extension's flushed meta-data) as of time zero.
        self.baseline_mem = Some(self.mem.clone());
    }

    /// Installs a fault-injection campaign. Replaces any previous plan;
    /// the event log starts empty.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultInjector::new(&plan));
    }

    /// Every fault applied so far (empty when no plan is armed). Same
    /// seed + plan + program ⇒ byte-identical log.
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.as_ref().map_or(&[], FaultInjector::log)
    }

    /// Fault-injection and graceful-degradation counters so far.
    pub fn resilience(&self) -> ResilienceStats {
        self.resilience
    }

    /// Arranges for a single transient fault: the `nth` committed
    /// instruction's result has `bit` flipped — in the forwarded packet
    /// *and* in architectural state, like a real ALU soft error. Used
    /// to demonstrate SEC.
    ///
    /// Sugar for arming (or extending) a [`FaultPlan`] with a
    /// [`CommitResult`](FaultTarget::CommitResult) spec at
    /// [`AtCommit(nth)`](FaultSchedule::AtCommit) with a fixed mask.
    pub fn inject_result_fault(&mut self, nth: u64, bit: u32) {
        let spec = FaultSpec {
            target: FaultTarget::CommitResult,
            schedule: FaultSchedule::AtCommit(nth),
            model: FaultModel::Mask(1 << bit),
        };
        match &mut self.faults {
            Some(inj) => inj.push_spec(spec),
            None => {
                self.faults = Some(FaultInjector::new(&FaultPlan { seed: 0, specs: vec![spec] }))
            }
        }
    }

    fn grid(&self) -> u64 {
        self.config.implementation.divisor()
    }

    fn align_up(&self, t: u64) -> u64 {
        t.next_multiple_of(self.grid())
    }

    /// Captures diagnostic state for a deadlock report.
    fn deadlock_snapshot(&mut self, now: u64) -> DeadlockSnapshot {
        DeadlockSnapshot {
            cycle: now,
            pc: self.core.pc(),
            instret: self.core.stats().instret,
            fifo_occupancy: self.fifo.occupancy(now) as u64,
            fifo_depth: self.fifo.depth() as u64,
            fabric_free_at: self.fabric_free_at,
            fabric_stuck: self.fabric_stuck,
            bus: self.bus.stats(),
            recent: self.sink.flight_log(),
        }
    }

    /// Runs the extension on one packet starting no earlier than `enq`;
    /// returns `(start, bfifo_value)`.
    fn process_on_fabric(&mut self, pkt: &TracePacket, enq: u64) -> (u64, Option<u32>) {
        if self.fabric_stuck {
            // A wedged fabric accepts nothing: the packet's dequeue is
            // scheduled effectively-never and no processing happens.
            self.fabric_free_at = self.fabric_free_at.max(STUCK);
            return (self.fabric_free_at, None);
        }
        let start = self.align_up(enq.max(self.fabric_free_at));
        // Host-time attribution: the whole extension call is one
        // FabricEval span, minus whatever the ExtEnv charges to
        // MetaCache inside it — the two phases never double-book.
        let fab_span = self.prof.begin();
        let meta_ns0 = if P::ENABLED {
            self.prof.stats().map_or(0, |s| s.total_ns(Phase::MetaCache))
        } else {
            0
        };
        // Meta-cache and bus activity attributable to this packet is
        // derived from statistics deltas around the extension call, so
        // the mem crate needs no sink plumbing of its own.
        let (miss0, xfer0, wait0) = if S::ENABLED {
            let m = self.meta.stats();
            let b = self.bus.stats();
            (m.read_misses + m.write_misses, b.fabric_transfers, b.fabric_wait_cycles)
        } else {
            (0, 0, 0)
        };
        let period = self.grid();
        let mut env = ExtEnv::with_period(
            &mut self.meta,
            &mut self.mem,
            &mut self.bus,
            &mut self.shadow,
            start,
            period,
        );
        if !self.config.masked_meta_writes {
            env.force_read_modify_write();
        }
        if !self.config.decode_on_core {
            // The fabric must decode the raw instruction word itself.
            env.charge_fabric_cycle();
        }
        if P::ENABLED {
            if let Some(stats) = self.prof.stats_mut() {
                env.attach_profiler(stats);
            }
        }
        let (ret, trap) = match self.ext.process(pkt, &mut env) {
            Ok(ret) => (ret, None),
            Err(t) => (None, Some(t)),
        };
        let ready = env.ready_at();
        let (meta_reads, meta_writes) = env.meta_ops();
        if P::ENABLED {
            if let Some(t) = fab_span {
                let elapsed = t.elapsed().as_nanos() as u64;
                let meta_ns = self
                    .prof
                    .stats()
                    .map_or(0, |s| s.total_ns(Phase::MetaCache))
                    .saturating_sub(meta_ns0);
                self.prof.record(Phase::FabricEval, elapsed.saturating_sub(meta_ns));
            }
        }
        let finish = self.align_up(ready).max(start + self.grid());
        self.fabric_free_at = finish;
        if S::ENABLED {
            self.sink.event(TraceEvent::FabricSpan {
                start,
                end: finish,
                pc: pkt.pc,
                class: pkt.class,
                meta_reads,
                meta_writes,
            });
            let m = self.meta.stats();
            let misses = (m.read_misses + m.write_misses) - miss0;
            if misses > 0 {
                self.sink.event(TraceEvent::MetaMiss { cycle: start, count: misses });
            }
            let b = self.bus.stats();
            let transfers = b.fabric_transfers - xfer0;
            let wait_cycles = b.fabric_wait_cycles - wait0;
            if transfers > 0 || wait_cycles > 0 {
                self.sink.event(TraceEvent::BusGrant { cycle: start, transfers, wait_cycles });
            }
        }
        if let Some(t) = trap {
            // Imprecise exception: the TRAP signal reaches the core
            // only once the extension's pipeline stage carrying the
            // violating packet drains; the core keeps committing until
            // then (§III.C — none of the prototype extensions need a
            // precise restart).
            if self.monitor_trap.is_none() {
                let assert_at = finish + self.grid() * u64::from(self.ext.pipeline_stages());
                let trap_ev = TraceEvent::Trap {
                    cycle: assert_at,
                    pc: t.pc,
                    instret: self.forward.committed,
                };
                self.monitor_trap = Some(t);
                self.pending_trap = Some((assert_at, self.forward.committed));
                self.emit(trap_ev);
            }
        }
        (start, ret)
    }

    /// Applies one injector-decided fault to architectural state, the
    /// in-flight packet, or the meta-data cache.
    fn apply_fault(&mut self, action: FaultAction, pkt: &mut TracePacket) {
        self.resilience.faults_injected += 1;
        self.emit(TraceEvent::FaultInjected {
            cycle: pkt.commit_cycle,
            instret: self.forward.committed,
        });
        match action {
            FaultAction::FlipResult { mask } => {
                pkt.result ^= mask;
                if let Some(rd) = pkt.dest {
                    self.core.set_reg(rd, pkt.result);
                }
            }
            FaultAction::FlipRegister { reg, mask } => {
                if let Some(r) = flexcore_isa::Reg::new(reg) {
                    let v = self.core.reg(r);
                    self.core.set_reg(r, v ^ mask);
                }
            }
            FaultAction::FlipMemory { addr, mask } | FaultAction::FlipText { addr, mask } => {
                let v = self.mem.read_u32(addr);
                self.mem.write_u32(addr, v ^ mask);
            }
            FaultAction::CorruptPacket { field, mask } => {
                self.resilience.packets_corrupted += 1;
                match field {
                    PacketField::Result => pkt.result ^= mask,
                    PacketField::Srcv1 => pkt.srcv1 ^= mask,
                    PacketField::Srcv2 => pkt.srcv2 ^= mask,
                    PacketField::Addr => pkt.addr ^= mask,
                    PacketField::StoreValue => pkt.store_value ^= mask,
                }
            }
            FaultAction::PoisonMeta { addr, mask } => {
                self.meta.poison(addr, mask);
            }
            FaultAction::StickFabric => self.fabric_stuck = true,
        }
    }

    /// Handles one committed instruction: fault injection, the
    /// forwarding filter, the FIFO, and the fabric.
    fn on_commit(&mut self, mut pkt: TracePacket) {
        self.forward.committed += 1;
        if let Some(inj) = &mut self.faults {
            let actions = inj.poll_commit(self.forward.committed, pkt.commit_cycle);
            for action in actions {
                self.apply_fault(action, &mut pkt);
            }
        }
        if S::ENABLED {
            // After fault injection, so the flight recorder remembers
            // what actually entered architectural state.
            self.sink.event(TraceEvent::Commit {
                cycle: pkt.commit_cycle,
                pc: pkt.pc,
                instret: self.forward.committed,
                class: pkt.class,
            });
            self.sink.commit_packet(&pkt);
        }
        if let Some(checker) = &mut self.lockstep {
            // Golden-model comparison happens after fault injection so
            // an architectural-state strike is caught at the very
            // commit it lands on.
            if let Err(mut report) = checker.check_commit(&pkt, &self.core, self.forward.committed)
            {
                report.flight = self.sink.flight_log();
                self.diverged = Some(report);
                return;
            }
        }
        if self.degraded {
            // Monitoring bypassed: account for what the CFGR *would*
            // have forwarded, but never touch the FIFO or the fabric.
            self.resilience.unmonitored_commits += 1;
            if self.cfgr.policy(pkt.class).forwards() {
                self.resilience.suppressed_checks += 1;
            }
            return;
        }
        let mut policy = self.cfgr.policy(pkt.class);
        if !policy.forwards() {
            return;
        }
        if let Some(table) = &self.elision {
            // Statically discharged check: the analysis proved this
            // PC's packet cannot change the extension's observable
            // behavior, and the extension re-validates per packet
            // (defense in depth against a stale table). Skip the FIFO
            // and the fabric entirely.
            if table.mask(pkt.pc) & self.ext.elision_class() != 0 && self.ext.check_elidable(&pkt) {
                self.resilience.elided_checks += 1;
                self.emit(TraceEvent::CheckElided {
                    cycle: pkt.commit_cycle,
                    pc: pkt.pc,
                    class: pkt.class,
                });
                return;
            }
        }
        if self.config.precise_exceptions {
            // No decoupling: every forwarded instruction must be
            // acknowledged before it commits.
            policy = ForwardPolicy::WaitForAck;
        }
        let now = pkt.commit_cycle;
        // Host-time attribution: the forwarding-policy bookkeeping and
        // FIFO traffic below is one Fifo span, minus whatever the
        // nested `process_on_fabric` call attributes to other phases.
        // Early-return paths (drops, wedge detection) lose their span —
        // best-effort, and those paths are off the profiled hot loop.
        let fifo_span = self.prof.begin();
        let nested_ns0 =
            if P::ENABLED { self.prof.stats().map_or(0, |s| s.grand_total_ns()) } else { 0 };
        match policy {
            ForwardPolicy::Ignore => {}
            ForwardPolicy::IfNotFull => {
                if self.fifo.is_full(now) {
                    self.forward.dropped += 1;
                    self.emit(TraceEvent::Drop { cycle: now, class: pkt.class, overflow: false });
                    return;
                }
                self.record_forward(&pkt);
                let (start, _) = self.process_on_fabric(&pkt, now);
                self.fifo.push(now, start);
                self.emit_enqueue(now, start);
            }
            ForwardPolicy::Always => {
                let enq = if self.fifo.is_full(now) {
                    match self.config.overflow_policy {
                        OverflowPolicy::Stall => {
                            // Commit stalls until the oldest entry is
                            // dequeued — unless that slot frees so far
                            // in the future (a wedged fabric) that the
                            // system has effectively deadlocked.
                            let free_at = self.fifo.empty_slot_at(now);
                            if free_at.saturating_sub(now) > self.config.watchdog_cycles {
                                self.wedged = Some(self.deadlock_snapshot(now));
                                return;
                            }
                            self.core.stall_until(free_at);
                            self.emit(TraceEvent::CommitStall { cycle: now, until: free_at });
                            free_at
                        }
                        OverflowPolicy::DropWithAccounting => {
                            self.forward.dropped += 1;
                            self.resilience.dropped_overflow += 1;
                            self.emit(TraceEvent::Drop {
                                cycle: now,
                                class: pkt.class,
                                overflow: true,
                            });
                            return;
                        }
                    }
                } else {
                    now
                };
                self.record_forward(&pkt);
                let (start, _) = self.process_on_fabric(&pkt, enq);
                self.fifo.push(enq, start);
                self.emit_enqueue(enq, start);
            }
            ForwardPolicy::WaitForAck => {
                self.record_forward(&pkt);
                let (start, ret) = self.process_on_fabric(&pkt, now);
                let ack = self.fabric_free_at.max(start);
                self.core.stall_until(ack);
                self.emit(TraceEvent::CommitStall { cycle: now, until: ack });
                if let (Some(v), Some(rd)) = (ret, pkt.dest) {
                    // BFIFO return value lands in the destination
                    // register.
                    self.core.set_reg(rd, v);
                    // The golden model has no fabric; mirror the BFIFO
                    // write so it stays in sync.
                    if let Some(checker) = &mut self.lockstep {
                        checker.adopt_reg(rd, v);
                    }
                }
                // Waiting for the acknowledgment makes the exception
                // precise: deliver before the next instruction.
                if self.config.precise_exceptions {
                    if let Some((_, at_violation)) = self.pending_trap {
                        self.pending_trap = Some((0, at_violation));
                    }
                }
            }
        }
        if P::ENABLED {
            if let Some(t) = fifo_span {
                let elapsed = t.elapsed().as_nanos() as u64;
                let nested =
                    self.prof.stats().map_or(0, |s| s.grand_total_ns()).saturating_sub(nested_ns0);
                self.prof.record(Phase::Fifo, elapsed.saturating_sub(nested));
            }
        }
    }

    fn record_forward(&mut self, pkt: &TracePacket) {
        self.forward.forwarded += 1;
        self.forward.per_class[pkt.class.index()] += 1;
        if S::ENABLED {
            self.sink.event(TraceEvent::Forward { cycle: pkt.commit_cycle, class: pkt.class });
            self.sink.forward_packet(pkt);
        }
    }

    /// Samples FIFO occupancy right after a push — [`ForwardFifo`]
    /// updates its peak from the same post-push count, so the running
    /// max of these samples equals [`ForwardStats::peak_occupancy`].
    #[inline]
    fn emit_enqueue(&mut self, cycle: u64, dequeue_at: u64) {
        if S::ENABLED {
            let occupancy = self.fifo.resident() as u64;
            self.sink.event(TraceEvent::FifoEnqueue { cycle, dequeue_at, occupancy });
        }
    }

    /// Runs until the program exits, a monitor trap is delivered, or
    /// `max_instructions` commit. Returns the full result.
    ///
    /// Compatibility wrapper over [`System::try_run`]: panics on a
    /// [`SimError`] (deadlock, cycle-budget exhaustion, lockstep
    /// divergence). Harnesses that must survive wedged configurations —
    /// fault-injection campaigns in particular — should call `try_run`
    /// instead.
    #[deprecated(
        since = "0.4.0",
        note = "panics on SimError; use System::try_run and handle the error"
    )]
    pub fn run(&mut self, max_instructions: u64) -> RunResult {
        match self.try_run(max_instructions) {
            Ok(result) => result,
            Err(e) => panic!("simulation error: {e} (use System::try_run to handle SimError)"),
        }
    }

    /// Runs until the program exits, a monitor trap is delivered, or
    /// `max_instructions` commit — or until the simulation itself
    /// fails: a forward-progress watchdog detects deadlock (no commit
    /// possible within `watchdog_cycles`, or the fabric can never
    /// drain), the configured cycle budget is exceeded, or the
    /// lockstep golden model diverges.
    pub fn try_run(&mut self, max_instructions: u64) -> Result<RunResult, SimError> {
        match self.run_internal(max_instructions, None)? {
            RunOutcome::Done(result) => Ok(result),
            RunOutcome::Paused { .. } => unreachable!("no pause point was requested"),
        }
    }

    /// Like [`System::try_run`], but additionally pauses (returning
    /// [`RunOutcome::Paused`]) once at least `pause_at` instructions
    /// have committed — the hook checkpointing harnesses use to call
    /// [`System::snapshot`] at a deterministic commit boundary and
    /// resume with another `try_run_until`/`try_run` call.
    ///
    /// The pause lands exactly at a commit boundary, so the sequence
    /// pause → [`snapshot`](System::snapshot) →
    /// [`restore`](System::restore) (into a fresh, identically built
    /// system) → continue reproduces the uninterrupted run bit for bit.
    pub fn try_run_until(
        &mut self,
        max_instructions: u64,
        pause_at: u64,
    ) -> Result<RunOutcome, SimError> {
        self.run_internal(max_instructions, Some(pause_at))
    }

    /// Wraps the run loop with host wall-clock accounting: every
    /// segment's elapsed time accumulates into `host_ns`, which
    /// [`RunResult::summary`] turns into simulated-insns/sec and
    /// simulated-cycles/sec. Two clock reads per `try_run` segment —
    /// unconditional, profiler or not.
    fn run_internal(
        &mut self,
        max_instructions: u64,
        pause_at: Option<u64>,
    ) -> Result<RunOutcome, SimError> {
        let started = std::time::Instant::now();
        let mut out = self.run_loop(max_instructions, pause_at);
        self.host_ns = self.host_ns.saturating_add(started.elapsed().as_nanos() as u64);
        if let Ok(RunOutcome::Done(result)) = &mut out {
            // `finalize` ran before this segment's clock stopped.
            result.host_ns = self.host_ns;
        }
        out
    }

    fn run_loop(
        &mut self,
        max_instructions: u64,
        pause_at: Option<u64>,
    ) -> Result<RunOutcome, SimError> {
        let mut last_commit_cycle = self.core.cycle();
        loop {
            if let Some(report) = self.diverged.take() {
                return Err(SimError::Divergence(report));
            }
            if let Some(snap) = self.wedged.take() {
                return Err(SimError::Deadlock(snap));
            }
            let cycle = self.core.cycle();
            // Hot-swap hook: fires at the scheduled commit boundary,
            // before the pause check so a snapshot taken at the same
            // boundary observes the swap as already completed (the
            // restore realignment relies on this ordering). Skipped
            // while a trap is in flight (the run is about to halt) and
            // in degraded mode (monitoring is bypassed; degraded mode
            // is one-way).
            if self.reconfig.any_pending() && !self.degraded && !self.trap_pending() {
                if let Some(idx) = self.reconfig.due(self.forward.committed) {
                    self.execute_swap(idx)?;
                    // The swap window's stall is not a lack of forward
                    // progress; restart the watchdog.
                    last_commit_cycle = self.core.cycle();
                    continue;
                }
            }
            if let Some(pause) = pause_at {
                let instret = self.core.stats().instret;
                if instret >= pause {
                    return Ok(RunOutcome::Paused { instret, cycle });
                }
            }
            if let Some(budget) = self.config.cycle_budget {
                if cycle > budget {
                    return Err(SimError::CycleBudgetExceeded {
                        budget,
                        cycle,
                        instret: self.core.stats().instret,
                    });
                }
            }
            if cycle.saturating_sub(last_commit_cycle) > self.config.watchdog_cycles {
                let snap = self.deadlock_snapshot(cycle);
                return Err(SimError::Deadlock(snap));
            }
            if let (Some((assert_at, _)), Some(trap)) = (self.pending_trap, &self.monitor_trap) {
                if cycle >= assert_at {
                    let pc = trap.pc;
                    self.core.halt(ExitReason::MonitorTrap { pc });
                }
            }
            if self.core.stats().instret >= max_instructions {
                self.core.halt(ExitReason::InstructionLimit);
            }
            match self.core.step_phased(&mut self.mem, &mut self.bus, &mut self.prof) {
                StepResult::Committed(pkt) => {
                    last_commit_cycle = self.core.cycle();
                    self.on_commit(pkt);
                }
                StepResult::Annulled => {}
                StepResult::Exited(exit) => {
                    let cycle = self.core.cycle();
                    if self.fabric_stuck && self.fifo.occupancy(cycle) > 0 {
                        // The core waits for EMPTY before completing;
                        // a wedged fabric never drains the FIFO, so
                        // the program can never actually finish.
                        let snap = self.deadlock_snapshot(cycle);
                        return Err(SimError::Deadlock(snap));
                    }
                    return Ok(RunOutcome::Done(self.finalize(exit)));
                }
            }
        }
    }

    /// Deserializes and validates a fabric configuration bitstream,
    /// modeling the paper's reconfiguration step, with bounded
    /// retry-with-reload on validation failures.
    ///
    /// Each transfer attempt passes through the armed fault injector
    /// (if any), which may corrupt bytes in flight; a corrupted stream
    /// fails its Fletcher-32 checksum and is re-transferred from the
    /// pristine source, up to `bitstream_retry_limit` retries. Retry
    /// and reload counts land in [`ResilienceStats`].
    pub fn load_bitstream(&mut self, bytes: &[u8]) -> Result<LutMapping, SimError> {
        let limit = self.config.bitstream_retry_limit;
        let mut last_error = String::new();
        for attempt in 0..=limit {
            let mut copy = bytes.to_vec();
            if let Some(inj) = &mut self.faults {
                inj.corrupt_bitstream(&mut copy);
            }
            match flexcore_fabric::from_bitstream(&copy) {
                Ok(mapping) => {
                    self.resilience.bitstream_reloads += 1;
                    return Ok(mapping);
                }
                Err(e) => {
                    last_error = e.to_string();
                    if attempt < limit {
                        self.resilience.bitstream_retries += 1;
                        self.emit(TraceEvent::BitstreamRetry { attempt });
                    }
                }
            }
        }
        Err(SimError::UnrecoverableCorruption {
            context: "fabric bitstream",
            attempts: limit + 1,
            detail: last_error,
        })
    }

    /// Schedules a mid-run bitstream hot-swap: at the given commit
    /// boundary the system quiesces, drains every in-flight packet,
    /// programs the request's bitstream into the
    /// partial-reconfiguration region (with the same bounded
    /// retry-with-reload as [`System::load_bitstream`]), and rearms
    /// with the incoming extension per its [`SwapPolicy`]. See
    /// [`crate::reconfig`] for the lifecycle contract.
    ///
    /// Multiple swaps may be scheduled; they fire in boundary order.
    /// Like the fault plan, the schedule is construction-time
    /// configuration: a harness restoring a [`Snapshot`] into a fresh
    /// system must re-schedule the same swaps.
    pub fn schedule_swap(&mut self, req: SwapRequest<E>) {
        self.reconfig.schedule(req);
    }

    /// Completed hot-swaps, oldest first (rewound swaps are dropped by
    /// [`System::restore`]).
    pub fn swap_reports(&self) -> &[SwapReport] {
        self.reconfig.reports()
    }

    /// `true` while at least one scheduled swap has not yet fired.
    pub fn swap_pending(&self) -> bool {
        self.reconfig.any_pending()
    }

    /// The fabric's partial-reconfiguration region (frame counters and
    /// the currently-programmed mapping).
    pub fn reconfig_region(&self) -> &PartialRegion {
        &self.region
    }

    /// The quiesce → drain → swap → rearm sequence, at a commit
    /// boundary. An unprogrammable bitstream (retry budget exhausted)
    /// propagates as [`SimError::UnrecoverableCorruption`] with the
    /// swap still pending, so a recovery-ladder replay re-executes the
    /// whole window deterministically.
    fn execute_swap(&mut self, idx: usize) -> Result<(), SimError> {
        let cycle = self.core.cycle();
        let committed = self.forward.committed;
        self.emit(TraceEvent::SwapBegin { cycle, instret: committed });
        // Quiesce + drain: the commit stage stalls (exactly as under
        // FIFO back-pressure) until every in-flight packet has been
        // fully processed by the *outgoing* extension — packets are
        // drained, never dropped.
        let drained = self.fifo.occupancy(cycle) as u64;
        let drain_done = self.fifo.empty_at(cycle).max(self.fabric_free_at).max(cycle);
        if drain_done.saturating_sub(cycle) > self.config.watchdog_cycles {
            // A wedged fabric can never drain; surface the window as a
            // deadlock so the recovery ladder can restore and retry.
            self.wedged = Some(self.deadlock_snapshot(cycle));
            return Ok(());
        }
        // The outgoing extension's dirty meta-data is written back so
        // the incoming extension starts from a consistent memory image.
        self.meta.flush(&mut self.mem);
        let retries0 = self.resilience.bitstream_retries;
        let bitstream = self.reconfig.slots_mut()[idx].bitstream.clone();
        // The transfer models the fault-prone link: each attempt passes
        // through the injector and may be corrupted in flight.
        self.load_bitstream(&bitstream)?;
        // Shift the validated stream into the partial-reconfiguration
        // region frame by frame. The source bytes just validated, so a
        // frame failure here is a model inconsistency, not a transient.
        let frames = flexcore_fabric::segment_bitstream(&bitstream, flexcore_fabric::FRAME_BYTES);
        let region_err = |e: flexcore_fabric::ReconfigError| SimError::UnrecoverableCorruption {
            context: "partial-reconfiguration region",
            attempts: 1,
            detail: e.to_string(),
        };
        self.region.begin_load(frames.len() as u32);
        for f in &frames {
            self.region.push_frame(f).map_err(region_err)?;
        }
        let _ = self.region.commit().map_err(region_err)?;
        // Timing: one fabric cycle per frame shifted in, with every
        // failed transfer attempt re-shifting the whole stream
        // (retry-with-backoff), on top of the drain.
        let retries = self.resilience.bitstream_retries - retries0;
        let shift = (frames.len() as u64) * self.grid() * (1 + retries);
        let reconfig_done = self.align_up(drain_done.saturating_add(shift));
        self.core.stall_until(reconfig_done);
        self.fabric_free_at = reconfig_done;
        // Rearm: the incoming extension goes live with state per the
        // swap policy.
        let (from, to, policy, at_commit) = {
            let slot = &mut self.reconfig.slots_mut()[idx];
            let Some(mut incoming) = slot.pending.take() else {
                return Err(SimError::UnrecoverableCorruption {
                    context: "hot-swap slot",
                    attempts: 1,
                    detail: "scheduled swap has no pending extension".to_string(),
                });
            };
            match slot.policy {
                SwapPolicy::Reset => incoming.restore_state(&slot.pristine),
                SwapPolicy::Carry => {
                    if incoming.name() == self.ext.name() {
                        // A bitstream refresh: transplant the outgoing
                        // monitor state into the incoming instance.
                        let carried = self.ext.snapshot_state();
                        incoming.restore_state(&carried);
                    } else {
                        // State words are not portable across kinds.
                        incoming.restore_state(&slot.pristine);
                    }
                }
            }
            incoming.rearm();
            let outgoing = std::mem::replace(&mut self.ext, incoming);
            let from = outgoing.name();
            slot.retired = Some(outgoing);
            slot.done = true;
            (from, self.ext.name(), slot.policy, slot.at_commit)
        };
        self.cfgr = self.ext.cfgr();
        self.resilience.swaps_completed += 1;
        self.resilience.swap_drained_packets += drained;
        self.resilience.swap_stall_cycles += reconfig_done.saturating_sub(cycle);
        self.emit(TraceEvent::SwapComplete { cycle: reconfig_done, drained });
        self.reconfig.push_report(SwapReport {
            at_commit,
            from,
            to,
            policy,
            quiesce_cycle: cycle,
            rearmed_cycle: reconfig_done,
            drained_packets: drained,
            retries,
            frames: frames.len() as u64,
        });
        Ok(())
    }

    /// Captures the complete checkpointable state of the system (see
    /// [`crate::checkpoint`] for the restore contract). Meaningful at
    /// any commit boundary — in practice right after
    /// [`System::try_run_until`] returns
    /// [`RunOutcome::Paused`](crate::RunOutcome::Paused).
    pub fn snapshot(&self) -> Snapshot {
        self.capture_snapshot()
    }

    /// [`System::snapshot`] with the capture time charged to
    /// [`Phase::Checkpoint`] on the installed phase clock (free with
    /// the default [`NullPhaseClock`]). Checkpointing harnesses that
    /// profile should call this instead of `snapshot`.
    pub fn snapshot_profiled(&mut self) -> Snapshot {
        let span = self.prof.begin();
        let snap = self.capture_snapshot();
        self.prof.commit(Phase::Checkpoint, span);
        snap
    }

    fn capture_snapshot(&self) -> Snapshot {
        Snapshot {
            format: SNAPSHOT_FORMAT,
            ext_name: self.ext.name().to_string(),
            fifo_depth: self.fifo.depth() as u64,
            core: self.core.snapshot(),
            mem_pages: checkpoint::mem_delta(self.baseline_mem.as_ref(), &self.mem),
            meta: self.meta.snapshot(),
            bus_busy_until: self.bus.busy_until(),
            bus_stats: self.bus.stats(),
            shadow: flexcore_isa::Reg::all().map(|r| self.shadow.tag(r)).collect(),
            ext_state: self.ext.snapshot_state(),
            fifo: self.fifo.snapshot(),
            fabric_free_at: self.fabric_free_at,
            forward: self.forward,
            monitor_trap: self.monitor_trap.clone(),
            pending_trap: self.pending_trap,
            faults: self.faults.as_ref().map(FaultInjector::snapshot),
            resilience: self.resilience,
            fabric_stuck: self.fabric_stuck,
        }
    }

    /// Restores a [`Snapshot`] taken from an identically built system:
    /// same [`SystemConfig`], same extension, same
    /// [`load_program`](System::load_program) call, and the same
    /// re-armed fault plan (if one was armed). After a successful
    /// restore, continuing the run reproduces the uninterrupted run's
    /// [`RunResult`] bit for bit. Lockstep checking, if enabled, is
    /// re-synchronized to the restored state; trace-sink state is not
    /// part of the snapshot and restarts empty.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] when the snapshot does not match this
    /// system's construction (format version, extension, FIFO depth,
    /// fault-plan shape); the system is left unmodified in that case.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), RestoreError> {
        if snap.format != SNAPSHOT_FORMAT {
            return Err(RestoreError::new(format!(
                "unsupported snapshot format {} (this build reads {SNAPSHOT_FORMAT})",
                snap.format
            )));
        }
        // Realign scheduled hot-swaps against the restored commit
        // count *before* the extension-name check: the snapshot names
        // whichever extension was live at capture time, and the swap
        // hook runs before the pause hook, so a swap at boundary `c`
        // is completed in every snapshot with `committed >= c`.
        self.realign_swaps(snap.forward.committed);
        if snap.ext_name != self.ext.name() {
            return Err(RestoreError::new(format!(
                "snapshot was taken with extension `{}`, this system runs `{}`",
                snap.ext_name,
                self.ext.name()
            )));
        }
        if snap.fifo_depth != self.fifo.depth() as u64 {
            return Err(RestoreError::new(format!(
                "snapshot FIFO depth {} != configured depth {}",
                snap.fifo_depth,
                self.fifo.depth()
            )));
        }
        if snap.shadow.len() != flexcore_isa::NUM_REGS {
            return Err(RestoreError::new(format!(
                "snapshot has {} shadow tags, expected {}",
                snap.shadow.len(),
                flexcore_isa::NUM_REGS
            )));
        }
        match (&snap.faults, &mut self.faults) {
            (Some(fs), Some(inj)) => inj.restore(fs).map_err(RestoreError::new)?,
            (None, None) => {}
            (Some(_), None) => {
                return Err(RestoreError::new(
                    "snapshot carries fault-injector state but no plan is armed \
                     (re-arm the original FaultPlan before restoring)",
                ))
            }
            (None, Some(_)) => {
                return Err(RestoreError::new(
                    "a fault plan is armed but the snapshot carries no injector state",
                ))
            }
        }
        // Entries still in flight toward the fabric are discarded by
        // the rollback without ever being processed; account for them
        // before the FIFO state is replaced. The accumulator survives
        // the restore by design.
        self.fifo_drained_on_restore += self.fifo.occupancy(self.core.cycle()) as u64;
        let mut mem = self.baseline_mem.clone().unwrap_or_default();
        checkpoint::apply_delta(&mut mem, &snap.mem_pages);
        self.mem = mem;
        self.core.restore(&snap.core);
        self.meta.restore(&snap.meta);
        self.bus.restore(snap.bus_busy_until, snap.bus_stats);
        for (r, &tag) in flexcore_isa::Reg::all().zip(&snap.shadow) {
            self.shadow.set_tag(r, tag);
        }
        self.ext.restore_state(&snap.ext_state);
        self.fifo.restore(&snap.fifo);
        self.fabric_free_at = snap.fabric_free_at;
        self.forward = snap.forward;
        self.monitor_trap = snap.monitor_trap.clone();
        self.pending_trap = snap.pending_trap;
        self.resilience = snap.resilience;
        self.fabric_stuck = snap.fabric_stuck;
        self.wedged = None;
        self.diverged = None;
        if self.lockstep.is_some() {
            // Re-seed the golden model from the restored state.
            self.enable_lockstep();
        }
        Ok(())
    }

    /// Puts the hot-swap lifecycle in the state it had at `committed`
    /// instructions: completed swaps past that boundary are un-done
    /// (the outgoing extension comes back, the slot becomes pending
    /// again, its report is dropped), and pending swaps at or before it
    /// are fast-forwarded (the restored timeline already executed
    /// them — their timing effects live in the restored core/FIFO
    /// state). A replay that crosses a re-pended boundary re-executes
    /// the full swap window deterministically:
    /// [`SwapPolicy::Reset`] restores the pristine state captured at
    /// scheduling time, and [`SwapPolicy::Carry`] re-derives its carry
    /// from the (deterministically replayed) outgoing extension.
    fn realign_swaps(&mut self, committed: u64) {
        // Un-swap newest-first so stacked swaps unwind in order.
        for i in (0..self.reconfig.slots_mut().len()).rev() {
            let slot = &mut self.reconfig.slots_mut()[i];
            if slot.done && slot.at_commit > committed {
                if let Some(old) = slot.retired.take() {
                    slot.pending = Some(std::mem::replace(&mut self.ext, old));
                }
                slot.done = false;
            }
        }
        // Fast-forward oldest-first so stacked swaps land in order.
        for i in 0..self.reconfig.slots_mut().len() {
            let slot = &mut self.reconfig.slots_mut()[i];
            if !slot.done && slot.at_commit <= committed {
                if let Some(incoming) = slot.pending.take() {
                    slot.retired = Some(std::mem::replace(&mut self.ext, incoming));
                }
                slot.done = true;
            }
        }
        self.cfgr = self.ext.cfgr();
        self.reconfig.truncate_reports(committed);
    }

    /// Turns on lockstep golden-model checking from the core's current
    /// state: an ISA-level functional reference
    /// ([`crate::lockstep::LockstepChecker`]) steps commit-for-commit
    /// with the pipeline and any architectural disagreement makes the
    /// run return [`SimError::Divergence`] with a minimized
    /// [`DivergenceReport`]. Call after
    /// [`load_program`](System::load_program) (or at any commit
    /// boundary).
    pub fn enable_lockstep(&mut self) {
        self.lockstep =
            Some(LockstepChecker::new(&self.core, &self.mem, LockstepChecker::DEFAULT_WINDOW));
    }

    /// Turns lockstep checking off.
    pub fn disable_lockstep(&mut self) {
        self.lockstep = None;
    }

    /// Whether lockstep checking is active.
    pub fn lockstep_enabled(&self) -> bool {
        self.lockstep.is_some()
    }

    /// The lockstep checker, when enabled (e.g. to read
    /// [`commits_checked`](LockstepChecker::commits_checked)).
    pub fn lockstep(&self) -> Option<&LockstepChecker> {
        self.lockstep.as_ref()
    }

    /// Disarms the fault plan, if one is armed: polls decide nothing
    /// and draw nothing until [`System::rearm_faults`]. The recovery
    /// supervisor disarms before every replay so the restored run
    /// re-executes fault-free (see [`FaultInjector::disarm`]).
    pub fn disarm_faults(&mut self) {
        if let Some(inj) = &mut self.faults {
            inj.disarm();
        }
    }

    /// Re-arms a previously disarmed fault plan.
    pub fn rearm_faults(&mut self) {
        if let Some(inj) = &mut self.faults {
            inj.rearm();
        }
    }

    /// Whether a monitor trap has been raised or is in flight — at a
    /// pause boundary this means the "clean" state already carries a
    /// detected error, so it is not a safe restore point.
    pub fn trap_pending(&self) -> bool {
        self.monitor_trap.is_some() || self.pending_trap.is_some()
    }

    /// Enters degraded mode: the extension is bypassed
    /// ([`Extension::bypass`]) and from the next commit on, nothing is
    /// forwarded — commits are counted in
    /// [`ResilienceStats::unmonitored_commits`] and would-have-been
    /// forwards in [`ResilienceStats::suppressed_checks`].
    ///
    /// Rung 3 of the recovery supervisor's escalation ladder; degraded
    /// mode is one-way (the supervisor never restores past it).
    pub fn enter_degraded(&mut self) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        self.ext.bypass();
        let cycle = self.core.cycle();
        self.degraded_entry = Some((cycle, self.forward.committed));
        self.emit(TraceEvent::DegradedEnter { cycle });
    }

    /// Whether the system is running with monitoring bypassed.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// `(cycle, committed)` at degraded-mode entry, if it happened.
    pub fn degraded_entry(&self) -> Option<(u64, u64)> {
        self.degraded_entry
    }

    /// FIFO entries discarded in flight across every
    /// [`System::restore`] so far.
    pub fn fifo_drained_on_restore(&self) -> u64 {
        self.fifo_drained_on_restore
    }

    /// Emits a [`TraceEvent::Recovery`] instant at the current (just
    /// restored) cycle. Called by the supervisor after each successful
    /// rung so the Perfetto timeline shows where execution rewound to.
    pub fn note_recovery(&mut self, rung: u32) {
        let cycle = self.core.cycle();
        self.emit(TraceEvent::Recovery { cycle, rung });
    }

    /// Clears the trace sink's frozen trap context (see
    /// [`TraceSink::rearm_flight`]) — a rolled-back trap's flight
    /// snapshot describes a discarded timeline.
    pub fn rearm_flight(&mut self) {
        if S::ENABLED {
            self.sink.rearm_flight();
        }
    }

    fn finalize(&mut self, exit: ExitReason) -> RunResult {
        // The core waits for the co-processor to drain (EMPTY) before
        // completing — and for its own store buffer. A trap still in
        // flight in the fabric is therefore always delivered, even if
        // the program reached its own exit first.
        let exit = match (&self.pending_trap, &self.monitor_trap, exit) {
            (Some(_), Some(trap), ExitReason::Halt(_)) => ExitReason::MonitorTrap { pc: trap.pc },
            (_, _, e) => e,
        };
        let done = self
            .core
            .quiesced_at()
            .max(self.fifo.empty_at(self.core.cycle()))
            .max(self.fabric_free_at.max(self.core.cycle()));
        self.forward.fifo_stall_cycles = self.core.stats().external_stall_cycles;
        self.forward.peak_occupancy = self.fifo.peak_occupancy() as u64;
        let trap_skid = self
            .pending_trap
            .map(|(_, at_violation)| self.forward.committed.saturating_sub(at_violation));
        RunResult {
            exit,
            trap_skid,
            monitor_trap: self.monitor_trap.clone(),
            cycles: done,
            instret: self.core.stats().instret,
            forward: self.forward,
            core: *self.core.stats(),
            icache: self.core.icache_stats(),
            dcache: self.core.dcache_stats(),
            meta_cache: self.meta.stats(),
            bus: self.bus.stats(),
            resilience: self.resilience,
            console: self.core.console().to_vec(),
            flight: self.sink.flight_log(),
            host_ns: self.host_ns,
        }
    }
}
