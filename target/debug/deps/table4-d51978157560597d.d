/root/repo/target/debug/deps/table4-d51978157560597d.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-d51978157560597d.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
