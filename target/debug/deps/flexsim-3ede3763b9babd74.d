/root/repo/target/debug/deps/flexsim-3ede3763b9babd74.d: crates/bench/src/bin/flexsim.rs Cargo.toml

/root/repo/target/debug/deps/libflexsim-3ede3763b9babd74.rmeta: crates/bench/src/bin/flexsim.rs Cargo.toml

crates/bench/src/bin/flexsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
