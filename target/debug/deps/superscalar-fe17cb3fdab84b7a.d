/root/repo/target/debug/deps/superscalar-fe17cb3fdab84b7a.d: crates/bench/src/bin/superscalar.rs Cargo.toml

/root/repo/target/debug/deps/libsuperscalar-fe17cb3fdab84b7a.rmeta: crates/bench/src/bin/superscalar.rs Cargo.toml

crates/bench/src/bin/superscalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
