/root/repo/target/debug/examples/custom_monitor-d2be3098995477a9.d: examples/custom_monitor.rs

/root/repo/target/debug/examples/libcustom_monitor-d2be3098995477a9.rmeta: examples/custom_monitor.rs

examples/custom_monitor.rs:
