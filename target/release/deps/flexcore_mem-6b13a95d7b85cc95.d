/root/repo/target/release/deps/flexcore_mem-6b13a95d7b85cc95.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

/root/repo/target/release/deps/libflexcore_mem-6b13a95d7b85cc95.rlib: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

/root/repo/target/release/deps/libflexcore_mem-6b13a95d7b85cc95.rmeta: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/mainmem.rs:
crates/mem/src/metacache.rs:
crates/mem/src/storebuf.rs:
