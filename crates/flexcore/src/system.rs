//! The full FlexCore system model.

use flexcore_asm::Program;
use flexcore_mem::{CacheConfig, MainMemory, MetaDataCache, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason, StepResult, TracePacket};

use crate::ext::{ExtEnv, Extension, MonitorTrap};
use crate::interface::{Cfgr, ForwardFifo, ForwardPolicy};
use crate::stats::{ForwardStats, RunResult};
use crate::ShadowRegFile;

/// How the monitoring extension is implemented.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Implementation {
    /// Dedicated hardware integrated with the core, running at the
    /// core clock (the paper's "full ASIC" configuration — Table IV's
    /// 1X columns).
    Asic,
    /// On the reconfigurable fabric, running at `core clock / divisor`
    /// (the paper's FlexCore configuration: divisor 2 for UMC/DIFT/BC,
    /// divisor 4 for SEC).
    Fabric {
        /// Core-to-fabric clock ratio (1, 2, or 4).
        divisor: u32,
    },
}

impl Implementation {
    /// Core cycles per fabric cycle.
    pub fn divisor(self) -> u64 {
        match self {
            Implementation::Asic => 1,
            Implementation::Fabric { divisor } => u64::from(divisor.max(1)),
        }
    }
}

/// Configuration of a [`System`].
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Meta-data cache geometry (the paper's default: 4 KB, 32-B
    /// lines).
    pub meta_cache: CacheConfig,
    /// Forward-FIFO depth (the paper's default: 64).
    pub fifo_depth: usize,
    /// Extension implementation and clock ratio.
    pub implementation: Implementation,
    /// Whether the core pre-decodes instructions for the fabric (the
    /// OPCODE/SRC1/SRC2/DEST fields of Table II). The paper found
    /// core-side decoding makes DIFT 30% faster; turning this off
    /// charges the fabric an extra cycle per packet to decode the raw
    /// instruction word. Ablation knob; default `true`.
    pub decode_on_core: bool,
    /// Whether the meta-data cache supports bit-granular write masks
    /// (§III.D). Turning this off forces every meta-data update into an
    /// explicit read-modify-write pair, "an explicit cache read and
    /// then an explicit cache write". Ablation knob; default `true`.
    pub masked_meta_writes: bool,
    /// Whether monitor exceptions must be precise: every forwarded
    /// instruction stalls the commit stage until the fabric
    /// acknowledges it (no decoupling). Ablation knob; default `false`
    /// — the paper's extensions all terminate the program, so
    /// imprecise traps suffice and the FIFO decouples fully.
    pub precise_exceptions: bool,
}

impl SystemConfig {
    /// The paper's ASIC configuration: extension at the core clock.
    pub fn asic() -> SystemConfig {
        SystemConfig {
            core: CoreConfig::leon3(),
            meta_cache: CacheConfig::meta_default(),
            fifo_depth: 64,
            implementation: Implementation::Asic,
            decode_on_core: true,
            masked_meta_writes: true,
            precise_exceptions: false,
        }
    }

    /// FlexCore with the fabric at the full core clock (Table IV "1X").
    pub fn fabric_full_speed() -> SystemConfig {
        SystemConfig {
            implementation: Implementation::Fabric { divisor: 1 },
            ..SystemConfig::asic()
        }
    }

    /// FlexCore with the fabric at half the core clock (Table IV
    /// "0.5X" — UMC/DIFT/BC).
    pub fn fabric_half_speed() -> SystemConfig {
        SystemConfig {
            implementation: Implementation::Fabric { divisor: 2 },
            ..SystemConfig::asic()
        }
    }

    /// FlexCore with the fabric at a quarter of the core clock
    /// (Table IV "0.25X" — SEC).
    pub fn fabric_quarter_speed() -> SystemConfig {
        SystemConfig {
            implementation: Implementation::Fabric { divisor: 4 },
            ..SystemConfig::asic()
        }
    }

    /// Returns a copy with a different forward-FIFO depth (the
    /// Figure 5 sweep).
    pub fn with_fifo_depth(mut self, depth: usize) -> SystemConfig {
        self.fifo_depth = depth;
        self
    }

    /// Returns a copy with fabric-side instruction decoding (ablation:
    /// the fabric pays an extra cycle per packet).
    pub fn without_core_decode(mut self) -> SystemConfig {
        self.decode_on_core = false;
        self
    }

    /// Returns a copy without bit-granular meta-data writes (ablation:
    /// every meta update becomes a read-modify-write pair).
    pub fn without_masked_writes(mut self) -> SystemConfig {
        self.masked_meta_writes = false;
        self
    }

    /// Returns a copy with precise monitor exceptions (ablation: no
    /// decoupling — commit waits for the fabric on every forwarded
    /// instruction).
    pub fn with_precise_exceptions(mut self) -> SystemConfig {
        self.precise_exceptions = true;
        self
    }

    /// Returns a copy with a different meta-data cache capacity in
    /// bytes (geometry otherwise unchanged).
    pub fn with_meta_cache_bytes(mut self, bytes: u32) -> SystemConfig {
        self.meta_cache.size_bytes = bytes;
        self
    }
}

/// A complete FlexCore system: core + shared bus + meta-data cache +
/// core–fabric interface + one monitoring extension.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct System<E: Extension> {
    config: SystemConfig,
    core: Core,
    mem: MainMemory,
    bus: SystemBus,
    meta: MetaDataCache,
    shadow: ShadowRegFile,
    ext: E,
    cfgr: Cfgr,
    fifo: ForwardFifo,
    fabric_free_at: u64,
    forward: ForwardStats,
    monitor_trap: Option<MonitorTrap>,
    /// TRAP delivery: `(fabric time the signal asserts, instret at the
    /// violating instruction)`. The exception is imprecise (§III.C):
    /// the core keeps committing until the signal arrives.
    pending_trap: Option<(u64, u64)>,
    fault: Option<(u64, u32)>,
}

impl<E: Extension> System<E> {
    /// Builds a system around `ext`.
    pub fn new(config: SystemConfig, ext: E) -> System<E> {
        let cfgr = ext.cfgr();
        System {
            config,
            core: Core::new(config.core),
            mem: MainMemory::new(),
            bus: SystemBus::default(),
            meta: MetaDataCache::new(config.meta_cache),
            shadow: ShadowRegFile::new(),
            ext,
            cfgr,
            fifo: ForwardFifo::new(config.fifo_depth),
            fabric_free_at: 0,
            forward: ForwardStats::default(),
            monitor_trap: None,
            pending_trap: None,
            fault: None,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The active CFGR value.
    pub fn cfgr(&self) -> Cfgr {
        self.cfgr
    }

    /// The monitored core.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Main memory (e.g. to inspect program results).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable main memory (e.g. to pre-load inputs).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// The extension.
    pub fn extension(&self) -> &E {
        &self.ext
    }

    /// Loads a program and lets the extension initialize meta-data for
    /// the image (e.g. UMC marks static data as written). The
    /// initialization happens "before time zero": it does not consume
    /// simulated cycles or bus bandwidth.
    pub fn load_program(&mut self, program: &Program) {
        self.core.load_program(program, &mut self.mem);
        let mut scratch_bus = SystemBus::default();
        let mut env = ExtEnv::new(&mut self.meta, &mut self.mem, &mut scratch_bus, &mut self.shadow, 0);
        self.ext
            .on_program_load(program.base(), program.len() as u32, &mut env);
        // Leave the meta cache cold and its statistics clean.
        self.meta.flush(&mut self.mem);
        self.meta = MetaDataCache::new(self.config.meta_cache);
    }

    /// Arranges for a single transient fault: the `nth` committed
    /// instruction's result has `bit` flipped — in the forwarded packet
    /// *and* in architectural state, like a real ALU soft error. Used
    /// to demonstrate SEC.
    pub fn inject_result_fault(&mut self, nth: u64, bit: u32) {
        self.fault = Some((nth, bit));
    }

    fn grid(&self) -> u64 {
        self.config.implementation.divisor()
    }

    fn align_up(&self, t: u64) -> u64 {
        t.next_multiple_of(self.grid())
    }

    /// Runs the extension on one packet starting no earlier than `enq`;
    /// returns `(start, bfifo_value)`.
    fn process_on_fabric(&mut self, pkt: &TracePacket, enq: u64) -> (u64, Option<u32>) {
        let start = self.align_up(enq.max(self.fabric_free_at));
        let period = self.grid();
        let mut env = ExtEnv::with_period(
            &mut self.meta,
            &mut self.mem,
            &mut self.bus,
            &mut self.shadow,
            start,
            period,
        );
        if !self.config.masked_meta_writes {
            env.force_read_modify_write();
        }
        if !self.config.decode_on_core {
            // The fabric must decode the raw instruction word itself.
            env.charge_fabric_cycle();
        }
        let (ret, trap) = match self.ext.process(pkt, &mut env) {
            Ok(ret) => (ret, None),
            Err(t) => (None, Some(t)),
        };
        let ready = env.ready_at();
        let finish = self.align_up(ready).max(start + self.grid());
        self.fabric_free_at = finish;
        if let Some(t) = trap {
            // Imprecise exception: the TRAP signal reaches the core
            // only once the extension's pipeline stage carrying the
            // violating packet drains; the core keeps committing until
            // then (§III.C — none of the prototype extensions need a
            // precise restart).
            if self.monitor_trap.is_none() {
                let assert_at = finish + self.grid() * u64::from(self.ext.pipeline_stages());
                self.monitor_trap = Some(t);
                self.pending_trap = Some((assert_at, self.forward.committed));
            }
        }
        (start, ret)
    }

    /// Handles one committed instruction: the forwarding filter, the
    /// FIFO, and the fabric.
    fn on_commit(&mut self, mut pkt: TracePacket) {
        self.forward.committed += 1;
        if let Some((nth, bit)) = self.fault {
            if self.forward.committed == nth {
                pkt.result ^= 1 << bit;
                if let Some(rd) = pkt.dest {
                    self.core.set_reg(rd, pkt.result);
                }
                self.fault = None;
            }
        }
        let mut policy = self.cfgr.policy(pkt.class);
        if !policy.forwards() {
            return;
        }
        if self.config.precise_exceptions {
            // No decoupling: every forwarded instruction must be
            // acknowledged before it commits.
            policy = ForwardPolicy::WaitForAck;
        }
        let now = pkt.commit_cycle;
        match policy {
            ForwardPolicy::Ignore => {}
            ForwardPolicy::IfNotFull => {
                if self.fifo.is_full(now) {
                    self.forward.dropped += 1;
                    return;
                }
                self.record_forward(&pkt);
                let (start, _) = self.process_on_fabric(&pkt, now);
                self.fifo.push(now, start);
            }
            ForwardPolicy::Always => {
                self.record_forward(&pkt);
                let enq = if self.fifo.is_full(now) {
                    // Commit stalls until the oldest entry is dequeued.
                    let free_at = self.fifo.empty_slot_at(now);
                    self.core.stall_until(free_at);
                    free_at
                } else {
                    now
                };
                let (start, _) = self.process_on_fabric(&pkt, enq);
                self.fifo.push(enq, start);
            }
            ForwardPolicy::WaitForAck => {
                self.record_forward(&pkt);
                let (start, ret) = self.process_on_fabric(&pkt, now);
                let ack = self.fabric_free_at.max(start);
                self.core.stall_until(ack);
                if let (Some(v), Some(rd)) = (ret, pkt.dest) {
                    // BFIFO return value lands in the destination
                    // register.
                    self.core.set_reg(rd, v);
                }
                // Waiting for the acknowledgment makes the exception
                // precise: deliver before the next instruction.
                if self.config.precise_exceptions {
                    if let Some((_, at_violation)) = self.pending_trap {
                        self.pending_trap = Some((0, at_violation));
                    }
                }
            }
        }
    }

    fn record_forward(&mut self, pkt: &TracePacket) {
        self.forward.forwarded += 1;
        self.forward.per_class[pkt.class.index()] += 1;
    }

    /// Runs until the program exits, a monitor trap is delivered, or
    /// `max_instructions` commit. Returns the full result.
    pub fn run(&mut self, max_instructions: u64) -> RunResult {
        loop {
            if let Some((assert_at, _)) = self.pending_trap {
                if self.core.cycle() >= assert_at {
                    let pc = self.monitor_trap.as_ref().expect("trap recorded").pc;
                    self.core.halt(ExitReason::MonitorTrap { pc });
                }
            }
            if self.core.stats().instret >= max_instructions {
                self.core.halt(ExitReason::InstructionLimit);
            }
            match self.core.step(&mut self.mem, &mut self.bus) {
                StepResult::Committed(pkt) => self.on_commit(pkt),
                StepResult::Annulled => {}
                StepResult::Exited(exit) => return self.finalize(exit),
            }
        }
    }

    fn finalize(&mut self, exit: ExitReason) -> RunResult {
        // The core waits for the co-processor to drain (EMPTY) before
        // completing — and for its own store buffer. A trap still in
        // flight in the fabric is therefore always delivered, even if
        // the program reached its own exit first.
        let exit = match (&self.pending_trap, exit) {
            (Some(_), ExitReason::Halt(_)) => {
                let pc = self.monitor_trap.as_ref().expect("trap recorded").pc;
                ExitReason::MonitorTrap { pc }
            }
            (_, e) => e,
        };
        let done = self
            .core
            .quiesced_at()
            .max(self.fifo.empty_at(self.core.cycle()))
            .max(self.fabric_free_at.max(self.core.cycle()));
        self.forward.fifo_stall_cycles = self.core.stats().external_stall_cycles;
        self.forward.peak_occupancy = self.fifo.peak_occupancy();
        let trap_skid = self
            .pending_trap
            .map(|(_, at_violation)| self.forward.committed.saturating_sub(at_violation));
        RunResult {
            exit,
            trap_skid,
            monitor_trap: self.monitor_trap.clone(),
            cycles: done,
            instret: self.core.stats().instret,
            forward: self.forward,
            core: *self.core.stats(),
            icache: self.core.icache_stats(),
            dcache: self.core.dcache_stats(),
            meta_cache: self.meta.stats(),
            bus: self.bus.stats(),
            console: self.core.console().to_vec(),
        }
    }
}
