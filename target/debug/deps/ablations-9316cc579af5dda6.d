/root/repo/target/debug/deps/ablations-9316cc579af5dda6.d: tests/ablations.rs

/root/repo/target/debug/deps/ablations-9316cc579af5dda6: tests/ablations.rs

tests/ablations.rs:
