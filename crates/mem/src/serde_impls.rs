//! `Serialize` implementations for the statistics types (behind the
//! `serde` feature).

use serde::{Serialize, Value};

use crate::{BusStats, CacheStats};

impl Serialize for CacheStats {
    fn to_value(&self) -> Value {
        Value::object()
            .field("read_hits", &self.read_hits)
            .field("read_misses", &self.read_misses)
            .field("write_hits", &self.write_hits)
            .field("write_misses", &self.write_misses)
            .field("writebacks", &self.writebacks)
            .field("accesses", &self.accesses())
            .field("miss_ratio", &self.miss_ratio())
            .build()
    }
}

impl Serialize for BusStats {
    fn to_value(&self) -> Value {
        Value::object()
            .field("busy_cycles", &self.busy_cycles)
            .field("core_transfers", &self.core_transfers)
            .field("fabric_transfers", &self.fabric_transfers)
            .field("core_wait_cycles", &self.core_wait_cycles)
            .field("fabric_wait_cycles", &self.fabric_wait_cycles)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_serialize_with_derived_fields() {
        let s = CacheStats { read_hits: 3, read_misses: 1, ..Default::default() };
        let v = s.to_value();
        assert_eq!(v.get("accesses").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("miss_ratio").and_then(Value::as_f64), Some(0.25));
    }
}
