/root/repo/target/debug/deps/flexsim-221b2f3a3da99270.d: crates/bench/src/bin/flexsim.rs Cargo.toml

/root/repo/target/debug/deps/libflexsim-221b2f3a3da99270.rmeta: crates/bench/src/bin/flexsim.rs Cargo.toml

crates/bench/src/bin/flexsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
