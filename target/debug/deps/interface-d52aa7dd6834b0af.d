/root/repo/target/debug/deps/interface-d52aa7dd6834b0af.d: tests/interface.rs

/root/repo/target/debug/deps/libinterface-d52aa7dd6834b0af.rmeta: tests/interface.rs

tests/interface.rs:
