/root/repo/target/debug/deps/fig4-b7a6311b36a8a2da.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-b7a6311b36a8a2da.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
