/root/repo/target/debug/examples/program_fabric-3dedb00c59eac1eb.d: examples/program_fabric.rs Cargo.toml

/root/repo/target/debug/examples/libprogram_fabric-3dedb00c59eac1eb.rmeta: examples/program_fabric.rs Cargo.toml

examples/program_fabric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
