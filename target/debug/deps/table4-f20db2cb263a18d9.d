/root/repo/target/debug/deps/table4-f20db2cb263a18d9.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-f20db2cb263a18d9: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
