//! Regenerates the paper's **Figure 5**: average FlexCore performance
//! (normalized execution time, geometric mean over the benchmarks) as a
//! function of the forward-FIFO size, for each extension at its paper
//! operating point (0.5X for UMC/DIFT/BC, 0.25X for SEC).
//!
//! `--quick` sweeps three benchmarks and four FIFO sizes.
//!
//! `--series <dir>` additionally writes each run's cycle-resolved epoch
//! metrics as `<dir>/fig5_fifo<N>_<ext>_<workload>.jsonl` — the FIFO
//! back-pressure sweep is where the per-epoch occupancy/stall columns
//! are most interesting.

use flexcore::SystemConfig;
use flexcore_bench::{
    baseline_cycles, geomean, run_extension, run_extension_series, series_dir_from_args, ExtKind,
};
use flexcore_workloads::Workload;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let series = series_dir_from_args();
    let sizes: &[usize] = if quick { &[8, 16, 64, 256] } else { &[4, 8, 16, 32, 64, 128, 256] };
    let workloads = if quick {
        vec![Workload::sha(), Workload::stringsearch(), Workload::bitcount()]
    } else {
        Workload::all()
    };

    println!("Figure 5: average normalized execution time vs forward-FIFO size");
    println!("(each extension at its paper fabric clock: UMC/DIFT/BC 0.5X, SEC 0.25X)");
    println!("{}", "=".repeat(60));
    print!("{:<10}", "FIFO");
    for ext in ExtKind::ALL {
        print!("{:>10}", ext.name());
    }
    println!();
    println!("{}", "-".repeat(60));

    let baselines: Vec<u64> = workloads.iter().map(baseline_cycles).collect();

    for &size in sizes {
        print!("{:<10}", size);
        for ext in ExtKind::ALL {
            let cfg = match ext.paper_divisor() {
                4 => SystemConfig::fabric_quarter_speed(),
                _ => SystemConfig::fabric_half_speed(),
            }
            .with_fifo_depth(size);
            let ratios: Vec<f64> = workloads
                .iter()
                .zip(&baselines)
                .map(|(w, &base)| {
                    let run = match &series {
                        Some(dir) => {
                            let stem = format!(
                                "fig5_fifo{size}_{}_{}",
                                ext.name().to_lowercase(),
                                w.name()
                            );
                            run_extension_series(w, ext, cfg, dir, &stem)
                        }
                        None => run_extension(w, ext, cfg),
                    };
                    run.cycles as f64 / base as f64
                })
                .collect();
            print!("{:>10.3}", geomean(&ratios));
        }
        println!();
    }
    println!("{}", "-".repeat(60));
    println!(
        "Shape check vs the paper's Figure 5: small FIFOs hurt; the curve\n\
         flattens by 64 entries; beyond that the benefit is marginal."
    );
}
