//! Integer condition codes and branch conditions.

use std::fmt;
use std::str::FromStr;

/// The SPARC integer condition-code flags (the `icc` field of the PSR).
///
/// Updated by the `cc`-suffixed ALU instructions, consumed by
/// conditional branches. This is also the 4-bit `COND` field forwarded
/// to the FlexCore fabric in each trace packet (Table II).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct IccFlags {
    /// Negative: bit 31 of the result.
    pub n: bool,
    /// Zero: result was zero.
    pub z: bool,
    /// Overflow: signed arithmetic overflow.
    pub v: bool,
    /// Carry: unsigned carry out / borrow.
    pub c: bool,
}

impl IccFlags {
    /// Packs the flags into the 4-bit `NZVC` encoding used by the trace
    /// packet (`N` is bit 3, `C` is bit 0).
    pub fn to_bits(self) -> u8 {
        (u8::from(self.n) << 3)
            | (u8::from(self.z) << 2)
            | (u8::from(self.v) << 1)
            | u8::from(self.c)
    }

    /// Unpacks flags from the 4-bit `NZVC` encoding.
    pub fn from_bits(bits: u8) -> IccFlags {
        IccFlags {
            n: bits & 0b1000 != 0,
            z: bits & 0b0100 != 0,
            v: bits & 0b0010 != 0,
            c: bits & 0b0001 != 0,
        }
    }

    /// Flags produced by an ordinary logic/shift result (`V`/`C`
    /// cleared).
    pub fn from_result(value: u32) -> IccFlags {
        IccFlags { n: (value as i32) < 0, z: value == 0, v: false, c: false }
    }
}

impl fmt::Display for IccFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}",
            if self.n { 'N' } else { '-' },
            if self.z { 'Z' } else { '-' },
            if self.v { 'V' } else { '-' },
            if self.c { 'C' } else { '-' },
        )
    }
}

/// The 16 SPARC V8 integer branch conditions (`Bicc` `cond` field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Cond {
    /// Branch never.
    N = 0b0000,
    /// Branch on equal (`Z`).
    E = 0b0001,
    /// Branch on less or equal (`Z or (N xor V)`).
    Le = 0b0010,
    /// Branch on less (`N xor V`).
    L = 0b0011,
    /// Branch on less or equal unsigned (`C or Z`).
    Leu = 0b0100,
    /// Branch on carry set (unsigned less).
    Cs = 0b0101,
    /// Branch on negative.
    Neg = 0b0110,
    /// Branch on overflow set.
    Vs = 0b0111,
    /// Branch always.
    A = 0b1000,
    /// Branch on not equal.
    Ne = 0b1001,
    /// Branch on greater.
    G = 0b1010,
    /// Branch on greater or equal.
    Ge = 0b1011,
    /// Branch on greater unsigned.
    Gu = 0b1100,
    /// Branch on carry clear (unsigned greater or equal).
    Cc = 0b1101,
    /// Branch on positive.
    Pos = 0b1110,
    /// Branch on overflow clear.
    Vc = 0b1111,
}

impl Cond {
    /// Decodes the 4-bit `cond` field.
    pub fn from_bits(bits: u8) -> Cond {
        use Cond::*;
        match bits & 0xf {
            0b0000 => N,
            0b0001 => E,
            0b0010 => Le,
            0b0011 => L,
            0b0100 => Leu,
            0b0101 => Cs,
            0b0110 => Neg,
            0b0111 => Vs,
            0b1000 => A,
            0b1001 => Ne,
            0b1010 => G,
            0b1011 => Ge,
            0b1100 => Gu,
            0b1101 => Cc,
            0b1110 => Pos,
            _ => Vc,
        }
    }

    /// The 4-bit encoding of this condition.
    pub fn to_bits(self) -> u8 {
        self as u8
    }

    /// Evaluates the condition against a set of flags, per the SPARC V8
    /// manual's `Bicc` semantics.
    pub fn eval(self, f: IccFlags) -> bool {
        use Cond::*;
        match self {
            N => false,
            A => true,
            E => f.z,
            Ne => !f.z,
            Le => f.z || (f.n ^ f.v),
            G => !(f.z || (f.n ^ f.v)),
            L => f.n ^ f.v,
            Ge => !(f.n ^ f.v),
            Leu => f.c || f.z,
            Gu => !(f.c || f.z),
            Cs => f.c,
            Cc => !f.c,
            Neg => f.n,
            Pos => !f.n,
            Vs => f.v,
            Vc => !f.v,
        }
    }

    /// Whether the branch outcome does not depend on the flags
    /// (`ba`/`bn`).
    pub fn is_unconditional(self) -> bool {
        matches!(self, Cond::A | Cond::N)
    }

    /// Assembly mnemonic suffix (`"e"` for `be`, `"a"` for `ba`, …).
    pub fn mnemonic(self) -> &'static str {
        use Cond::*;
        match self {
            N => "n",
            E => "e",
            Le => "le",
            L => "l",
            Leu => "leu",
            Cs => "cs",
            Neg => "neg",
            Vs => "vs",
            A => "a",
            Ne => "ne",
            G => "g",
            Ge => "ge",
            Gu => "gu",
            Cc => "cc",
            Pos => "pos",
            Vc => "vc",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing a branch-condition mnemonic fails.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseCondError {
    text: String,
}

impl fmt::Display for ParseCondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid branch condition `{}`", self.text)
    }
}

impl std::error::Error for ParseCondError {}

impl FromStr for Cond {
    type Err = ParseCondError;

    fn from_str(s: &str) -> Result<Cond, ParseCondError> {
        // Accept both the canonical suffixes and common synonyms from
        // the SPARC assembler (`bnz`, `bz`, `blu`, `bgeu`).
        let c = match s {
            "n" => Cond::N,
            "e" | "z" | "eq" => Cond::E,
            "le" => Cond::Le,
            "l" | "lt" => Cond::L,
            "leu" => Cond::Leu,
            "cs" | "lu" | "ltu" => Cond::Cs,
            "neg" => Cond::Neg,
            "vs" => Cond::Vs,
            "a" => Cond::A,
            "ne" | "nz" => Cond::Ne,
            "g" | "gt" => Cond::G,
            "ge" => Cond::Ge,
            "gu" | "gtu" => Cond::Gu,
            "cc" | "geu" => Cond::Cc,
            "pos" => Cond::Pos,
            "vc" => Cond::Vc,
            _ => return Err(ParseCondError { text: s.to_string() }),
        };
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(n: bool, z: bool, v: bool, c: bool) -> IccFlags {
        IccFlags { n, z, v, c }
    }

    #[test]
    fn bits_round_trip() {
        for bits in 0..16u8 {
            assert_eq!(IccFlags::from_bits(bits).to_bits(), bits);
            assert_eq!(Cond::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn always_and_never() {
        for bits in 0..16u8 {
            let f = IccFlags::from_bits(bits);
            assert!(Cond::A.eval(f));
            assert!(!Cond::N.eval(f));
        }
    }

    #[test]
    fn complementary_pairs() {
        // Each SPARC condition in 1..8 is the complement of the one at
        // code | 8.
        for bits in 1..8u8 {
            let a = Cond::from_bits(bits);
            let b = Cond::from_bits(bits | 8);
            for fbits in 0..16u8 {
                let f = IccFlags::from_bits(fbits);
                assert_ne!(a.eval(f), b.eval(f), "{a} vs {b} on {f}");
            }
        }
    }

    #[test]
    fn signed_comparison_semantics() {
        // After `subcc a, b`: N^V means a < b (signed).
        // a=1, b=2 -> result -1: N=1, V=0.
        let lt = flags(true, false, false, false);
        assert!(Cond::L.eval(lt));
        assert!(Cond::Le.eval(lt));
        assert!(!Cond::Ge.eval(lt));
        assert!(!Cond::G.eval(lt));
        // equal: Z=1.
        let eq = flags(false, true, false, false);
        assert!(Cond::Le.eval(eq));
        assert!(Cond::Ge.eval(eq));
        assert!(Cond::E.eval(eq));
        assert!(!Cond::L.eval(eq));
    }

    #[test]
    fn unsigned_comparison_semantics() {
        // After `subcc a, b` with a < b unsigned: C=1 (borrow).
        let ltu = flags(false, false, false, true);
        assert!(Cond::Cs.eval(ltu));
        assert!(Cond::Leu.eval(ltu));
        assert!(!Cond::Gu.eval(ltu));
        assert!(!Cond::Cc.eval(ltu));
    }

    #[test]
    fn parse_mnemonics_round_trip() {
        for bits in 0..16u8 {
            let c = Cond::from_bits(bits);
            assert_eq!(c.mnemonic().parse::<Cond>().unwrap(), c);
        }
    }

    #[test]
    fn parse_synonyms() {
        assert_eq!("nz".parse::<Cond>().unwrap(), Cond::Ne);
        assert_eq!("geu".parse::<Cond>().unwrap(), Cond::Cc);
        assert_eq!("lu".parse::<Cond>().unwrap(), Cond::Cs);
        assert!("xyz".parse::<Cond>().is_err());
    }

    #[test]
    fn from_result_sets_n_and_z() {
        assert_eq!(IccFlags::from_result(0), flags(false, true, false, false));
        assert_eq!(IccFlags::from_result(0x8000_0000), flags(true, false, false, false));
        assert_eq!(IccFlags::from_result(7), flags(false, false, false, false));
    }
}
