/root/repo/target/debug/deps/flexcore_pipeline-5c1b0a53dc420521.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/libflexcore_pipeline-5c1b0a53dc420521.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/libflexcore_pipeline-5c1b0a53dc420521.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/serde_impls.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
