//! End-to-end fault-injection and resilience properties: determinism
//! of seeded campaigns, deadlock detection instead of hangs, bounded
//! bitstream reload, and FIFO accounting invariants under drops.

use flexcore_suite::asm::assemble;
use flexcore_suite::fabric::to_bitstream;
use flexcore_suite::flexcore::ext::Sec;
use flexcore_suite::flexcore::faults::{FaultModel, FaultPlan, FaultSchedule, FaultTarget};
use flexcore_suite::flexcore::{OverflowPolicy, SimError, System, SystemConfig};
use flexcore_suite::pipeline::ExitReason;
use proptest::prelude::*;

/// An ALU-heavy counted loop: ~1200 commits, plenty of SEC-checked
/// operations for faults to land on.
fn alu_loop() -> flexcore_suite::asm::Program {
    assemble(
        "
        start:  set 200, %o0
                set 0, %o1
        loop:   add %o1, 3, %o1
                xor %o1, %o0, %o2
                sub %o2, 1, %o3
                subcc %o0, 1, %o0
                bne loop
                nop
                ta 0
        ",
    )
    .expect("test program assembles")
}

fn noisy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .inject(
            FaultTarget::CommitResult,
            FaultSchedule::Bernoulli { per_million: 20_000 },
            FaultModel::BitFlip { bits: 1 },
        )
        .inject(
            FaultTarget::Register,
            FaultSchedule::Bernoulli { per_million: 5_000 },
            FaultModel::BitFlip { bits: 2 },
        )
        .inject(
            FaultTarget::FifoPacket,
            FaultSchedule::EveryCommits(97),
            FaultModel::Mask(0x8000_0001),
        )
}

fn faulted_run(seed: u64) -> (Vec<String>, Result<(u64, u64), String>) {
    let mut sys =
        System::new(SystemConfig::fabric_quarter_speed().with_cycle_budget(10_000_000), Sec::new());
    sys.load_program(&alu_loop());
    sys.arm_faults(noisy_plan(seed));
    let outcome = match sys.try_run(1_000_000) {
        Ok(r) => Ok((r.cycles, r.resilience.faults_injected)),
        Err(e) => Err(e.to_string()),
    };
    let log = sys.fault_log().iter().map(|e| format!("{e:?}")).collect();
    (log, outcome)
}

#[test]
fn same_seed_reproduces_the_exact_run() {
    let (log_a, out_a) = faulted_run(42);
    let (log_b, out_b) = faulted_run(42);
    assert!(!log_a.is_empty(), "the noisy plan must actually fire");
    assert_eq!(log_a, log_b, "fault event logs diverged");
    assert_eq!(out_a, out_b, "cycles / fault counts diverged");
}

#[test]
fn different_seeds_draw_different_schedules() {
    let (log_a, _) = faulted_run(42);
    let (log_b, _) = faulted_run(43);
    assert_ne!(log_a, log_b);
}

#[test]
fn sec_detects_an_injected_result_flip() {
    let mut sys = System::new(SystemConfig::fabric_quarter_speed(), Sec::new());
    sys.load_program(&alu_loop());
    // Commit 5 is the loop's first `add` (commits 1-4 are the two
    // `set` expansions; commit 10 would be the unchecked delay-slot
    // nop).
    sys.arm_faults(FaultPlan::new(7).inject(
        FaultTarget::CommitResult,
        FaultSchedule::AtCommit(5),
        FaultModel::Mask(1 << 13),
    ));
    let r = sys.try_run(1_000_000).expect("run completes");
    assert!(r.monitor_trap.is_some(), "SEC missed the flip: {:?}", r.exit);
    assert_eq!(r.resilience.faults_injected, 1);
}

#[test]
fn wedged_fabric_is_a_deadlock_error_not_a_hang() {
    let config =
        SystemConfig::fabric_quarter_speed().with_fifo_depth(4).with_watchdog_cycles(5_000);
    let mut sys = System::new(config, Sec::new());
    sys.load_program(&alu_loop());
    sys.arm_faults(FaultPlan::new(1).inject(
        FaultTarget::FabricStuck,
        FaultSchedule::AtCommit(5),
        FaultModel::BitFlip { bits: 1 },
    ));
    match sys.try_run(1_000_000) {
        Err(SimError::Deadlock(snap)) => {
            assert!(snap.fabric_stuck, "snapshot missed the wedged fabric: {snap}");
            assert_eq!(snap.fifo_depth, 4);
            assert_eq!(snap.fifo_occupancy, 4, "FIFO should be full at deadlock");
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "simulation error")]
#[allow(deprecated)] // the deprecated wrapper's panic behavior is what's under test
fn legacy_run_panics_on_deadlock_instead_of_hanging() {
    let config =
        SystemConfig::fabric_quarter_speed().with_fifo_depth(4).with_watchdog_cycles(5_000);
    let mut sys = System::new(config, Sec::new());
    sys.load_program(&alu_loop());
    sys.arm_faults(FaultPlan::new(1).inject(
        FaultTarget::FabricStuck,
        FaultSchedule::AtCommit(5),
        FaultModel::BitFlip { bits: 1 },
    ));
    let _ = sys.run(1_000_000);
}

#[test]
fn cycle_budget_is_enforced() {
    let mut sys =
        System::new(SystemConfig::fabric_quarter_speed().with_cycle_budget(50), Sec::new());
    sys.load_program(&alu_loop());
    match sys.try_run(1_000_000) {
        Err(SimError::CycleBudgetExceeded { budget: 50, .. }) => {}
        other => panic!("expected a budget error, got {other:?}"),
    }
}

#[test]
fn corrupted_bitstream_reloads_within_budget() {
    let bytes = to_bitstream(&flexcore_suite::fabric::map_to_luts(
        &flexcore_suite::flexcore::Extension::netlist(&Sec::new()),
        6,
    ));
    let mut sys = System::new(SystemConfig::fabric_quarter_speed(), Sec::new());
    // Strike transfer attempts 1 and 2; attempt 3 goes through clean.
    sys.arm_faults(
        FaultPlan::new(3)
            .inject(
                FaultTarget::Bitstream,
                FaultSchedule::AtCommit(1),
                FaultModel::BitFlip { bits: 1 },
            )
            .inject(
                FaultTarget::Bitstream,
                FaultSchedule::AtCommit(2),
                FaultModel::BitFlip { bits: 1 },
            ),
    );
    let mapping = sys.load_bitstream(&bytes).expect("reload succeeds within budget");
    assert!(mapping.lut_count() > 0);
    let res = sys.resilience();
    assert_eq!(res.bitstream_retries, 2);
    assert_eq!(res.bitstream_reloads, 1);
}

#[test]
fn unrecoverable_bitstream_corruption_is_reported() {
    let bytes = to_bitstream(&flexcore_suite::fabric::map_to_luts(
        &flexcore_suite::flexcore::Extension::netlist(&Sec::new()),
        6,
    ));
    let mut sys =
        System::new(SystemConfig::fabric_quarter_speed().with_bitstream_retry_limit(2), Sec::new());
    // Every transfer attempt gets hit.
    sys.arm_faults(FaultPlan::new(9).inject(
        FaultTarget::Bitstream,
        FaultSchedule::EveryCommits(1),
        FaultModel::BitFlip { bits: 3 },
    ));
    match sys.load_bitstream(&bytes) {
        Err(SimError::UnrecoverableCorruption { context, attempts, .. }) => {
            assert_eq!(context, "fabric bitstream");
            assert_eq!(attempts, 3, "limit 2 means 3 transfer attempts");
        }
        other => panic!("expected unrecoverable corruption, got {other:?}"),
    }
}

fn overflow_run(
    depth: usize,
    policy: OverflowPolicy,
    budget: u64,
) -> flexcore_suite::flexcore::RunResult {
    let config = SystemConfig::fabric_quarter_speed()
        .with_fifo_depth(depth)
        .with_overflow_policy(policy)
        .with_cycle_budget(budget);
    let mut sys = System::new(config, Sec::new());
    sys.load_program(&alu_loop());
    sys.try_run(1_000_000).expect("benign program completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under `DropWithAccounting`, every committed instruction is
    /// either forwarded or counted as dropped; occupancy never exceeds
    /// the configured depth; and the drop counters agree.
    #[test]
    fn overflow_accounting_is_conserved(depth in 1usize..16) {
        let r = overflow_run(depth, OverflowPolicy::DropWithAccounting, 10_000_000);
        prop_assert_eq!(r.exit, ExitReason::Halt(0));
        prop_assert!(r.monitor_trap.is_none(), "drops must not fake a trap");
        prop_assert!(r.forward.peak_occupancy <= depth as u64);
        prop_assert_eq!(r.forward.dropped, r.resilience.dropped_overflow);
        prop_assert!(r.forward.forwarded + r.forward.dropped <= r.forward.committed);
        // Sec forwards every ALU op: nothing else may be unaccounted.
        prop_assert!(r.forward.forwarded + r.forward.dropped > 0);
    }

    /// The stall policy trades cycles instead of packets: zero drops,
    /// and shrinking the FIFO never makes the run faster.
    #[test]
    fn stall_policy_never_drops(depth in 1usize..16) {
        let r = overflow_run(depth, OverflowPolicy::Stall, 10_000_000);
        prop_assert_eq!(r.exit, ExitReason::Halt(0));
        prop_assert_eq!(r.forward.dropped, 0);
        prop_assert_eq!(r.resilience.dropped_overflow, 0);
        let big = overflow_run(64, OverflowPolicy::Stall, 10_000_000);
        prop_assert!(r.cycles >= big.cycles, "{} < {}", r.cycles, big.cycles);
        prop_assert_eq!(r.instret, big.instret);
    }

    /// Faulted runs are as deterministic as clean ones, for any seed.
    #[test]
    fn any_seed_is_reproducible(seed in any::<u64>()) {
        let (log_a, out_a) = faulted_run(seed);
        let (log_b, out_b) = faulted_run(seed);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(out_a, out_b);
    }
}
