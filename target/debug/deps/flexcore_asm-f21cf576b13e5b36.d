/root/repo/target/debug/deps/flexcore_asm-f21cf576b13e5b36.d: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

/root/repo/target/debug/deps/libflexcore_asm-f21cf576b13e5b36.rlib: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

/root/repo/target/debug/deps/libflexcore_asm-f21cf576b13e5b36.rmeta: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

crates/asm/src/lib.rs:
crates/asm/src/emit.rs:
crates/asm/src/error.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
