//! Sparse big-endian backing store.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Flat 32-bit physical address space, allocated lazily in 4-KB pages.
///
/// All multi-byte accesses are **big-endian**, matching SPARC V8.
/// Unwritten memory reads as zero (the simulator's loader zero-fills
/// `.bss` implicitly this way).
///
/// `MainMemory` is purely functional; all timing lives in
/// [`SystemBus`](crate::SystemBus) and the caches.
///
/// # Example
///
/// ```
/// use flexcore_mem::MainMemory;
/// let mut m = MainMemory::new();
/// m.write_u32(0x100, 0x1122_3344);
/// assert_eq!(m.read_u8(0x100), 0x11); // big-endian: MSB first
/// assert_eq!(m.read_u16(0x102), 0x3344);
/// ```
#[derive(Clone, Default, Debug)]
pub struct MainMemory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> MainMemory {
        MainMemory::default()
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr).map_or(0, |p| p[(addr & PAGE_MASK) as usize])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a big-endian halfword. `addr` is interpreted as given; the
    /// caller (the core) enforces alignment traps.
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_be_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a big-endian halfword.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let [b0, b1] = value.to_be_bytes();
        self.write_u8(addr, b0);
        self.write_u8(addr.wrapping_add(1), b1);
    }

    /// Reads a big-endian word.
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_be_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a big-endian word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_be_bytes().into_iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Copies `bytes` into memory starting at `addr` (the program
    /// loader).
    pub fn load(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn dump(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i as u32))).collect()
    }

    /// Number of 4-KB pages that have been touched.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// The page size used by [`MainMemory::page_indices`] /
    /// [`MainMemory::page_bytes`], in bytes.
    pub const PAGE_BYTES: usize = PAGE_SIZE;

    /// Indices of every resident page, sorted ascending. A page's base
    /// address is `index << 12`.
    ///
    /// Checkpointing uses this (together with
    /// [`MainMemory::page_bytes`]) to delta-compress memory against a
    /// baseline image without walking the whole 32-bit address space.
    pub fn page_indices(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.pages.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The raw bytes of a resident page, or `None` if the page has
    /// never been touched (and therefore reads as zero).
    pub fn page_bytes(&self, index: u32) -> Option<&[u8]> {
        self.pages.get(&index).map(|p| &p[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = MainMemory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xdead_beec), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut m = MainMemory::new();
        m.write_u32(0x40, 0x0102_0304);
        assert_eq!(m.read_u8(0x40), 0x01);
        assert_eq!(m.read_u8(0x43), 0x04);
        assert_eq!(m.read_u16(0x40), 0x0102);
        assert_eq!(m.read_u16(0x42), 0x0304);
    }

    #[test]
    fn cross_page_word_access() {
        let mut m = MainMemory::new();
        let addr = PAGE_SIZE as u32 - 2;
        m.write_u32(addr, 0xaabb_ccdd);
        assert_eq!(m.read_u32(addr), 0xaabb_ccdd);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn load_and_dump_round_trip() {
        let mut m = MainMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.load(0x1000, &data);
        assert_eq!(m.dump(0x1000, 256), data);
    }

    #[test]
    fn address_wraparound_is_defined() {
        let mut m = MainMemory::new();
        m.write_u32(0xffff_fffe, 0x1234_5678);
        assert_eq!(m.read_u8(0xffff_ffff), 0x34);
        assert_eq!(m.read_u8(0x0000_0000), 0x56);
        assert_eq!(m.read_u8(0x0000_0001), 0x78);
    }
}
