//! `flexsim` — run an assembly program (or a named workload) on the
//! FlexCore system from the command line.
//!
//! ```text
//! flexsim [OPTIONS] <program.s | workload-name>
//!
//! OPTIONS:
//!   --ext <umc|dift|bc|sec|mprot|none>   monitoring extension (default: none)
//!   --clock <1x|0.5x|0.25x>              fabric clock ratio (default: 0.5x)
//!   --fifo <N>                           forward-FIFO depth (default: 64)
//!   --max <N>                            instruction budget (default: 200M)
//!   --trace                              print every committed instruction
//!
//! Workload names: sha gmac stringsearch fft basicmath bitcount
//!                  crc32 qsort dijkstra
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run --release -p flexcore-bench --bin flexsim -- sha --ext dift
//! cargo run --release -p flexcore-bench --bin flexsim -- my_prog.s --ext umc --clock 0.25x
//! ```

use std::process::ExitCode;

use flexcore::ext::{Bc, Dift, Extension, Mprot, Sec, Umc};
use flexcore::{System, SystemConfig};
use flexcore_asm::{assemble, Program};
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason, StepResult};
use flexcore_workloads::Workload;

struct Options {
    input: String,
    ext: String,
    clock: String,
    fifo: usize,
    max: u64,
    trace: bool,
    disasm: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        ext: "none".into(),
        clock: "0.5x".into(),
        fifo: 64,
        max: 200_000_000,
        trace: false,
        disasm: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ext" => opts.ext = args.next().ok_or("--ext needs a value")?,
            "--clock" => opts.clock = args.next().ok_or("--clock needs a value")?,
            "--fifo" => {
                opts.fifo = args
                    .next()
                    .ok_or("--fifo needs a value")?
                    .parse()
                    .map_err(|e| format!("--fifo: {e}"))?;
            }
            "--max" => {
                opts.max = args
                    .next()
                    .ok_or("--max needs a value")?
                    .parse()
                    .map_err(|e| format!("--max: {e}"))?;
            }
            "--trace" => opts.trace = true,
            "--disasm" => opts.disasm = true,
            "--help" | "-h" => return Err("help".into()),
            other if opts.input.is_empty() => opts.input = other.to_string(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.input.is_empty() {
        return Err("missing program file or workload name".into());
    }
    Ok(opts)
}

fn load_program(input: &str) -> Result<Program, String> {
    let named = Workload::all().into_iter().chain(Workload::extra()).find(|w| w.name() == input);
    let source = match named {
        Some(w) => w.source(),
        None => std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?,
    };
    assemble(&source).map_err(|e| format!("{input}: {e}"))
}

fn config(opts: &Options) -> Result<SystemConfig, String> {
    let base = match opts.clock.as_str() {
        "1x" | "1X" => SystemConfig::fabric_full_speed(),
        "0.5x" | "0.5X" => SystemConfig::fabric_half_speed(),
        "0.25x" | "0.25X" => SystemConfig::fabric_quarter_speed(),
        other => return Err(format!("unknown clock ratio `{other}`")),
    };
    Ok(base.with_fifo_depth(opts.fifo))
}

fn report_exit(exit: &ExitReason) -> i32 {
    match exit {
        ExitReason::Halt(0) => 0,
        ExitReason::Halt(n) => {
            eprintln!("program failed its own check (ta {n})");
            *n as i32
        }
        other => {
            eprintln!("abnormal exit: {other:?}");
            2
        }
    }
}

fn run_monitored<E: Extension>(program: &Program, opts: &Options, ext: E) -> i32 {
    let cfg = match config(opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let name = ext.name();
    let mut sys = System::new(cfg, ext);
    sys.load_program(program);
    let r = sys.run(opts.max);
    println!("[{name}] {} instructions, {} cycles (CPI {:.3})", r.instret, r.cycles, r.cpi());
    println!(
        "[{name}] forwarded {:.1}% of instructions; FIFO stalls {} cyc; meta-cache {}",
        r.forward.forwarded_fraction() * 100.0,
        r.forward.fifo_stall_cycles,
        r.meta_cache
    );
    if !r.console.is_empty() {
        println!("--- console ---\n{}", String::from_utf8_lossy(&r.console));
    }
    if let Some(trap) = &r.monitor_trap {
        eprintln!("[{name}] {trap}");
        return 3;
    }
    report_exit(&r.exit)
}

fn run_bare(program: &Program, opts: &Options) -> i32 {
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(program, &mut mem);
    let exit = loop {
        match core.step(&mut mem, &mut bus) {
            StepResult::Committed(pkt) => {
                if opts.trace {
                    println!("{:>10}  {:#010x}  {}", pkt.commit_cycle, pkt.pc, pkt.inst);
                }
                if core.stats().instret >= opts.max {
                    core.halt(ExitReason::InstructionLimit);
                }
            }
            StepResult::Annulled => {}
            StepResult::Exited(e) => break e,
        }
    };
    println!(
        "[core] {} instructions, {} cycles (CPI {:.3}); icache {}; dcache {}",
        core.stats().instret,
        core.quiesced_at(),
        core.quiesced_at() as f64 / core.stats().instret.max(1) as f64,
        core.icache_stats(),
        core.dcache_stats()
    );
    if !core.console().is_empty() {
        println!("--- console ---\n{}", String::from_utf8_lossy(core.console()));
    }
    report_exit(&exit)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: flexsim [--ext umc|dift|bc|sec|mprot|none] [--clock 1x|0.5x|0.25x]\n\
                 \x20              [--fifo N] [--max N] [--trace] <program.s | workload>"
            );
            return ExitCode::from(2);
        }
    };
    let program = match load_program(&opts.input) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.disasm {
        print!("{}", program.listing());
        return ExitCode::SUCCESS;
    }
    let code = match opts.ext.as_str() {
        "none" => run_bare(&program, &opts),
        "umc" => run_monitored(&program, &opts, Umc::new()),
        "dift" => run_monitored(&program, &opts, Dift::new()),
        "bc" => run_monitored(&program, &opts, Bc::new()),
        "sec" => run_monitored(&program, &opts, Sec::new()),
        "mprot" => run_monitored(&program, &opts, Mprot::new()),
        other => {
            eprintln!("unknown extension `{other}`");
            2
        }
    };
    ExitCode::from(code.clamp(0, 255) as u8)
}
