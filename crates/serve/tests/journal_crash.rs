//! Crash-shaped journal torture tests.
//!
//! Three layers, strongest first:
//!
//! 1. **Exhaustive truncation**: a real journal killed at EVERY byte
//!    offset — resume must repair, lose nothing that was durable, and
//!    finish to the exact clean outcome set with no duplicates.
//! 2. **Property-based truncation**: random journal shapes (events,
//!    quarantines, supersessions) cut at a random offset — the same
//!    lose-nothing/duplicate-nothing contract must hold for all of
//!    them.
//! 3. **Real crash points**: the test re-executes itself as a child
//!    process with [`flexcore_serve::journal::CRASH_POINT_ENV`] set, so
//!    compaction genuinely dies (`exit(137)`, the SIGKILL status)
//!    between two specific syscalls — then the parent proves the next
//!    open resumes bit-identically and a re-run compaction completes.

use std::collections::HashMap;
use std::path::PathBuf;

use flexcore_bench::trial::TrialOutcome;
use flexcore_serve::journal::CRASH_POINT_ENV;
use flexcore_serve::{JobSpec, Journal, LoggedOutcome, TrialFailure};
use proptest::prelude::*;
use serde::Value;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flexserve-jcrash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

fn outcome(n: u64) -> TrialOutcome {
    TrialOutcome { trapped: true, faults_injected: n, ..TrialOutcome::default() }
}

/// One append against a journal — the unit the property tests shuffle.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Append a completed trial for label `sha trial {0}`.
    Trial(u8, u64),
    /// Append a quarantine record for label `sha trial {0}`.
    Quarantine(u8),
    /// Append a lifecycle event.
    Event,
}

fn apply(j: &mut Journal, op: Op) {
    match op {
        Op::Trial(label, n) => {
            j.append_trial(&format!("sha trial {label}"), &outcome(n)).expect("append")
        }
        Op::Quarantine(label) => j
            .append_quarantine(
                &format!("sha trial {label}"),
                &TrialFailure::Panicked { attempts: 2, last_message: "chaos".into() },
            )
            .expect("append"),
        Op::Event => {
            j.append_event("job-mark", Value::object().field("note", &"x").build()).expect("append")
        }
    }
}

/// Writes a journal from `ops` and returns (spec, path, bytes, clean
/// recovered outcome map).
fn journal_from_ops(tag: &str, ops: &[Op]) -> (JobSpec, PathBuf, Vec<u8>, Outcomes) {
    let spec = JobSpec::default();
    let path = tmpdir(tag).join(format!("{}.jsonl", spec.id()));
    let (mut j, _) =
        Journal::open(&path, &spec.header(), &spec.canonical(), false, 1).expect("create");
    // Keep the history physically possible: once a label is Done the
    // scheduler never touches it again, so drop any later record for
    // it. (Quarantine → retry → Done supersession stays in play.)
    let mut done: std::collections::HashSet<u8> = std::collections::HashSet::new();
    for &op in ops {
        match op {
            Op::Trial(l, _) | Op::Quarantine(l) if done.contains(&l) => continue,
            Op::Trial(l, _) => {
                done.insert(l);
            }
            _ => {}
        }
        apply(&mut j, op);
    }
    j.sync().expect("sync");
    drop(j);
    let bytes = std::fs::read(&path).expect("read");
    let (_, clean) =
        Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("clean resume");
    (spec, path, bytes, clean.outcomes)
}

type Outcomes = HashMap<String, LoggedOutcome>;

/// The core contract, checked for one truncation offset: opening the
/// cut file must succeed, recover only records that were durable (a
/// subset of the clean state, line-for-line identical where present),
/// and after re-appending what resume reports missing, a reopen must
/// equal the clean outcome set exactly — nothing lost, nothing
/// duplicated.
fn check_cut(
    spec: &JobSpec,
    path: &PathBuf,
    bytes: &[u8],
    clean: &Outcomes,
    cut: usize,
) -> Result<(), String> {
    std::fs::write(path, &bytes[..cut]).map_err(|e| e.to_string())?;
    let (mut j, rec) = Journal::open(path, &spec.header(), &spec.canonical(), true, 1)
        .map_err(|e| format!("cut at {cut}: open failed: {e}"))?;

    // Durable prefix only: every complete line before the cut is a
    // line of the original file, so each recovered label must exist in
    // the clean state. (A label's *state* may lag — e.g. the cut kept a
    // quarantine whose superseding success was cut off — that is the
    // correct replay of what was durable.)
    for label in rec.outcomes.keys() {
        if !clean.contains_key(label) {
            return Err(format!("cut at {cut}: invented label {label:?}"));
        }
    }

    // Finish the job: re-append the current state for every label that
    // is missing or not Done — exactly what a resumed scheduler does.
    for (label, state) in clean {
        let done = matches!(rec.outcomes.get(label), Some(LoggedOutcome::Done(_)));
        if !done {
            match state {
                LoggedOutcome::Done(o) => j.append_trial(label, o).map_err(|e| e.to_string())?,
                LoggedOutcome::Quarantined { detail, attempts } => j
                    .append_quarantine(
                        label,
                        &TrialFailure::Panicked {
                            attempts: *attempts,
                            last_message: detail.clone(),
                        },
                    )
                    .map_err(|e| e.to_string())?,
            }
        }
    }
    j.sync().map_err(|e| e.to_string())?;
    drop(j);

    let (_, finished) = Journal::open(path, &spec.header(), &spec.canonical(), true, 1)
        .map_err(|e| format!("cut at {cut}: reopen failed: {e}"))?;
    if &finished.outcomes != clean {
        return Err(format!(
            "cut at {cut}: finished state diverged\n  got:  {:?}\n  want: {clean:?}",
            finished.outcomes
        ));
    }
    Ok(())
}

/// Layer 1: kill the journal at every byte offset, including 0 (file
/// emptied: restamp from scratch) and len (no truncation at all).
#[test]
fn resume_survives_truncation_at_every_byte_offset() {
    let ops = [
        Op::Event,
        Op::Trial(0, 1),
        Op::Quarantine(1),
        Op::Event,
        Op::Trial(1, 2),
        Op::Trial(2, 3),
        Op::Event,
    ];
    let (spec, path, bytes, clean) = journal_from_ops("every-byte", &ops);
    assert_eq!(clean.len(), 3, "three labels in the clean state");
    for cut in 0..=bytes.len() {
        if let Err(msg) = check_cut(&spec, &path, &bytes, &clean, cut) {
            panic!("{msg}");
        }
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        4 => (0u8..5, 0u64..100).prop_map(|(l, n)| Op::Trial(l, n)),
        2 => (0u8..5).prop_map(Op::Quarantine),
        1 => Just(Op::Event),
    ];
    prop::collection::vec(op, 1..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Layer 2: the same contract over random journal shapes — labels
    /// that repeat (supersession), quarantines that later succeed,
    /// events sprinkled anywhere — cut at a random point.
    #[test]
    fn resume_survives_random_shapes_and_random_cuts(
        ops in arb_ops(),
        cut_permille in 0usize..=1000,
    ) {
        let (spec, path, bytes, clean) = journal_from_ops("prop", &ops);
        let cut = bytes.len() * cut_permille / 1000;
        if let Err(msg) = check_cut(&spec, &path, &bytes, &clean, cut) {
            return Err(proptest::test_runner::TestCaseError::fail(msg));
        }

        // And compaction of whatever the finished file holds keeps the
        // outcome set bit-identical while hitting the record-count
        // floor: header + one line per label.
        Journal::compact(&path, &spec.canonical()).expect("compacts");
        let text = std::fs::read_to_string(&path).expect("read");
        prop_assert_eq!(text.lines().count(), clean.len() + 1);
        let (_, after) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("resume");
        prop_assert_eq!(after.outcomes, clean);
    }
}

/// Layer 3: compaction killed for real — `exit(137)` between two
/// specific syscalls — via a child re-execution of this test binary.
#[test]
fn compaction_killed_at_each_real_crash_point_resumes_bit_identically() {
    // Child mode: compact the journal named in the environment and let
    // the injected crash point kill the process mid-sequence.
    if let Ok(path) = std::env::var("FLEXSERVE_CRASH_CHILD_JOURNAL") {
        let canonical =
            std::env::var("FLEXSERVE_CRASH_CHILD_SPEC").expect("child needs the canonical spec");
        Journal::compact(PathBuf::from(path).as_path(), &canonical).expect("compaction itself");
        // Reaching here means the crash point did not fire — the
        // parent asserts on our exit status, so just return.
        return;
    }

    let exe = std::env::current_exe().expect("test binary path");
    let ops = [
        Op::Event,
        Op::Trial(0, 7),
        Op::Quarantine(1),
        Op::Trial(1, 8),
        Op::Event,
        Op::Trial(2, 9),
    ];
    for point in ["compact-before-temp-sync", "compact-before-rename", "compact-before-dir-sync"] {
        let (spec, path, original, clean) = journal_from_ops(&format!("kill-{point}"), &ops);

        let status = std::process::Command::new(&exe)
            .arg("compaction_killed_at_each_real_crash_point_resumes_bit_identically")
            .arg("--exact")
            .arg("--nocapture")
            .env(CRASH_POINT_ENV, point)
            .env("FLEXSERVE_CRASH_CHILD_JOURNAL", &path)
            .env("FLEXSERVE_CRASH_CHILD_SPEC", spec.canonical())
            .status()
            .expect("spawn child");
        assert_eq!(status.code(), Some(137), "`{point}` must kill the child mid-compaction");

        // Whatever the kill left on disk, the journal must read as
        // either the intact old file or the intact new one.
        let now = std::fs::read(&path).expect("journal still present");
        let compacted_lines = clean.len() + 1;
        let is_old = now == original;
        let is_new = String::from_utf8_lossy(&now).lines().count() == compacted_lines;
        assert!(is_old || is_new, "`{point}` left a torn journal");

        // Resume sees the exact clean outcome set either way…
        let (_, rec) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("open");
        assert_eq!(rec.outcomes, clean, "`{point}`: resumed state diverged");

        // …and a re-run compaction completes, after which the
        // record-count contract holds: header + one line per label.
        Journal::compact(&path, &spec.canonical()).expect("re-run compaction");
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), compacted_lines, "`{point}`: wrong record count");
        let (_, rec) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("reopen");
        assert_eq!(rec.outcomes, clean, "`{point}`: post-compaction state diverged");
    }
}
