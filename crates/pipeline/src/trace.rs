//! The commit-stage trace packet (the paper's Table II FFIFO payload).

use flexcore_isa::{IccFlags, InstrClass, Instruction, Reg};

/// Everything the commit stage forwards to the FlexCore fabric for one
/// instruction.
///
/// Field-for-field this is the forward-FIFO packet of the paper's
/// Table II: PC (32), undecoded instruction (32), load/store address
/// (32), result (32), both source operand values (32+32), condition
/// codes (4), branch direction (1), plus the pre-decoded fields the
/// core supplies so the fabric doesn't have to decode (opcode, register
/// numbers, miscellaneous control signals). The paper found that doing
/// this decode on the core side makes the DIFT extension 30% faster.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TracePacket {
    /// Program counter of the committed instruction (`PC`).
    pub pc: u32,
    /// Undecoded instruction word (`INST`).
    pub inst_word: u32,
    /// The decoded instruction (the `OPCODE`/`DECODE`/`EXTRA` fields of
    /// Table II, in structured form).
    pub inst: Instruction,
    /// Instruction class used by the forwarding filter.
    pub class: InstrClass,
    /// Effective address of a load/store (`ADDR`; 0 otherwise).
    pub addr: u32,
    /// Result of the instruction (`RES`): ALU result, loaded value, or
    /// link address.
    pub result: u32,
    /// Source operand 1 value (`SRCV1`; 0 if the instruction has none).
    pub srcv1: u32,
    /// Source operand 2 value (`SRCV2`): register or immediate, or the
    /// store data value for stores with an immediate offset.
    pub srcv2: u32,
    /// Store data value (part of `EXTRA`; 0 for non-stores).
    pub store_value: u32,
    /// Condition codes after the instruction (`COND`).
    pub cond: IccFlags,
    /// Computed branch direction (`BRANCH`).
    pub branch_taken: bool,
    /// Decoded source register 1 (`SRC1`).
    pub src1: Option<Reg>,
    /// Decoded source register 2 (`SRC2`).
    pub src2: Option<Reg>,
    /// Decoded destination register (`DEST`).
    pub dest: Option<Reg>,
    /// Core-clock cycle at which the instruction committed.
    pub commit_cycle: u64,
}

impl TracePacket {
    /// Total payload width in bits of the hardware FIFO entry this
    /// packet models (Table II: PC 32 + INST 32 + ADDR 32 + RES 32 +
    /// SRCV1 32 + SRCV2 32 + COND 4 + BRANCH 1 + OPCODE 5 + DECODE 32 +
    /// EXTRA 32 + SRC1 9 + SRC2 9 + DEST 9).
    pub const WIDTH_BITS: u32 = 32 + 32 + 32 + 32 + 32 + 32 + 4 + 1 + 5 + 32 + 32 + 9 + 9 + 9;

    /// Number of 32-bit words in the packed FIFO entry.
    pub const WIDTH_WORDS: usize = (TracePacket::WIDTH_BITS as usize).div_ceil(32);

    /// Packs the packet into the hardware FIFO-entry layout: the
    /// Table II fields in order, LSB-first, 293 bits in 10 words.
    ///
    /// Field encoding notes: register numbers use the 9-bit fields with
    /// bit 8 as a *valid* flag (the SPARC windowed-register space needs
    /// the width; the valid flag distinguishes "no source register").
    /// `DECODE` carries the instruction class (bits 4:0) and the store
    /// flag (bit 5); `EXTRA` carries the store data value.
    pub fn pack(&self) -> [u32; TracePacket::WIDTH_WORDS] {
        let mut words = [0u32; TracePacket::WIDTH_WORDS];
        let mut pos = 0usize;
        let mut put = |value: u32, bits: usize| {
            let v = u64::from(value) & ((1u64 << bits) - 1);
            let word = pos / 32;
            let off = pos % 32;
            words[word] |= (v << off) as u32;
            if off + bits > 32 {
                words[word + 1] |= (v >> (32 - off)) as u32;
            }
            pos += bits;
        };
        let reg_field = |r: Option<flexcore_isa::Reg>| -> u32 {
            match r {
                Some(r) => 0x100 | r.index() as u32,
                None => 0,
            }
        };
        put(self.pc, 32);
        put(self.inst_word, 32);
        put(self.addr, 32);
        put(self.result, 32);
        put(self.srcv1, 32);
        put(self.srcv2, 32);
        put(u32::from(self.cond.to_bits()), 4);
        put(u32::from(self.branch_taken), 1);
        put(self.class.index() as u32, 5); // OPCODE: the class id
        let decode = self.class.index() as u32 | (u32::from(self.class.is_store()) << 5);
        put(decode, 32);
        put(self.store_value, 32); // EXTRA
        put(reg_field(self.src1), 9);
        put(reg_field(self.src2), 9);
        put(reg_field(self.dest), 9);
        debug_assert_eq!(pos, TracePacket::WIDTH_BITS as usize);
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_isa::{Instruction, Opcode, Operand2};

    fn sample() -> TracePacket {
        let inst = Instruction::mem(Opcode::St, Reg::O1, Reg::O0, Operand2::Imm(8));
        TracePacket {
            pc: 0x0000_1040,
            inst_word: flexcore_isa::encode(&inst),
            inst,
            class: InstrClass::of(&inst),
            addr: 0x0000_2008,
            result: 0x55,
            srcv1: 0x2000,
            srcv2: 8,
            store_value: 0x55,
            cond: IccFlags { n: false, z: true, v: false, c: true },
            branch_taken: false,
            src1: Some(Reg::O0),
            src2: Some(Reg::O1),
            dest: None,
            commit_cycle: 99,
        }
    }

    #[test]
    fn packet_width_matches_table_ii() {
        // The sum of the core-to-fabric FFIFO field widths in Table II.
        assert_eq!(TracePacket::WIDTH_BITS, 293);
        assert_eq!(TracePacket::WIDTH_WORDS, 10);
    }

    #[test]
    fn pack_places_fields_at_their_table_ii_offsets() {
        let p = sample();
        let w = p.pack();
        // Word-aligned leading fields.
        assert_eq!(w[0], p.pc);
        assert_eq!(w[1], p.inst_word);
        assert_eq!(w[2], p.addr);
        assert_eq!(w[3], p.result);
        assert_eq!(w[4], p.srcv1);
        assert_eq!(w[5], p.srcv2);
        // COND occupies bits 0..4 of word 6.
        assert_eq!(w[6] & 0xf, u32::from(p.cond.to_bits()));
        // BRANCH at bit 4.
        assert_eq!((w[6] >> 4) & 1, 0);
        // OPCODE (class) at bits 5..10.
        assert_eq!((w[6] >> 5) & 0x1f, p.class.index() as u32);
    }

    #[test]
    fn register_fields_carry_a_valid_flag() {
        let p = sample();
        let w = p.pack();
        // SRC1 begins at bit 32*6 + 4+1+5+32+32 = bit 266 -> word 8 bit
        // 10.
        let src1 = (w[8] >> 10) & 0x1ff;
        assert_eq!(src1, 0x100 | Reg::O0.index() as u32);
        let src2 = ((u64::from(w[8]) | (u64::from(w[9]) << 32)) >> 19) & 0x1ff;
        assert_eq!(src2 as u32, 0x100 | Reg::O1.index() as u32);
        // DEST: a store has none -> all-zero field (valid bit clear).
        let dest = ((u64::from(w[8]) | (u64::from(w[9]) << 32)) >> 28) & 0x1ff;
        assert_eq!(dest, 0);
    }

    #[test]
    fn packing_is_injective_on_key_fields() {
        let a = sample();
        let mut b = sample();
        b.addr ^= 4;
        assert_ne!(a.pack(), b.pack());
        let mut c = sample();
        c.branch_taken = true;
        assert_ne!(a.pack(), c.pack());
    }
}
