//! Dataflow analyses over the recovered CFG.
//!
//! Four fixpoint passes run over [`Cfg`] blocks:
//!
//! * **Must-initialize** (a reaching-definitions intersection): which
//!   registers have *definitely* been written on every path. Reads of a
//!   register outside that set are the static counterpart of the UMC
//!   extension's uninitialized-read trap.
//! * **Value ranges**: an interval per register, with exact
//!   (single-point) values evaluated by the golden-model ALU
//!   ([`flexcore_isa::interp::ref_alu`]) so the static and dynamic
//!   semantics cannot drift, and branch-edge refinement (`cmp %r, k;
//!   bl target` bounds `%r` on both edges) so loop induction variables
//!   stay bounded instead of collapsing to unknown at the loop-head
//!   join. Feeds the static memory-address checks and the `--xcheck`
//!   proven-load set.
//! * **Liveness** (backward): register writes whose value is never
//!   read.
//! * **Window depth**: `save`/`restore` pairing on the flat register
//!   file model.
//!
//! Delay-slot instructions live on CFG *edges*, so every pass applies
//! the edge's delay instruction when propagating block-exit state to a
//! successor — an annulled slot simply never contributes.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use flexcore_asm::Program;
use flexcore_isa::interp::{ref_alu, CONSOLE_BASE, STACK_TOP};
use flexcore_isa::{Cond, IccFlags, Instruction, Opcode, Operand2, Reg, NUM_REGS};

use crate::cfg::{Cfg, Edge, TermKind};
use crate::diag::{Diagnostic, Rule};

/// Base of the monitor metadata region (mirrors
/// `flexcore::ext::META_BASE`; duplicated here so the analysis crate
/// stays independent of the simulator).
pub const META_BASE: u32 = 0x4000_0000;

/// How far below [`STACK_TOP`] a statically-known store address is
/// accepted as a stack access.
const STACK_SLACK: u32 = 64 * 1024;

/// A load whose effective address is statically bounded inside the
/// loaded image on **every** path that executes it — the loader marks
/// the whole image initialized, so UMC must never trap on it. These
/// anchor the `--xcheck` soundness gate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProvenLoad {
    /// Address of the load instruction.
    pub pc: u32,
    /// Lowest effective address the analysis admits.
    pub lo: u32,
    /// Highest effective address the analysis admits.
    pub hi: u32,
    /// Access width in bytes.
    pub bytes: u32,
}

/// Everything the dataflow passes produce.
#[derive(Clone, Debug, Default)]
pub struct DataflowReport {
    /// Findings, unordered.
    pub diagnostics: Vec<Diagnostic>,
    /// Loads proven initialized at program load (empty when the program
    /// contains co-processor ops, which can retag memory behind the
    /// analysis's back).
    pub proven_loads: Vec<ProvenLoad>,
}

/// Runs all dataflow passes over a recovered CFG.
pub fn analyze_dataflow(program: &Program, cfg: &Cfg) -> DataflowReport {
    let mut report = DataflowReport::default();
    if cfg.entry().is_none() {
        return report;
    }
    must_init_pass(cfg, &mut report.diagnostics);
    const_pass(program, cfg, &mut report);
    liveness_pass(cfg, &mut report.diagnostics);
    window_pass(cfg, &mut report.diagnostics);
    report
}

// ---------------------------------------------------------------------
// instruction read/write sets
// ---------------------------------------------------------------------

/// The odd register of an even/odd double-word pair.
pub(crate) fn pair_of(rd: Reg) -> Option<Reg> {
    Reg::new(rd.index() as u8 | 1).filter(|&p| p != rd)
}

/// Registers an instruction reads. Extends
/// [`Instruction::source_regs`] with the cases the decode-level pair
/// cannot express: the data register of a store with a register
/// offset, both halves of `std`, and `swap`'s read of `rd`.
pub(crate) fn read_regs(inst: &Instruction) -> Vec<Reg> {
    let (a, b) = inst.source_regs();
    let mut regs: Vec<Reg> = a.into_iter().chain(b).collect();
    if let Instruction::Mem { op, rd, .. } = *inst {
        if op.is_store() || op == Opcode::Swap {
            if !regs.contains(&rd) {
                regs.push(rd);
            }
            if op == Opcode::Std {
                if let Some(hi) = pair_of(rd) {
                    regs.push(hi);
                }
            }
        }
    }
    regs.retain(|r| !r.is_zero());
    regs
}

/// Registers an instruction writes (both halves of `ldd`).
pub(crate) fn write_regs(inst: &Instruction) -> Vec<Reg> {
    let mut regs: Vec<Reg> = inst.dest_reg().into_iter().collect();
    if let Instruction::Mem { op: Opcode::Ldd, rd, .. } = *inst {
        if let Some(hi) = pair_of(rd) {
            if !hi.is_zero() {
                regs.push(hi);
            }
        }
    }
    regs
}

fn reads_icc(inst: &Instruction) -> bool {
    match *inst {
        Instruction::Branch { cond, .. } | Instruction::Trap { cond, .. } => {
            !cond.is_unconditional()
        }
        _ => false,
    }
}

fn writes_icc(inst: &Instruction) -> bool {
    matches!(*inst, Instruction::Alu { op, .. } if op.sets_icc())
}

// ---------------------------------------------------------------------
// generic forward fixpoint
// ---------------------------------------------------------------------

/// Forward worklist fixpoint. `transfer` mutates a state through one
/// instruction; `join(block, in, incoming)` merges an incoming edge
/// state into a block's in-state, returning whether it changed (the
/// block index lets value domains count joins for widening); `refine`
/// sharpens state from the edge's branch condition *before* the delay
/// slot runs (the flags the branch tested were computed before the
/// slot); `call_return` adjusts state crossing a call-site →
/// return-point edge. Returns the in-state of every reached block.
fn forward_fixpoint<S: Clone>(
    cfg: &Cfg,
    entry_state: S,
    transfer: &mut dyn FnMut(&mut S, u32, &Instruction),
    join: &mut dyn FnMut(usize, &mut S, &S) -> bool,
    refine: &dyn Fn(&mut S, &Edge),
    call_return: &dyn Fn(&mut S),
) -> Vec<Option<S>> {
    let mut in_states: Vec<Option<S>> = vec![None; cfg.blocks().len()];
    let entry = cfg.entry().expect("fixpoint requires an entry block");
    in_states[entry] = Some(entry_state);
    let mut worklist = vec![entry];
    while let Some(b) = worklist.pop() {
        let mut s = in_states[b].clone().expect("worklist blocks have in-state");
        for &(pc, ref inst) in &cfg.blocks()[b].insts {
            transfer(&mut s, pc, inst);
        }
        for edge in &cfg.blocks()[b].succs {
            let mut es = s.clone();
            refine(&mut es, edge);
            if let Some((dpc, dinst)) = &edge.delay {
                transfer(&mut es, *dpc, dinst);
            }
            if edge.call_return {
                call_return(&mut es);
            }
            let changed = match &mut in_states[edge.to] {
                Some(existing) => join(edge.to, existing, &es),
                slot @ None => {
                    *slot = Some(es);
                    true
                }
            };
            if changed && !worklist.contains(&edge.to) {
                worklist.push(edge.to);
            }
        }
    }
    in_states
}

// ---------------------------------------------------------------------
// must-initialize
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
struct InitState {
    /// Bit i set ⇔ register i definitely written on every path here.
    regs: u32,
    icc: bool,
}

impl InitState {
    fn entry() -> InitState {
        // The loader materializes `%sp`/`%fp`; `%g0` is hardwired.
        let mut regs = 1 << Reg::G0.index();
        regs |= 1 << Reg::SP.index();
        regs |= 1 << Reg::FP.index();
        InitState { regs, icc: false }
    }

    fn has(&self, r: Reg) -> bool {
        self.regs & (1 << r.index()) != 0
    }

    fn set(&mut self, r: Reg) {
        self.regs |= 1 << r.index();
    }
}

fn must_init_pass(cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeSet<(u32, usize)> = BTreeSet::new();
    let mut seen_icc: BTreeSet<u32> = BTreeSet::new();
    // Two phases over the same transfer: first reach the fixpoint
    // silently, then replay once to report reads against stable states.
    let mut silent = |s: &mut InitState, _pc: u32, inst: &Instruction| {
        for r in write_regs(inst) {
            s.set(r);
        }
        if writes_icc(inst) {
            s.icc = true;
        }
    };
    let mut join = |_b: usize, a: &mut InitState, b: &InitState| {
        let merged = InitState { regs: a.regs & b.regs, icc: a.icc && b.icc };
        let changed = merged != *a;
        *a = merged;
        changed
    };
    // A callee never un-initializes a register, so call-return edges
    // keep the caller's set.
    let in_states =
        forward_fixpoint(cfg, InitState::entry(), &mut silent, &mut join, &|_, _| {}, &|_| {});

    let mut check = |s: &InitState, pc: u32, inst: &Instruction, diags: &mut Vec<Diagnostic>| {
        for r in read_regs(inst) {
            if !s.has(r) && seen.insert((pc, r.index())) {
                diags.push(Diagnostic::new(
                    Rule::UninitRead,
                    Some(pc),
                    format!("`{inst}` reads {r} before any path initializes it"),
                ));
            }
        }
        if reads_icc(inst) && !s.icc && seen_icc.insert(pc) {
            diags.push(Diagnostic::new(
                Rule::UninitIcc,
                Some(pc),
                format!("`{inst}` tests condition codes never set on some path"),
            ));
        }
    };
    for (b, block) in cfg.blocks().iter().enumerate() {
        let Some(mut s) = in_states[b] else { continue };
        for &(pc, ref inst) in &block.insts {
            check(&s, pc, inst, diags);
            silent(&mut s, pc, inst);
        }
        for edge in &block.succs {
            if let Some((dpc, dinst)) = &edge.delay {
                check(&s, *dpc, dinst, diags);
            }
        }
    }
}

// ---------------------------------------------------------------------
// value ranges + static memory-address checks
// ---------------------------------------------------------------------

/// A value set `[lo, hi]` (inclusive, non-wrapping). The full range is
/// the domain's "unknown".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Interval {
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

pub(crate) const TOP: Interval = Interval { lo: 0, hi: u32::MAX };

impl Interval {
    pub(crate) fn exact(v: u32) -> Interval {
        Interval { lo: v, hi: v }
    }

    pub(crate) fn as_exact(self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    pub(crate) fn hull(self, o: Interval) -> Interval {
        Interval { lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) }
    }

    /// `a + b (mod 2³²)`: still an interval as long as the exact `u64`
    /// sum range does not straddle a wrap boundary (a negative
    /// immediate arrives as a large `u32`, so an in-range `addr - 12`
    /// wraps *both* ends and stays an interval).
    pub(crate) fn add(self, o: Interval) -> Interval {
        let lo = self.lo as u64 + o.lo as u64;
        let hi = self.hi as u64 + o.hi as u64;
        if lo >> 32 == hi >> 32 {
            Interval { lo: lo as u32, hi: hi as u32 }
        } else {
            TOP
        }
    }

    fn sub(self, o: Interval) -> Interval {
        let lo = self.lo as i64 - o.hi as i64;
        let hi = self.hi as i64 - o.lo as i64;
        if lo >> 32 == hi >> 32 {
            Interval { lo: lo as u32, hi: hi as u32 }
        } else {
            TOP
        }
    }

    fn shl(self, by: u32) -> Interval {
        let by = by & 31;
        if self.hi.leading_zeros() >= by {
            Interval { lo: self.lo << by, hi: self.hi << by }
        } else {
            TOP
        }
    }

    fn shr(self, by: u32) -> Interval {
        let by = by & 31;
        Interval { lo: self.lo >> by, hi: self.hi >> by }
    }

    /// `a & b` is no larger than either operand.
    fn and(self, o: Interval) -> Interval {
        Interval { lo: 0, hi: self.hi.min(o.hi) }
    }

    /// `a | b` is at least either operand and sets no bit above the
    /// highest bit of either upper bound.
    fn or(self, o: Interval) -> Interval {
        let m = self.hi | o.hi;
        let hi = if m == 0 { 0 } else { u32::MAX >> m.leading_zeros() };
        Interval { lo: self.lo.max(o.lo), hi }
    }

    fn mul(self, o: Interval) -> Interval {
        match (self.hi as u64).checked_mul(o.hi as u64) {
            Some(h) if h <= u32::MAX as u64 => Interval { lo: self.lo * o.lo, hi: h as u32 },
            _ => TOP,
        }
    }
}

#[derive(Clone, PartialEq, Eq)]
pub(crate) struct ConstState {
    pub(crate) regs: [Interval; NUM_REGS],
    /// Exactly-known flags (both operands of the setting op exact).
    pub(crate) icc: Option<IccFlags>,
    /// `Some((r, k))` ⇔ the flags currently reflect `subcc r, k`: the
    /// compare the next conditional branch tests, enabling range
    /// refinement on its edges.
    pub(crate) cmp: Option<(Reg, u32)>,
}

impl ConstState {
    pub(crate) fn entry() -> ConstState {
        // Core reset zeroes the flat register file, then the loader
        // points `%sp`/`%fp` at the stack top.
        let mut regs = [Interval::exact(0); NUM_REGS];
        regs[Reg::SP.index()] = Interval::exact(STACK_TOP);
        regs[Reg::FP.index()] = Interval::exact(STACK_TOP);
        ConstState { regs, icc: Some(IccFlags::default()), cmp: None }
    }

    pub(crate) fn get(&self, r: Reg) -> Interval {
        if r.is_zero() {
            Interval::exact(0)
        } else {
            self.regs[r.index()]
        }
    }

    pub(crate) fn set(&mut self, r: Reg, v: Interval) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
            if self.cmp.is_some_and(|(cr, _)| cr == r) {
                // The compared register was overwritten; the flags
                // still describe its old value, so stop refining.
                self.cmp = None;
            }
        }
    }

    pub(crate) fn operand2(&self, op2: Operand2) -> Interval {
        match op2 {
            Operand2::Reg(r) => self.get(r),
            Operand2::Imm(i) => Interval::exact(i as u32),
        }
    }
}

pub(crate) fn const_transfer(s: &mut ConstState, pc: u32, inst: &Instruction) {
    match *inst {
        Instruction::Alu { op, rd, rs1, op2 } => {
            let a = s.get(rs1);
            let b = s.operand2(op2);
            match (a.as_exact(), b.as_exact()) {
                (Some(av), Some(bv)) => {
                    match ref_alu(op, av, bv, s.icc.unwrap_or_default()) {
                        Some((value, icc)) => {
                            s.set(rd, Interval::exact(value));
                            if op.sets_icc() {
                                s.icc = Some(icc);
                            }
                        }
                        None => {
                            // Division by zero: value unknown past it.
                            s.set(rd, TOP);
                            if op.sets_icc() {
                                s.icc = None;
                            }
                        }
                    }
                }
                _ => {
                    let v = match op {
                        // `save`/`restore` are plain adds on the flat
                        // register-file model.
                        Opcode::Add | Opcode::Addcc | Opcode::Save | Opcode::Restore => a.add(b),
                        Opcode::Sub | Opcode::Subcc => a.sub(b),
                        Opcode::Sll => b.as_exact().map_or(TOP, |sh| a.shl(sh)),
                        Opcode::Srl => b.as_exact().map_or(TOP, |sh| a.shr(sh)),
                        // Arithmetic shift matches logical while the
                        // whole range stays non-negative.
                        Opcode::Sra if a.hi < 0x8000_0000 => {
                            b.as_exact().map_or(TOP, |sh| a.shr(sh))
                        }
                        Opcode::And | Opcode::Andcc => a.and(b),
                        Opcode::Or | Opcode::Orcc => a.or(b),
                        Opcode::Umul => a.mul(b),
                        _ => TOP,
                    };
                    s.set(rd, v);
                    if op.sets_icc() {
                        s.icc = None;
                    }
                }
            }
            if op.sets_icc() {
                s.cmp = match (op, b.as_exact()) {
                    (Opcode::Subcc, Some(k)) if rd.is_zero() && !rs1.is_zero() => Some((rs1, k)),
                    // `subcc a, k, rd` leaves `a − k` in `rd`, so the
                    // flags compare the *new* `rd` against zero.
                    (Opcode::Subcc, Some(_)) if !rd.is_zero() => Some((rd, 0)),
                    _ => None,
                };
            }
        }
        Instruction::Sethi { rd, imm22 } => s.set(rd, Interval::exact(imm22 << 10)),
        Instruction::Call { .. } => s.set(Reg::O7, Interval::exact(pc)),
        Instruction::Jmpl { rd, .. } => s.set(rd, Interval::exact(pc)),
        Instruction::Cpop { rd, .. } => s.set(rd, TOP),
        Instruction::Mem { op, rd, .. } => {
            if op.is_load() || op == Opcode::Swap {
                s.set(rd, TOP);
                if op == Opcode::Ldd {
                    if let Some(hi) = pair_of(rd) {
                        s.set(hi, TOP);
                    }
                }
            }
        }
        Instruction::Branch { .. } | Instruction::Trap { .. } => {}
    }
}

/// The branch-untaken edge tests the opposite condition.
fn negate_cond(c: Cond) -> Cond {
    use Cond::*;
    match c {
        N => A,
        A => N,
        E => Ne,
        Ne => E,
        L => Ge,
        Ge => L,
        Le => G,
        G => Le,
        Cs => Cc,
        Cc => Cs,
        Leu => Gu,
        Gu => Leu,
        Neg => Pos,
        Pos => Neg,
        Vs => Vc,
        Vc => Vs,
    }
}

/// Sharpens the compared register's range from the branch condition on
/// one CFG edge. Conservative: conditions it cannot translate to a
/// `u32` interval (signed compares over possibly-negative ranges,
/// overflow/sign tests) refine nothing, and an infeasible result
/// leaves the state untouched rather than modeling unreachability.
pub(crate) fn refine_edge(s: &mut ConstState, edge: &Edge) {
    let Some((cond, taken)) = edge.branch else { return };
    let Some((r, k)) = s.cmp else { return };
    let cur = s.get(r);
    let (mut lo, mut hi) = (cur.lo, cur.hi);
    let cond = if taken { cond } else { negate_cond(cond) };
    // Signed compares order like unsigned ones only when every admitted
    // value and the constant are non-negative as `i32`.
    let signed_ok = hi < 0x8000_0000 && k < 0x8000_0000;
    match cond {
        Cond::E => {
            lo = lo.max(k);
            hi = hi.min(k);
        }
        Cond::Ne => {
            if lo == k && lo < hi {
                lo += 1;
            } else if hi == k && lo < hi {
                hi -= 1;
            }
        }
        Cond::Cs if k > 0 => hi = hi.min(k - 1),
        Cond::Cc => lo = lo.max(k),
        Cond::Leu => hi = hi.min(k),
        Cond::Gu if k < u32::MAX => lo = lo.max(k + 1),
        Cond::L if signed_ok && k > 0 => hi = hi.min(k - 1),
        Cond::Ge if signed_ok => lo = lo.max(k),
        Cond::Le if signed_ok => hi = hi.min(k),
        Cond::G if signed_ok && k < 0x7fff_ffff => lo = lo.max(k + 1),
        _ => return,
    }
    if lo <= hi {
        // Write the register slot directly: the flags still describe
        // this same value, so the `cmp` fact must survive refinement.
        s.regs[r.index()] = Interval { lo, hi };
    }
}

/// Joins per block beyond this count widen growing ranges straight to
/// unknown, bounding fixpoint time on huge-trip-count loops. Generous
/// enough that the paper kernels' loops (≤ a few hundred iterations)
/// converge without widening.
pub(crate) const WIDEN_LIMIT: u32 = 512;

fn const_pass(program: &Program, cfg: &Cfg, report: &mut DataflowReport) {
    let mut join_counts = vec![0u32; cfg.blocks().len()];
    let mut join = |b: usize, a: &mut ConstState, new: &ConstState| {
        let mut changed = false;
        let widen = join_counts[b] >= WIDEN_LIMIT;
        for i in 0..NUM_REGS {
            let h = a.regs[i].hull(new.regs[i]);
            if h != a.regs[i] {
                a.regs[i] = if widen { TOP } else { h };
                changed = true;
            }
        }
        if a.icc.is_some() && a.icc != new.icc {
            a.icc = None;
            changed = true;
        }
        if a.cmp.is_some() && a.cmp != new.cmp {
            a.cmp = None;
            changed = true;
        }
        if changed {
            join_counts[b] += 1;
        }
        changed
    };
    // The callee may have written anything by the time control returns.
    let call_return = |s: &mut ConstState| {
        s.regs = [TOP; NUM_REGS];
        s.icc = None;
        s.cmp = None;
    };
    let in_states = forward_fixpoint(
        cfg,
        ConstState::entry(),
        &mut const_transfer,
        &mut join,
        &refine_edge,
        &call_return,
    );

    // Co-processor ops (monitor configuration like UMC's CLEAR_RANGE)
    // can retag memory invisibly to this pass, so their presence
    // forfeits the proven-load set — never its soundness.
    let has_cpop = cfg
        .blocks()
        .iter()
        .flat_map(|b| b.insts.iter())
        .any(|(_, i)| matches!(i, Instruction::Cpop { .. }));

    let base = program.base();
    let end = cfg.end();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    // pc → admitted address range, ANDed across every occurrence (a
    // delay-slot load sits on several edges with different refined
    // states; it is proven only if every one of them proves it).
    let mut proven: BTreeMap<u32, Option<(u32, u32, u32)>> = BTreeMap::new();
    let mut check = |s: &ConstState, pc: u32, inst: &Instruction, report: &mut DataflowReport| {
        let Instruction::Mem { op, rs1, op2, .. } = *inst else { return };
        let ea = s.get(rs1).add(s.operand2(op2));
        let bytes = op.access_bytes().unwrap_or(4);
        if op.is_load() || op == Opcode::Swap {
            let provable =
                !has_cpop && ea.lo >= base && (ea.hi as u64 + bytes as u64) <= end as u64;
            match proven.entry(pc) {
                Entry::Vacant(v) => {
                    v.insert(provable.then_some((ea.lo, ea.hi, bytes)));
                }
                Entry::Occupied(mut o) => {
                    if provable {
                        if let Some((lo, hi, _)) = o.get_mut() {
                            *lo = (*lo).min(ea.lo);
                            *hi = (*hi).max(ea.hi);
                        }
                    } else {
                        *o.get_mut() = None;
                    }
                }
            }
        }
        // The region diagnostics need an exact address: a definite
        // wrong-region access, not a could-be one.
        let Some(ea) = ea.as_exact() else { return };
        if !seen.insert(pc) {
            return;
        }
        let in_image = ea >= base && ea.wrapping_add(bytes) <= end;
        let in_stack = ea >= STACK_TOP.saturating_sub(STACK_SLACK) && ea < STACK_TOP + 16;
        let in_meta = (META_BASE..CONSOLE_BASE).contains(&ea);
        let in_console = ea >= CONSOLE_BASE;
        if op.is_store() || op == Opcode::Swap {
            if in_image {
                let over_code =
                    (0..bytes).step_by(4).any(|off| cfg.is_code(ea.wrapping_add(off) & !3));
                if over_code {
                    report.diagnostics.push(Diagnostic::new(
                        Rule::StoreOverCode,
                        Some(pc),
                        format!("`{inst}` stores to {ea:#010x}, overwriting reachable code"),
                    ));
                }
            } else if !(in_stack || in_meta || in_console) {
                report.diagnostics.push(Diagnostic::new(
                    Rule::StoreOutOfImage,
                    Some(pc),
                    format!(
                        "`{inst}` stores to {ea:#010x}, outside the image, stack, and device regions"
                    ),
                ));
            }
        }
        if (op.is_load() || op == Opcode::Swap) && !(in_image || in_stack || in_meta || in_console)
        {
            report.diagnostics.push(Diagnostic::new(
                Rule::LoadOutOfImage,
                Some(pc),
                format!("`{inst}` loads from {ea:#010x}, outside every region initialized at load"),
            ));
        }
    };
    for (b, block) in cfg.blocks().iter().enumerate() {
        let Some(mut s) = in_states[b].clone() else { continue };
        for &(pc, ref inst) in &block.insts {
            check(&s, pc, inst, report);
            const_transfer(&mut s, pc, inst);
        }
        for edge in &block.succs {
            if let Some((dpc, dinst)) = &edge.delay {
                let mut es = s.clone();
                refine_edge(&mut es, edge);
                check(&es, *dpc, dinst, report);
            }
        }
    }
    report.proven_loads = proven
        .into_iter()
        .filter_map(|(pc, v)| v.map(|(lo, hi, bytes)| ProvenLoad { pc, lo, hi, bytes }))
        .collect();
}

// ---------------------------------------------------------------------
// liveness (backward)
// ---------------------------------------------------------------------

fn live_transfer(live: &mut u32, inst: &Instruction) {
    for r in write_regs(inst) {
        *live &= !(1 << r.index());
    }
    for r in read_regs(inst) {
        *live |= 1 << r.index();
    }
}

fn liveness_pass(cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let n = cfg.blocks().len();
    let mut live_in = vec![0u32; n];
    let mut worklist: Vec<usize> = (0..n).collect();
    while let Some(b) = worklist.pop() {
        let block = &cfg.blocks()[b];
        let mut live: u32 = match block.term {
            // Past a halt nothing is read; past a return or a decode
            // failure we know nothing, so everything might be.
            TermKind::Halt => 0,
            TermKind::Return | TermKind::Invalid => u32::MAX,
            TermKind::Branch | TermKind::FallsThrough => 0,
        };
        for edge in &block.succs {
            let mut l = live_in[edge.to];
            if let Some((_, dinst)) = &edge.delay {
                live_transfer(&mut l, dinst);
            }
            live |= l;
        }
        for (_, inst) in block.insts.iter().rev() {
            live_transfer(&mut live, inst);
        }
        if live != live_in[b] {
            live_in[b] = live;
            for &p in &block.preds {
                if !worklist.contains(&p) {
                    worklist.push(p);
                }
            }
        }
    }

    // Report pure register writes whose value is never read. Loads are
    // excluded (a dead load can be a deliberate monitor/cache touch),
    // as are cc-setting ops (the flags are the point).
    for block in cfg.blocks() {
        let mut live: u32 = match block.term {
            TermKind::Halt => 0,
            TermKind::Return | TermKind::Invalid => u32::MAX,
            TermKind::Branch | TermKind::FallsThrough => 0,
        };
        for edge in &block.succs {
            let mut l = live_in[edge.to];
            if let Some((_, dinst)) = &edge.delay {
                live_transfer(&mut l, dinst);
            }
            live |= l;
        }
        for (pc, inst) in block.insts.iter().rev() {
            let pure_write = matches!(inst, Instruction::Alu { .. } | Instruction::Sethi { .. })
                && !writes_icc(inst);
            if pure_write {
                if let Some(rd) = inst.dest_reg() {
                    if live & (1 << rd.index()) == 0 {
                        diags.push(Diagnostic::new(
                            Rule::DeadWrite,
                            Some(*pc),
                            format!("`{inst}` writes {rd} but the value is never read"),
                        ));
                    }
                }
            }
            live_transfer(&mut live, inst);
        }
    }
}

// ---------------------------------------------------------------------
// save/restore window depth
// ---------------------------------------------------------------------

/// Depth lattice: `Depth(d)` is exact, `Conflict` means paths disagree.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WinDepth {
    Depth(u32),
    Conflict,
}

/// Steps the depth through one instruction; records an underflow event
/// (at most once per address) into `underflows`.
fn window_step(s: &mut WinDepth, pc: u32, inst: &Instruction, underflows: &mut BTreeSet<u32>) {
    let Instruction::Alu { op, .. } = inst else { return };
    match (op, *s) {
        (Opcode::Save, WinDepth::Depth(d)) => *s = WinDepth::Depth(d + 1),
        (Opcode::Restore, WinDepth::Depth(0)) => {
            underflows.insert(pc);
        }
        (Opcode::Restore, WinDepth::Depth(d)) => *s = WinDepth::Depth(d - 1),
        _ => {}
    }
}

fn window_pass(cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    let mut underflows: BTreeSet<u32> = BTreeSet::new();
    let in_states = {
        let mut transfer = |s: &mut WinDepth, pc: u32, inst: &Instruction| {
            window_step(s, pc, inst, &mut underflows);
        };
        let mut join = |_b: usize, a: &mut WinDepth, b: &WinDepth| {
            if a == b || *a == WinDepth::Conflict {
                false
            } else {
                *a = WinDepth::Conflict;
                true
            }
        };
        forward_fixpoint(cfg, WinDepth::Depth(0), &mut transfer, &mut join, &|_, _| {}, &|_| {})
    };

    for (b, block) in cfg.blocks().iter().enumerate() {
        match in_states[b] {
            Some(WinDepth::Conflict) => diags.push(Diagnostic::new(
                Rule::WindowImbalance,
                Some(block.start),
                "paths join here with different save/restore depths",
            )),
            Some(WinDepth::Depth(d)) if block.term == TermKind::Halt => {
                // Replay the block to get the depth at the halt itself.
                let mut s = WinDepth::Depth(d);
                let mut scratch = BTreeSet::new();
                for &(pc, ref inst) in &block.insts {
                    window_step(&mut s, pc, inst, &mut scratch);
                }
                if let WinDepth::Depth(open) = s {
                    if open > 0 {
                        let (pc, _) = *block.insts.last().expect("halt block nonempty");
                        diags.push(Diagnostic::new(
                            Rule::OpenWindowAtHalt,
                            Some(pc),
                            format!("program halts with {open} `save`(s) still open"),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    for pc in underflows {
        diags.push(Diagnostic::new(
            Rule::RestoreUnderflow,
            Some(pc),
            "`restore` executes with no `save` outstanding",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use flexcore_asm::assemble;

    fn analyze(src: &str) -> DataflowReport {
        let p = assemble(src).expect("test source assembles");
        let (cfg, _) = build_cfg(&p);
        analyze_dataflow(&p, &cfg)
    }

    fn has(report: &DataflowReport, rule: Rule) -> bool {
        report.diagnostics.iter().any(|d| d.rule == rule)
    }

    #[test]
    fn uninit_read_is_flagged_and_init_is_not() {
        let r = analyze("start: add %l3, 1, %g2\n ta 0");
        assert!(has(&r, Rule::UninitRead), "{:?}", r.diagnostics);
        let r = analyze("start: mov 5, %l3\n add %l3, 1, %g2\n ta 0");
        assert!(!has(&r, Rule::UninitRead), "{:?}", r.diagnostics);
    }

    #[test]
    fn must_init_joins_by_intersection() {
        // %l1 is set on only one arm of the diamond.
        let r = analyze(
            "start: cmp %g0, 0
                    be skip
                    nop
                    mov 1, %l1
             skip:  add %l1, 1, %g2
                    ta 0",
        );
        assert!(has(&r, Rule::UninitRead), "{:?}", r.diagnostics);
        // Set on both arms: clean.
        let r = analyze(
            "start: cmp %g0, 0
                    be skip
                    mov 2, %l1
                    mov 1, %l1
             skip:  add %l1, 1, %g2
                    ta 0",
        );
        assert!(!has(&r, Rule::UninitRead), "{:?}", r.diagnostics);
    }

    #[test]
    fn annulled_delay_write_does_not_initialize() {
        // ba,a annuls the slot, so %l1 is never written.
        let r = analyze(
            "start: ba,a over
                    mov 1, %l1
             over:  add %l1, 1, %g2
                    ta 0",
        );
        assert!(has(&r, Rule::UninitRead), "{:?}", r.diagnostics);
    }

    #[test]
    fn uninit_icc_is_flagged() {
        let r = analyze("start: be out\n nop\n out: ta 0");
        assert!(has(&r, Rule::UninitIcc), "{:?}", r.diagnostics);
        let r = analyze("start: cmp %g1, 2\n be out\n nop\n out: ta 0");
        assert!(!has(&r, Rule::UninitIcc), "{:?}", r.diagnostics);
    }

    #[test]
    fn store_to_wild_address_is_an_error() {
        let r = analyze("start: set 0x00200000, %l1\n st %g0, [%l1]\n ta 0");
        assert!(has(&r, Rule::StoreOutOfImage), "{:?}", r.diagnostics);
    }

    #[test]
    fn store_to_labeled_data_is_clean_and_store_over_code_warns() {
        let r = analyze("start: set buf, %l1\n st %g0, [%l1]\n ta 0\nbuf: .space 8");
        assert!(!has(&r, Rule::StoreOutOfImage), "{:?}", r.diagnostics);
        assert!(!has(&r, Rule::StoreOverCode), "{:?}", r.diagnostics);
        let r = analyze("start: set start, %l1\n st %g0, [%l1]\n ta 0");
        assert!(has(&r, Rule::StoreOverCode), "{:?}", r.diagnostics);
    }

    #[test]
    fn stack_and_meta_stores_are_clean() {
        let r = analyze("start: st %g0, [%sp]\n ta 0");
        assert!(!has(&r, Rule::StoreOutOfImage), "{:?}", r.diagnostics);
        let r = analyze("start: set 0x40000000, %l1\n st %g0, [%l1]\n ta 0");
        assert!(!has(&r, Rule::StoreOutOfImage), "{:?}", r.diagnostics);
    }

    #[test]
    fn image_load_is_proven() {
        let r = analyze("start: set word, %l1\n ld [%l1], %l2\n tst %l2\n ta 0\nword: .word 7");
        assert_eq!(r.proven_loads.len(), 1, "{:?}", r.proven_loads);
        assert_eq!(r.proven_loads[0].bytes, 4);
    }

    #[test]
    fn loop_bounded_load_is_proven() {
        // The load address is an induction variable the loop condition
        // bounds; branch-edge refinement keeps the range finite, so
        // the whole sweep is proven in-image.
        let r = analyze(
            "start: set tbl, %l0
                    clr %l1
             loop:  sll %l1, 2, %o0
                    add %l0, %o0, %o1
                    ld [%o1], %o2
                    add %l1, 1, %l1
                    cmp %l1, 8
                    bl loop
                    nop
                    ta 0
             tbl:   .word 1, 2, 3, 4, 5, 6, 7, 8",
        );
        assert_eq!(r.proven_loads.len(), 1, "{:?}", r.proven_loads);
        let p = r.proven_loads[0];
        assert!(p.hi > p.lo, "a range, not a single point: {p:?}");
        assert_eq!(p.hi - p.lo, 28, "eight-entry sweep: {p:?}");
    }

    #[test]
    fn masked_index_load_is_proven() {
        // Data-dependent index, but `and` bounds it to the table.
        let r = analyze(
            "start: set tbl, %l0
                    set 0x12345678, %l1
                    and %l1, 7, %o0
                    sll %o0, 2, %o0
                    ld [%l0 + %o0], %o1
                    tst %o1
                    ta 0
             tbl:   .word 1, 2, 3, 4, 5, 6, 7, 8",
        );
        assert_eq!(r.proven_loads.len(), 1, "{:?}", r.proven_loads);
    }

    #[test]
    fn pointer_walk_with_ne_exit_is_not_proven() {
        // A `bne`-bounded pointer walk cannot be bounded by an interval
        // (no stride information), so the analysis must stay silent
        // rather than prove it.
        let r = analyze(
            "start: set tbl, %l0
                    set end, %l1
             loop:  ld [%l0], %o0
                    add %l0, 4, %l0
                    cmp %l0, %l1
                    bne loop
                    nop
                    ta 0
             tbl:   .word 1, 2, 3, 4
             end:   .word 0",
        );
        assert!(r.proven_loads.is_empty(), "{:?}", r.proven_loads);
        assert!(!has(&r, Rule::LoadOutOfImage), "{:?}", r.diagnostics);
    }

    #[test]
    fn cpop_forfeits_proofs() {
        let r = analyze(
            "start: set word, %l1\n cpop1 0, %g1, %g2, %g3\n ld [%l1], %l2\n tst %l2\n ta 0\nword: .word 7",
        );
        assert!(r.proven_loads.is_empty(), "{:?}", r.proven_loads);
    }

    #[test]
    fn wild_load_is_an_error() {
        let r = analyze("start: set 0x00900000, %l1\n ld [%l1], %l2\n tst %l2\n ta 0");
        assert!(has(&r, Rule::LoadOutOfImage), "{:?}", r.diagnostics);
    }

    #[test]
    fn dead_write_is_informational() {
        let r = analyze("start: mov 7, %l4\n ta 0");
        assert!(has(&r, Rule::DeadWrite), "{:?}", r.diagnostics);
        assert!(r.diagnostics.iter().all(|d| !d.is_error()), "{:?}", r.diagnostics);
    }

    #[test]
    fn restore_underflow_and_open_window() {
        let r = analyze("start: restore %g0, %g0, %g0\n ta 0");
        assert!(has(&r, Rule::RestoreUnderflow), "{:?}", r.diagnostics);
        let r = analyze("start: save %sp, -96, %sp\n ta 0");
        assert!(has(&r, Rule::OpenWindowAtHalt), "{:?}", r.diagnostics);
        let r = analyze("start: save %sp, -96, %sp\n restore %g0, %g0, %g0\n ta 0");
        assert!(!has(&r, Rule::RestoreUnderflow), "{:?}", r.diagnostics);
        assert!(!has(&r, Rule::OpenWindowAtHalt), "{:?}", r.diagnostics);
    }
}
