//! Integration tests of the core–fabric interface semantics, using a
//! purpose-built test extension: forwarding policies (ignore / drop /
//! stall / ack), BFIFO return values, clock-domain alignment, and the
//! end-of-run EMPTY discipline.

use flexcore_suite::asm::assemble;
use flexcore_suite::fabric::{Netlist, NetlistBuilder};
use flexcore_suite::flexcore::ext::{ExtEnv, Extension, ExtensionDescriptor, MonitorTrap};
use flexcore_suite::flexcore::{Cfgr, ForwardPolicy, System, SystemConfig};
use flexcore_suite::isa::InstrClass;
use flexcore_suite::pipeline::{ExitReason, TracePacket};

/// A configurable probe extension: counts what it sees, can be made
/// arbitrarily slow, answers reads with a constant.
struct Probe {
    cfgr: Cfgr,
    /// Extra meta ops per packet (to simulate a slow monitor).
    busywork: u32,
    seen: u64,
    last_pc: u32,
}

impl Probe {
    fn new(cfgr: Cfgr) -> Probe {
        Probe { cfgr, busywork: 0, seen: 0, last_pc: 0 }
    }
}

impl Extension for Probe {
    fn name(&self) -> &'static str {
        "PROBE"
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "PROBE",
            name: "interface test probe",
            meta_data: &[],
            transparent_ops: &["count packets"],
            sw_visible_ops: &["read packet count"],
        }
    }

    fn cfgr(&self) -> Cfgr {
        self.cfgr
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        self.seen += 1;
        self.last_pc = pkt.pc;
        for i in 0..self.busywork {
            // Touch alternating meta lines to burn fabric cycles.
            let _ = env.read_meta(0x4000_0000 + (i % 2) * 64);
        }
        if pkt.class == InstrClass::Cpop1 {
            return Ok(Some(0xfeed_beef));
        }
        Ok(None)
    }

    fn netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new("probe");
        let x = b.input();
        let q = b.register(x);
        b.output("q", q);
        b.finish()
    }
}

const COUNT_PROGRAM: &str = "start: mov 10, %o0
        loop:  subcc %o0, 1, %o0
               bne loop
               nop
               ta 0";

fn run_probe(
    cfgr: Cfgr,
    busywork: u32,
    cfg: SystemConfig,
    src: &str,
) -> (u64, flexcore_suite::flexcore::RunResult) {
    let program = assemble(src).unwrap();
    let mut probe = Probe::new(cfgr);
    probe.busywork = busywork;
    let mut sys = System::new(cfg, probe);
    sys.load_program(&program);
    let r = sys.try_run(100_000).expect("simulation error");
    let seen = sys.extension().seen;
    (seen, r)
}

#[test]
fn ignore_policy_forwards_nothing() {
    let (seen, r) = run_probe(Cfgr::new(), 0, SystemConfig::fabric_half_speed(), COUNT_PROGRAM);
    assert_eq!(seen, 0);
    assert_eq!(r.forward.forwarded, 0);
    assert_eq!(r.exit, ExitReason::Halt(0));
}

#[test]
fn always_policy_forwards_every_matching_instruction() {
    let cfgr = Cfgr::new().with_class(InstrClass::SubCc, ForwardPolicy::Always);
    let (seen, r) = run_probe(cfgr, 0, SystemConfig::fabric_half_speed(), COUNT_PROGRAM);
    assert_eq!(seen, 10, "ten subcc commits");
    assert_eq!(r.forward.forwarded, 10);
    assert_eq!(r.forward.dropped, 0);
}

#[test]
fn if_not_full_policy_drops_under_pressure() {
    // A slow monitor (2 meta ops/packet at 0.25X) with a 2-entry FIFO
    // and a dense stream of monitored instructions must drop packets —
    // and must NOT stall the core.
    let cfgr = Cfgr::new()
        .with_class(InstrClass::SubCc, ForwardPolicy::IfNotFull)
        .with_class(InstrClass::Nop, ForwardPolicy::IfNotFull)
        .with_class(InstrClass::BranchCond, ForwardPolicy::IfNotFull);
    let src = "start: mov 200, %o0
        loop:  subcc %o0, 1, %o0
               bne loop
               nop
               ta 0";
    let cfg = SystemConfig::fabric_quarter_speed().with_fifo_depth(2);
    let (seen, r) = run_probe(cfgr, 2, cfg, src);
    assert!(r.forward.dropped > 0, "must drop: {:?}", r.forward);
    assert_eq!(seen + r.forward.dropped, r.forward.forwarded + r.forward.dropped);
    assert_eq!(r.forward.fifo_stall_cycles, 0, "best-effort never stalls the core");
}

#[test]
fn always_policy_stalls_instead_of_dropping() {
    let cfgr = Cfgr::new()
        .with_class(InstrClass::SubCc, ForwardPolicy::Always)
        .with_class(InstrClass::Nop, ForwardPolicy::Always)
        .with_class(InstrClass::BranchCond, ForwardPolicy::Always);
    let src = "start: mov 200, %o0
        loop:  subcc %o0, 1, %o0
               bne loop
               nop
               ta 0";
    let cfg = SystemConfig::fabric_quarter_speed().with_fifo_depth(2);
    let (seen, r) = run_probe(cfgr, 2, cfg, src);
    assert_eq!(r.forward.dropped, 0);
    assert_eq!(seen, r.forward.forwarded);
    assert!(r.forward.fifo_stall_cycles > 0, "must back-pressure the commit stage");
}

#[test]
fn wait_for_ack_returns_bfifo_value_to_the_destination_register() {
    let cfgr = Cfgr::new().with_class(InstrClass::Cpop1, ForwardPolicy::WaitForAck);
    let program = assemble(
        "start: cpop1 0, %g0, %g0, %o3
               ta 0",
    )
    .unwrap();
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Probe::new(cfgr));
    sys.load_program(&program);
    let r = sys.try_run(100_000).expect("simulation error");
    assert_eq!(r.exit, ExitReason::Halt(0));
    assert_eq!(sys.core().reg(flexcore_suite::isa::Reg::O3), 0xfeed_beef);
}

#[test]
fn run_waits_for_the_fabric_to_drain() {
    // EMPTY discipline: total cycles include the fabric finishing its
    // backlog after the core halts.
    let cfgr = Cfgr::new().with_class(InstrClass::Logic, ForwardPolicy::Always);
    let src = "start: mov 1, %o0
               or %o0, 2, %o1
               or %o1, 4, %o2
               or %o2, 8, %o3
               ta 0";
    // Very slow fabric: 8 meta ops per packet at quarter speed.
    let (_, r) = run_probe(cfgr, 8, SystemConfig::fabric_quarter_speed(), src);
    // 4 logic ops x 8 meta ops x 4 core-cycles each = >128 cycles of
    // fabric work for a ~20-cycle program.
    assert!(r.cycles > 128, "cycles {} must include fabric drain", r.cycles);
}

#[test]
fn fabric_clock_alignment_quantizes_processing() {
    // At 0.25X, back-to-back forwarded instructions are processed at
    // most one per 4 core cycles: N instructions take >= 4N fabric
    // cycles of span.
    let cfgr = Cfgr::new().with_class(InstrClass::Logic, ForwardPolicy::Always);
    let mut src = String::from("start: mov 1, %o0\n");
    for _ in 0..64 {
        src.push_str("or %o0, 1, %o0\n");
    }
    src.push_str("ta 0");
    let (seen, r) = run_probe(cfgr, 0, SystemConfig::fabric_quarter_speed(), &src);
    // 64 `or`s plus the initial `mov` (also a logic op).
    assert_eq!(seen, 65);
    assert!(r.cycles >= 65 * 4, "{} cycles for 65 packets at 0.25X", r.cycles);
}
