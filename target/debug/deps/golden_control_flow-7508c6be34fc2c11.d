/root/repo/target/debug/deps/golden_control_flow-7508c6be34fc2c11.d: crates/pipeline/tests/golden_control_flow.rs

/root/repo/target/debug/deps/golden_control_flow-7508c6be34fc2c11: crates/pipeline/tests/golden_control_flow.rs

crates/pipeline/tests/golden_control_flow.rs:
