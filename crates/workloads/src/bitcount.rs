//! `bitcount`: population counts by three methods (MiBench's bitcount
//! runs a suite of counting algorithms; this kernel keeps three with
//! distinct instruction mixes: Kernighan's loop, a 256-entry lookup
//! table, and the SWAR parallel reduction).

use crate::lcg;

const ITERS: u32 = 3000;
const SEED: u32 = 0xdead_beef;

/// Rust reference producing the expected checksum.
fn reference() -> u32 {
    // The lookup table the assembly builds incrementally:
    // tbl[i] = tbl[i >> 1] + (i & 1).
    let mut tbl = [0u32; 256];
    for i in 1..256 {
        tbl[i] = tbl[i >> 1] + (i & 1) as u32;
    }
    let mut seed = SEED;
    let mut total = 0u32;
    for _ in 0..ITERS {
        seed = lcg(seed);
        let x = seed;
        // Method 1: Kernighan.
        let mut c = 0u32;
        let mut v = x;
        while v != 0 {
            v &= v.wrapping_sub(1);
            c += 1;
        }
        // Method 2: byte-table lookup.
        let t = tbl[(x & 0xff) as usize]
            + tbl[((x >> 8) & 0xff) as usize]
            + tbl[((x >> 16) & 0xff) as usize]
            + tbl[((x >> 24) & 0xff) as usize];
        // Method 3: SWAR.
        let mut s = x;
        s = s.wrapping_sub((s >> 1) & 0x5555_5555);
        s = (s & 0x3333_3333).wrapping_add((s >> 2) & 0x3333_3333);
        s = (s.wrapping_add(s >> 4)) & 0x0f0f_0f0f;
        s = s.wrapping_mul(0x0101_0101) >> 24;
        total = total.wrapping_add(c).wrapping_add(t).wrapping_add(s);
    }
    total
}

/// Generates the self-checking assembly source.
pub(crate) fn source() -> String {
    let expected = reference();
    let lcg = crate::lcg_asm("%g2", "%o7");
    format!(
        "! bitcount: three population-count methods over an LCG stream.
        .equ ITERS, {ITERS}
start:
        ! Build the byte lookup table: tbl[i] = tbl[i>>1] + (i & 1).
        set tbl, %g4
        st %g0, [%g4]          ! tbl[0] = 0
        mov 1, %l0
tbl_loop:
        srl %l0, 1, %o0
        sll %o0, 2, %o0
        add %g4, %o0, %o0
        ld [%o0], %o1          ! tbl[i>>1]
        and %l0, 1, %o2
        add %o1, %o2, %o1
        sll %l0, 2, %o0
        add %g4, %o0, %o0
        st %o1, [%o0]
        add %l0, 1, %l0
        cmp %l0, 256
        bl tbl_loop
        nop

        set {SEED}, %g2        ! seed
        set ITERS, %g3
        clr %g5                ! total
iter:
        {lcg}
        ! ---- method 1: Kernighan ----
        mov %g2, %o0
        clr %o1
kern:
        cmp %o0, 0
        be kern_done
        nop
        sub %o0, 1, %o2
        and %o0, %o2, %o0
        ba kern
        add %o1, 1, %o1        ! count++ in the delay slot
kern_done:
        add %g5, %o1, %g5
        ! ---- method 2: table lookup per byte ----
        clr %o5                ! t
        and %g2, 0xff, %o0
        sll %o0, 2, %o0
        ld [%g4 + %o0], %o1
        add %o5, %o1, %o5
        srl %g2, 8, %o0
        and %o0, 0xff, %o0
        sll %o0, 2, %o0
        ld [%g4 + %o0], %o1
        add %o5, %o1, %o5
        srl %g2, 16, %o0
        and %o0, 0xff, %o0
        sll %o0, 2, %o0
        ld [%g4 + %o0], %o1
        add %o5, %o1, %o5
        srl %g2, 24, %o0
        sll %o0, 2, %o0
        ld [%g4 + %o0], %o1
        add %o5, %o1, %o5
        add %g5, %o5, %g5
        ! ---- method 3: SWAR ----
        mov %g2, %o0
        srl %o0, 1, %o1
        set 0x55555555, %o2
        and %o1, %o2, %o1
        sub %o0, %o1, %o0
        set 0x33333333, %o2
        and %o0, %o2, %o1
        srl %o0, 2, %o3
        and %o3, %o2, %o3
        add %o1, %o3, %o0
        srl %o0, 4, %o1
        add %o0, %o1, %o0
        set 0x0f0f0f0f, %o2
        and %o0, %o2, %o0
        set 0x01010101, %o2
        umul %o0, %o2, %o0
        srl %o0, 24, %o0
        add %g5, %o0, %g5

        subcc %g3, 1, %g3
        bne iter
        nop

        set {expected}, %o1
        cmp %g5, %o1
        bne fail
        nop
        ta 0
fail:   ta 1
        .align 4
tbl:    .space 1024
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_methods_agree_with_count_ones() {
        // Independent check: each method counts bits, so the total is
        // exactly 3x the population count of the LCG stream.
        let mut seed = SEED;
        let mut expect = 0u32;
        for _ in 0..ITERS {
            seed = lcg(seed);
            expect = expect.wrapping_add(3 * seed.count_ones());
        }
        assert_eq!(reference(), expect);
    }

    #[test]
    fn source_assembles() {
        assert!(flexcore_asm::assemble(&source()).is_ok());
    }
}
