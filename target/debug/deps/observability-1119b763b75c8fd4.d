/root/repo/target/debug/deps/observability-1119b763b75c8fd4.d: tests/observability.rs

/root/repo/target/debug/deps/observability-1119b763b75c8fd4: tests/observability.rs

tests/observability.rs:
