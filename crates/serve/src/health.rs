//! Live service health: a metrics registry snapshotted into an
//! atomically-replaced `status.json` heartbeat.
//!
//! The server keeps one [`HealthMetrics`] — typed handles into a
//! [`Registry`](flexcore_telemetry::Registry) — and updates it from
//! the hot path with lock-free atomic RMWs (queue depth and busy
//! workers as gauges, trial/backpressure/shed counts as counters,
//! journal write/fsync latencies as log₂ histograms). A [`Heartbeat`]
//! serializes the registry plus a monotone `seq` and a trials/sec rate
//! into a temp file and renames it over `status.json`, so an external
//! reader (the CI soak, an operator's `watch cat`) always sees a
//! complete, parseable document — never a torn half-write — even while
//! the server is being `kill -9`ed.

use std::path::{Path, PathBuf};

use flexcore_telemetry::{Counter, Gauge, Histogram, RateMeter, Registry};
use serde::{Serialize, Value};

use crate::admission::AdmissionStats;

/// Typed handles into the server's metric registry.
///
/// Cloning is cheap (each handle is an `Arc` over atomics) and clones
/// share storage, so the scheduler thread and the heartbeat writer can
/// hold the same metrics without coordination.
#[derive(Debug)]
pub struct HealthMetrics {
    registry: Registry,
    /// Jobs currently queued (sampled from the job queue).
    pub queue_depth: Gauge,
    /// Workers currently executing a trial attempt.
    pub busy_workers: Gauge,
    /// Trials across all drained jobs (executed + reused).
    pub trials_total: Counter,
    /// Trials executed to completion this process (incl. quarantines).
    pub trials_executed: Counter,
    /// Trials reused from journals instead of rerun.
    pub trials_reused: Counter,
    /// Trials that succeeded only after ≥ 1 panicking attempt.
    pub trials_retried: Counter,
    /// Trials quarantined after exhausting their attempt budget.
    pub trials_quarantined: Counter,
    /// Submissions refused with a backpressure hint.
    pub backpressure_rejections: Counter,
    /// Queued jobs shed under overload.
    pub jobs_shed: Counter,
    /// Jobs admitted through the socket (daemon mode).
    pub jobs_admitted: Counter,
    /// Jobs drained to a terminal state (daemon mode).
    pub jobs_completed: Counter,
    /// Socket requests parsed and answered (daemon mode).
    pub requests_total: Counter,
    /// Socket requests refused as malformed, oversized, or arriving
    /// while draining (daemon mode).
    pub requests_refused: Counter,
    /// Live result-subscription feeds (daemon mode).
    pub subscribers: Gauge,
    /// Journal compaction passes that rewrote a file.
    pub journal_compactions: Counter,
    /// Dead records (events, superseded, crash debris) dropped by
    /// compaction.
    pub compaction_dropped: Counter,
    /// Journal record append latency, nanoseconds (log₂ buckets).
    pub journal_write_ns: Histogram,
    /// Journal fsync latency, nanoseconds (log₂ buckets).
    pub journal_fsync_ns: Histogram,
}

impl HealthMetrics {
    /// A fresh registry with every server metric registered (so the
    /// heartbeat schema is stable from the first write, before any
    /// trial has run).
    pub fn new() -> HealthMetrics {
        let registry = Registry::new();
        HealthMetrics {
            queue_depth: registry.gauge("queue_depth"),
            busy_workers: registry.gauge("busy_workers"),
            trials_total: registry.counter("trials_total"),
            trials_executed: registry.counter("trials_executed"),
            trials_reused: registry.counter("trials_reused"),
            trials_retried: registry.counter("trials_retried"),
            trials_quarantined: registry.counter("trials_quarantined"),
            backpressure_rejections: registry.counter("backpressure_rejections"),
            jobs_shed: registry.counter("jobs_shed"),
            jobs_admitted: registry.counter("jobs_admitted"),
            jobs_completed: registry.counter("jobs_completed"),
            requests_total: registry.counter("requests_total"),
            requests_refused: registry.counter("requests_refused"),
            subscribers: registry.gauge("subscribers"),
            journal_compactions: registry.counter("journal_compactions"),
            compaction_dropped: registry.counter("compaction_dropped"),
            journal_write_ns: registry.histogram("journal_write_ns"),
            journal_fsync_ns: registry.histogram("journal_fsync_ns"),
            registry,
        }
    }

    /// The underlying registry (for text exposition or ad-hoc reads).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Brings the admission counters up to the queue's cumulative
    /// [`AdmissionStats`] (counters only move forward, so this adds
    /// the delta since the last sync).
    pub fn sync_admission(&self, stats: &AdmissionStats) {
        let rejections = &self.backpressure_rejections;
        rejections.add(stats.rejected.saturating_sub(rejections.get()));
        self.jobs_shed.add(stats.shed.saturating_sub(self.jobs_shed.get()));
    }
}

impl Default for HealthMetrics {
    fn default() -> HealthMetrics {
        HealthMetrics::new()
    }
}

/// Writes the `status.json` heartbeat: registry snapshot + monotone
/// sequence number + uptime + trials/sec, replaced atomically.
#[derive(Debug)]
pub struct Heartbeat {
    path: PathBuf,
    tmp: PathBuf,
    seq: u64,
    clock: RateMeter,
}

impl Heartbeat {
    /// A heartbeat that will write to `path`. The temp file lives next
    /// to the target (`<path>.tmp`) so the rename stays within one
    /// filesystem and is atomic.
    pub fn new(path: &Path) -> Heartbeat {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        Heartbeat {
            path: path.to_path_buf(),
            tmp: PathBuf::from(tmp),
            seq: 0,
            clock: RateMeter::start(),
        }
    }

    /// The heartbeat's target path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Heartbeats written so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Snapshots `metrics` and atomically replaces `status.json`.
    ///
    /// `seq` increments on every write, so a reader polling across a
    /// kill/resume of the *same* heartbeat sees it strictly increase;
    /// a fresh process restarts at 1 (the soak checks monotonicity
    /// within each process lifetime).
    pub fn write(&mut self, metrics: &HealthMetrics) -> std::io::Result<()> {
        self.seq += 1;
        let executed = metrics.trials_executed.get();
        // Wall-clock scalars carry the `host_` prefix — the same
        // convention as `flexsim --json` — so CI byte-diffs strip
        // every nondeterministic field with one `grep -v '"host_'`.
        let doc = Value::object()
            .field("service", &"flexserve")
            .field("seq", &self.seq)
            .field("host_uptime_secs", &self.clock.elapsed_secs())
            .field("host_trials_per_sec", &self.clock.rate(executed))
            .raw("metrics", metrics.registry().to_value())
            .build();
        let mut text = serde::to_string_pretty(&doc);
        text.push('\n');
        std::fs::write(&self.tmp, text)?;
        std::fs::rename(&self.tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("flexserve-health-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn heartbeat_is_parseable_and_seq_is_monotone() {
        let path = tmpfile("monotone");
        let metrics = HealthMetrics::new();
        metrics.trials_executed.add(3);
        metrics.queue_depth.set(2);
        metrics.journal_write_ns.record(1500);
        let mut hb = Heartbeat::new(&path);
        let mut last_seq = 0;
        for _ in 0..3 {
            hb.write(&metrics).expect("heartbeat writes");
            let doc = serde::from_str(&std::fs::read_to_string(&path).expect("read"))
                .expect("status.json parses");
            let seq = doc.get("seq").and_then(Value::as_u64).expect("seq present");
            assert!(seq > last_seq, "seq strictly increases ({last_seq} -> {seq})");
            last_seq = seq;
            let m = doc.get("metrics").expect("metrics nested");
            assert_eq!(m.get("trials_executed").and_then(Value::as_u64), Some(3));
            assert_eq!(m.get("queue_depth").and_then(Value::as_u64), Some(2));
            let wr = m.get("journal_write_ns").expect("histogram present");
            assert_eq!(wr.get("count").and_then(Value::as_u64), Some(1));
        }
        assert!(!hb.tmp.exists(), "the temp file never lingers");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn schema_is_complete_before_any_activity() {
        let path = tmpfile("schema");
        let mut hb = Heartbeat::new(&path);
        hb.write(&HealthMetrics::new()).expect("heartbeat writes");
        let doc = serde::from_str(&std::fs::read_to_string(&path).expect("read"))
            .expect("status.json parses");
        let m = doc.get("metrics").expect("metrics nested");
        for key in [
            "queue_depth",
            "busy_workers",
            "trials_total",
            "trials_executed",
            "trials_reused",
            "trials_retried",
            "trials_quarantined",
            "backpressure_rejections",
            "jobs_shed",
            "jobs_admitted",
            "jobs_completed",
            "requests_total",
            "requests_refused",
            "subscribers",
            "journal_compactions",
            "compaction_dropped",
            "journal_write_ns",
            "journal_fsync_ns",
        ] {
            assert!(m.get(key).is_some(), "metric `{key}` registered up front");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wall_clock_fields_carry_the_host_prefix() {
        // The contract behind CI's `grep -v '"host_'` filter: every
        // nondeterministic (wall-clock) scalar in the heartbeat is
        // `host_`-prefixed; everything else is deterministic.
        let path = tmpfile("host-prefix");
        let mut hb = Heartbeat::new(&path);
        hb.write(&HealthMetrics::new()).expect("heartbeat writes");
        let doc = serde::from_str(&std::fs::read_to_string(&path).expect("read"))
            .expect("status.json parses");
        assert!(doc.get("host_uptime_secs").is_some());
        assert!(doc.get("host_trials_per_sec").is_some());
        assert!(doc.get("uptime_secs").is_none(), "unprefixed wall-clock field leaked");
        assert!(doc.get("trials_per_sec").is_none(), "unprefixed wall-clock field leaked");
        let _ = std::fs::remove_file(&path);
    }
}
