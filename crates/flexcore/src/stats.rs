//! System-level statistics and run results.

use flexcore_isa::{InstrClass, NUM_INSTR_CLASSES};
use flexcore_mem::{BusStats, CacheStats};
use flexcore_pipeline::{CoreStats, ExitReason};

use crate::ext::MonitorTrap;

/// Forwarding statistics (the data behind the paper's Figure 4).
#[derive(Clone, Copy, Debug, Default)]
pub struct ForwardStats {
    /// Instructions committed by the core.
    pub committed: u64,
    /// Packets forwarded to the fabric.
    pub forwarded: u64,
    /// Packets dropped by an `IfNotFull` policy on a full FIFO.
    pub dropped: u64,
    /// Forwarded packets per instruction class.
    pub per_class: [u64; NUM_INSTR_CLASSES],
    /// Cycles the commit stage stalled on a full FIFO.
    pub fifo_stall_cycles: u64,
    /// Peak FIFO occupancy.
    pub peak_occupancy: usize,
}

impl ForwardStats {
    /// Fraction of committed instructions forwarded to the fabric
    /// (Figure 4's y-axis).
    pub fn forwarded_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.forwarded as f64 / self.committed as f64
        }
    }

    /// Forwarded packets of one class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        self.per_class[class.index()]
    }
}

/// Fault-injection and graceful-degradation accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Faults the injector applied (all targets).
    pub faults_injected: u64,
    /// FFIFO packets corrupted in flight ([`FaultTarget::FifoPacket`]).
    ///
    /// [`FaultTarget::FifoPacket`]: crate::faults::FaultTarget::FifoPacket
    pub packets_corrupted: u64,
    /// Packets dropped by the
    /// [`DropWithAccounting`](crate::OverflowPolicy::DropWithAccounting)
    /// FIFO overflow policy.
    pub dropped_overflow: u64,
    /// Bitstream transfers that failed validation and were retried.
    pub bitstream_retries: u64,
    /// Bitstreams successfully loaded (including after retries).
    pub bitstream_reloads: u64,
}

/// The complete result of a [`System`](crate::System) run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Why the core stopped.
    pub exit: ExitReason,
    /// The monitor trap, if the extension raised one.
    pub monitor_trap: Option<MonitorTrap>,
    /// How many instructions committed *after* the violating one
    /// before the TRAP signal arrived — the imprecision of FlexCore
    /// exceptions (§III.C). `None` when no trap fired.
    pub trap_skid: Option<u64>,
    /// Total core-clock cycles, including draining the fabric at the
    /// end (the EMPTY-signal discipline).
    pub cycles: u64,
    /// Committed instructions.
    pub instret: u64,
    /// Forwarding statistics.
    pub forward: ForwardStats,
    /// Core pipeline statistics.
    pub core: CoreStats,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
    /// Meta-data cache statistics.
    pub meta_cache: CacheStats,
    /// Shared-bus statistics.
    pub bus: BusStats,
    /// Fault-injection and graceful-degradation counters.
    pub resilience: ResilienceStats,
    /// Console output produced by the program.
    pub console: Vec<u8>,
}

impl RunResult {
    /// Cycles per committed instruction.
    pub fn cpi(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instret as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarded_fraction_handles_empty_run() {
        let s = ForwardStats::default();
        assert_eq!(s.forwarded_fraction(), 0.0);
    }

    #[test]
    fn forwarded_fraction_is_a_ratio() {
        let s = ForwardStats { committed: 200, forwarded: 50, ..Default::default() };
        assert_eq!(s.forwarded_fraction(), 0.25);
    }
}
