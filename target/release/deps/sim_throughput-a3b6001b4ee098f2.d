/root/repo/target/release/deps/sim_throughput-a3b6001b4ee098f2.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/release/deps/sim_throughput-a3b6001b4ee098f2: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
