/root/repo/target/debug/deps/serde-b03a286c16099dcd.d: crates/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b03a286c16099dcd.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
