/root/repo/target/debug/deps/ablations-422c20b3e6f1076e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-422c20b3e6f1076e.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
