/root/repo/target/debug/deps/ablations-0a6e033a08e45d4c.d: tests/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-0a6e033a08e45d4c.rmeta: tests/ablations.rs Cargo.toml

tests/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
