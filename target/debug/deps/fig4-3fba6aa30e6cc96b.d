/root/repo/target/debug/deps/fig4-3fba6aa30e6cc96b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-3fba6aa30e6cc96b.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
