/root/repo/target/debug/deps/table3-29e4d6cd17467a95.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-29e4d6cd17467a95: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
