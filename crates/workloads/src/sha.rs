//! `sha`: SHA-1 compression over LCG-generated message blocks
//! (MiBench's sha hashes a file; this kernel runs the same compression
//! function — 80 rounds, message schedule, rotations — over generated
//! blocks).

use crate::lcg;

const BLOCKS: u32 = 40;
const SEED: u32 = 0x1234_5678;

/// Rust reference: SHA-1 compression (no padding — the kernel hashes
/// whole blocks), returning the XOR of the final state words.
fn reference() -> u32 {
    let mut h: [u32; 5] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0];
    let mut seed = SEED;
    for _ in 0..BLOCKS {
        let mut w = [0u32; 80];
        for slot in w.iter_mut().take(16) {
            seed = lcg(seed);
            *slot = seed;
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a82_7999),
                1 => (b ^ c ^ d, 0x6ed9_eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let t =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]
}

/// Generates the self-checking assembly source.
pub(crate) fn source() -> String {
    let expected = reference();
    let lcg = crate::lcg_asm("%g2", "%o7");
    format!(
        "! sha: SHA-1 compression over {BLOCKS} LCG-generated blocks.
        .equ BLOCKS, {BLOCKS}
start:
        set 0x67452301, %i0
        set 0xefcdab89, %i1
        set 0x98badcfe, %i2
        set 0x10325476, %i3
        set 0xc3d2e1f0, %i4
        set {SEED}, %g2        ! LCG state
        set BLOCKS, %g3
block:
        ! W[0..16] from the LCG.
        set wbuf, %l6
        mov 16, %l5
fill:
        {lcg}
        st %g2, [%l6]
        add %l6, 4, %l6
        subcc %l5, 1, %l5
        bne fill
        nop
        ! W[16..80] expansion with rotl(x, 1).
        set wbuf, %l6
        mov 16, %l5
expand:
        sll %l5, 2, %o0
        add %l6, %o0, %o1      ! &W[i]
        ld [%o1 - 12], %o2     ! W[i-3]
        ld [%o1 - 32], %o3     ! W[i-8]
        xor %o2, %o3, %o2
        ld [%o1 - 56], %o3     ! W[i-14]
        xor %o2, %o3, %o2
        ld [%o1 - 64], %o3     ! W[i-16]
        xor %o2, %o3, %o2
        sll %o2, 1, %o3
        srl %o2, 31, %o4
        or %o3, %o4, %o2
        st %o2, [%o1]
        add %l5, 1, %l5
        cmp %l5, 80
        bl expand
        nop
        ! a..e = h0..h4
        mov %i0, %l0
        mov %i1, %l1
        mov %i2, %l2
        mov %i3, %l3
        mov %i4, %l4
        clr %l5
rounds:
        cmp %l5, 20
        bl f_ch
        nop
        cmp %l5, 40
        bl f_parity1
        nop
        cmp %l5, 60
        bl f_maj
        nop
        xor %l1, %l2, %o3      ! f = b^c^d (rounds 60..80)
        xor %o3, %l3, %o3
        set 0xca62c1d6, %o4    ! set is 2 insts: keep it out of delay slots
        ba apply
        nop
f_ch:
        and %l1, %l2, %o3      ! f = (b&c) | (~b & d)
        andn %l3, %l1, %o0
        or %o3, %o0, %o3
        set 0x5a827999, %o4
        ba apply
        nop
f_parity1:
        xor %l1, %l2, %o3
        xor %o3, %l3, %o3
        set 0x6ed9eba1, %o4
        ba apply
        nop
f_maj:
        and %l1, %l2, %o3      ! f = (b&c)|(b&d)|(c&d)
        and %l1, %l3, %o0
        or %o3, %o0, %o3
        and %l2, %l3, %o0
        or %o3, %o0, %o3
        set 0x8f1bbcdc, %o4
apply:
        sll %l0, 5, %o0
        srl %l0, 27, %o1
        or %o0, %o1, %o5       ! rotl(a, 5)
        add %o5, %o3, %o5
        add %o5, %l4, %o5
        add %o5, %o4, %o5
        sll %l5, 2, %o0
        ld [%l6 + %o0], %o1    ! W[i]
        add %o5, %o1, %o5      ! t
        mov %l3, %l4           ! e = d
        mov %l2, %l3           ! d = c
        sll %l1, 30, %o0
        srl %l1, 2, %o1
        or %o0, %o1, %l2       ! c = rotl(b, 30)
        mov %l0, %l1           ! b = a
        mov %o5, %l0           ! a = t
        add %l5, 1, %l5
        cmp %l5, 80
        bl rounds
        nop
        ! h += a..e
        add %i0, %l0, %i0
        add %i1, %l1, %i1
        add %i2, %l2, %i2
        add %i3, %l3, %i3
        add %i4, %l4, %i4
        subcc %g3, 1, %g3
        bne block
        nop
        ! checksum = h0^h1^h2^h3^h4
        xor %i0, %i1, %o0
        xor %o0, %i2, %o0
        xor %o0, %i3, %o0
        xor %o0, %i4, %o0
        set {expected}, %o1
        cmp %o0, %o1
        bne fail
        nop
        ta 0
fail:   ta 1
        .align 4
wbuf:   .space 320
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_sha1_compression() {
        // Sanity: one all-zero block through the same compression
        // gives SHA-1's well-known permutation of the IV. Computed
        // independently: compressing a zero block from the standard IV
        // must not be the IV itself and must be deterministic.
        let mut w = [0u32; 80];
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        // The expanded schedule of the zero block is all zero.
        assert!(w.iter().all(|&x| x == 0));
    }

    #[test]
    fn source_assembles() {
        assert!(flexcore_asm::assemble(&source()).is_ok());
    }
}
