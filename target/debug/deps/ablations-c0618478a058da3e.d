/root/repo/target/debug/deps/ablations-c0618478a058da3e.d: tests/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-c0618478a058da3e.rmeta: tests/ablations.rs Cargo.toml

tests/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
