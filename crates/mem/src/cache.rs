//! Tag-only set-associative timing cache (used for the L1 I/D caches).

use std::fmt;

/// Write policy of a cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WritePolicy {
    /// Writes go straight to memory; no allocation on a write miss
    /// (the Leon3 L1 policy).
    WriteThroughNoAllocate,
    /// Writes dirty the line; dirty victims are written back on
    /// eviction (the meta-data cache policy).
    WriteBackAllocate,
}

/// Geometry and policy of a cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (1 = direct-mapped).
    pub ways: u32,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// The paper's L1 configuration: 32 KB, 32-byte lines. Leon3's
    /// caches are direct-mapped by default; we keep that, with
    /// write-through / no-allocate.
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            ways: 1,
            write_policy: WritePolicy::WriteThroughNoAllocate,
        }
    }

    /// The paper's meta-data cache: 4 KB, 32-byte lines, write-back
    /// with allocation so that bit-masked tag updates stay on chip.
    pub fn meta_default() -> CacheConfig {
        CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 32,
            ways: 2,
            write_policy: WritePolicy::WriteBackAllocate,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// Number of words per line.
    pub fn line_words(&self) -> u32 {
        self.line_bytes / 4
    }

    /// Validates the geometry (everything power-of-two and consistent).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on an invalid geometry; called
    /// from the cache constructors.
    pub fn validate(&self) {
        assert!(
            self.line_bytes.is_power_of_two() && self.line_bytes >= 4,
            "line size {} must be a power of two >= 4",
            self.line_bytes
        );
        assert!(self.ways >= 1, "associativity must be at least 1");
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.ways),
            "size {} not divisible by line*ways",
            self.size_bytes
        );
        assert!(self.sets().is_power_of_two(), "set count {} must be a power of two", self.sets());
    }
}

/// Hit/miss statistics for one cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Dirty lines written back (write-back caches only).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Overall miss ratio (0 when there were no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            (self.read_misses + self.write_misses) as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, miss ratio {:.2}% ({} wb)",
            self.accesses(),
            self.miss_ratio() * 100.0,
            self.writebacks
        )
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (bigger = more recent).
    lru: u64,
}

const INVALID: Line = Line { tag: 0, valid: false, dirty: false, lru: 0 };

/// One cache line's replacement state, as captured by
/// [`TimingCache::snapshot`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineState {
    /// Stored tag.
    pub tag: u32,
    /// Valid bit.
    pub valid: bool,
    /// Dirty bit (write-back caches only).
    pub dirty: bool,
    /// LRU timestamp (bigger = more recent).
    pub lru: u64,
}

/// Complete checkpointable state of a [`TimingCache`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CacheSnapshot {
    /// Every line, ways-within-set major order (the internal layout).
    pub lines: Vec<LineState>,
    /// The LRU stamp counter.
    pub stamp: u64,
    /// Accumulated statistics.
    pub stats: CacheStats,
}

/// Outcome of a cache access: what the timing model must pay for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lookup {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether the access allocated a line (and therefore needs a line
    /// refill from memory).
    pub refill: bool,
    /// Base address of a dirty victim that must be written back first.
    pub writeback_of: Option<u32>,
}

/// A set-associative, LRU, tag-only cache.
///
/// It tracks hits, misses, refills and write-backs but holds no data:
/// the L1 caches are write-through, so [`MainMemory`](crate::MainMemory)
/// is always current and functional reads can bypass the model. The
/// data-carrying variant (needed for bit-masked meta-data writes) is
/// [`MetaDataCache`](crate::MetaDataCache), which embeds one of these
/// for its tags.
#[derive(Clone, Debug)]
pub struct TimingCache {
    config: CacheConfig,
    lines: Vec<Line>,
    stamp: u64,
    stats: CacheStats,
}

impl TimingCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> TimingCache {
        config.validate();
        let n = (config.sets() * config.ways) as usize;
        TimingCache { config, lines: vec![INVALID; n], stamp: 0, stats: CacheStats::default() }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_and_tag(&self, addr: u32) -> (u32, u32) {
        let line = addr / self.config.line_bytes;
        (line % self.config.sets(), line / self.config.sets())
    }

    fn set_slice(&mut self, set: u32) -> &mut [Line] {
        let w = self.config.ways as usize;
        let base = set as usize * w;
        &mut self.lines[base..base + w]
    }

    /// Looks up `addr` for a read (`is_write = false`) or write, updates
    /// the tags and statistics, and reports what memory traffic is
    /// needed.
    pub fn access(&mut self, addr: u32, is_write: bool) -> Lookup {
        self.stamp += 1;
        let stamp = self.stamp;
        let (set, tag) = self.set_and_tag(addr);
        let line_bytes = self.config.line_bytes;
        let sets = self.config.sets();
        let policy = self.config.write_policy;

        let ways = self.set_slice(set);
        let mut hit = false;
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = stamp;
            if is_write && policy == WritePolicy::WriteBackAllocate {
                line.dirty = true;
            }
            hit = true;
        }
        if hit {
            if is_write {
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return Lookup { hit: true, refill: false, writeback_of: None };
        }

        // Miss.
        if is_write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        let allocate = !is_write || policy == WritePolicy::WriteBackAllocate;
        if !allocate {
            return Lookup { hit: false, refill: false, writeback_of: None };
        }

        // Choose a victim: an invalid way if any, else LRU.
        let writeback_of = {
            let ways = self.set_slice(set);
            let victim = ways
                .iter_mut()
                .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
                .expect("at least one way");
            let writeback_of =
                (victim.valid && victim.dirty).then(|| (victim.tag * sets + set) * line_bytes);
            *victim = Line {
                tag,
                valid: true,
                dirty: is_write && policy == WritePolicy::WriteBackAllocate,
                lru: stamp,
            };
            writeback_of
        };
        if writeback_of.is_some() {
            self.stats.writebacks += 1;
        }
        Lookup { hit: false, refill: true, writeback_of }
    }

    /// Captures the complete replacement state (tags, valid/dirty bits,
    /// LRU stamps, statistics) for checkpointing.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            lines: self
                .lines
                .iter()
                .map(|l| LineState { tag: l.tag, valid: l.valid, dirty: l.dirty, lru: l.lru })
                .collect(),
            stamp: self.stamp,
            stats: self.stats,
        }
    }

    /// Restores state captured by [`TimingCache::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's line count does not match this cache's
    /// geometry (snapshots only restore onto an identically configured
    /// cache).
    pub fn restore(&mut self, snap: &CacheSnapshot) {
        assert_eq!(
            snap.lines.len(),
            self.lines.len(),
            "cache snapshot line count does not match geometry"
        );
        for (line, s) in self.lines.iter_mut().zip(&snap.lines) {
            *line = Line { tag: s.tag, valid: s.valid, dirty: s.dirty, lru: s.lru };
        }
        self.stamp = snap.stamp;
        self.stats = snap.stats;
    }

    /// Whether `addr` is currently resident (no state change).
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let w = self.config.ways as usize;
        let base = set as usize * w;
        self.lines[base..base + w].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the whole cache (does not write back dirty lines —
    /// callers that care must flush first).
    pub fn invalidate_all(&mut self) {
        self.lines.fill(INVALID);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: u32, policy: WritePolicy) -> TimingCache {
        TimingCache::new(CacheConfig {
            size_bytes: 256,
            line_bytes: 32,
            ways,
            write_policy: policy,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny(1, WritePolicy::WriteThroughNoAllocate);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x104, false).hit, "same line");
        assert_eq!(c.stats().read_misses, 1);
        assert_eq!(c.stats().read_hits, 1);
    }

    #[test]
    fn write_through_does_not_allocate() {
        let mut c = tiny(1, WritePolicy::WriteThroughNoAllocate);
        let l = c.access(0x100, true);
        assert!(!l.hit && !l.refill);
        assert!(!c.probe(0x100));
        // A read then allocates, and a subsequent write hits.
        c.access(0x100, false);
        assert!(c.access(0x100, true).hit);
    }

    #[test]
    fn write_back_allocates_and_writes_back_dirty_victim() {
        let mut c = tiny(1, WritePolicy::WriteBackAllocate);
        // 256 B direct-mapped, 32 B lines -> 8 sets; 0x000 and 0x100
        // conflict.
        let l = c.access(0x000, true);
        assert!(l.refill && l.writeback_of.is_none());
        let l2 = c.access(0x100, true);
        assert!(l2.refill);
        assert_eq!(l2.writeback_of, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_victim_needs_no_writeback() {
        let mut c = tiny(1, WritePolicy::WriteBackAllocate);
        c.access(0x000, false); // clean
        let l = c.access(0x100, false);
        assert!(l.refill);
        assert_eq!(l.writeback_of, None);
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        let mut c = tiny(2, WritePolicy::WriteBackAllocate);
        // 256 B, 2-way, 32 B lines -> 4 sets. Addresses 0x000, 0x080,
        // 0x100 all map to set 0.
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch 0x000 again
        c.access(0x100, false); // should evict 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = tiny(2, WritePolicy::WriteBackAllocate);
        c.access(0x40, false);
        assert!(c.probe(0x40));
        c.invalidate_all();
        assert!(!c.probe(0x40));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_geometry_panics() {
        let _ = TimingCache::new(CacheConfig {
            size_bytes: 96,
            line_bytes: 32,
            ways: 1,
            write_policy: WritePolicy::WriteThroughNoAllocate,
        });
    }

    #[test]
    fn l1_default_geometry() {
        let c = CacheConfig::l1_default();
        c.validate();
        assert_eq!(c.sets(), 1024);
        assert_eq!(c.line_words(), 8);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// An independent reference implementation of a set-associative LRU
    /// cache: per set, a most-recent-first list of resident tags.
    struct RefCache {
        cfg: CacheConfig,
        sets: Vec<Vec<(u32, bool)>>, // (tag, dirty), MRU first
    }

    impl RefCache {
        fn new(cfg: CacheConfig) -> RefCache {
            RefCache { cfg, sets: vec![Vec::new(); cfg.sets() as usize] }
        }

        /// Returns (hit, writeback_of).
        fn access(&mut self, addr: u32, is_write: bool) -> (bool, Option<u32>) {
            let line = addr / self.cfg.line_bytes;
            let set_idx = (line % self.cfg.sets()) as usize;
            let tag = line / self.cfg.sets();
            let ways = self.cfg.ways as usize;
            let wb_policy = self.cfg.write_policy == WritePolicy::WriteBackAllocate;
            let set = &mut self.sets[set_idx];
            if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
                let (t, mut d) = set.remove(pos);
                if is_write && wb_policy {
                    d = true;
                }
                set.insert(0, (t, d));
                return (true, None);
            }
            let allocate = !is_write || wb_policy;
            if !allocate {
                return (false, None);
            }
            let mut wb = None;
            if set.len() == ways {
                let (vt, vd) = set.pop().expect("full set");
                if vd {
                    wb = Some((vt * self.cfg.sets() + set_idx as u32) * self.cfg.line_bytes);
                }
            }
            set.insert(0, (tag, is_write && wb_policy));
            (false, wb)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Hit/miss/write-back behaviour matches the reference LRU
        /// model access-for-access, across geometries and policies.
        #[test]
        fn timing_cache_matches_reference_lru(
            ways in 1u32..=4,
            sets_log2 in 1u32..=4,
            write_back in any::<bool>(),
            accesses in prop::collection::vec((0u32..4096, any::<bool>()), 1..300),
        ) {
            let cfg = CacheConfig {
                size_bytes: 32 * (1 << sets_log2) * ways,
                line_bytes: 32,
                ways,
                write_policy: if write_back {
                    WritePolicy::WriteBackAllocate
                } else {
                    WritePolicy::WriteThroughNoAllocate
                },
            };
            let mut dut = TimingCache::new(cfg);
            let mut reference = RefCache::new(cfg);
            for (i, &(addr, is_write)) in accesses.iter().enumerate() {
                let lookup = dut.access(addr, is_write);
                let (ref_hit, ref_wb) = reference.access(addr, is_write);
                prop_assert_eq!(lookup.hit, ref_hit, "access {} addr {:#x}", i, addr);
                prop_assert_eq!(lookup.writeback_of, ref_wb, "access {} addr {:#x}", i, addr);
            }
        }
    }
}
