/root/repo/target/debug/examples/soft_error-87671d3145fc683f.d: examples/soft_error.rs

/root/repo/target/debug/examples/soft_error-87671d3145fc683f: examples/soft_error.rs

examples/soft_error.rs:
