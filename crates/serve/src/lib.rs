//! `flexcore-serve` — the fault-tolerant sharded campaign job server
//! behind the `flexserve` binary.
//!
//! `faultsweep` runs one campaign in the foreground and dies with the
//! process. This crate productionizes the campaign machinery into a
//! long-lived service where **every layer survives failure**:
//!
//! * [`job`] — campaign jobs: a [`JobSpec`] (sweep spec, workload set,
//!   recovery policy, priority) keyed by a deterministic campaign
//!   hash ([`JobId`]), expanded into the exact same
//!   [`TrialSpec`](flexcore_bench::trial::TrialSpec) list `faultsweep`
//!   would run — trial generation, execution, and the JSONL record
//!   codec are shared via [`flexcore_bench::trial`], so the two
//!   cannot drift.
//! * [`queue`] + [`admission`] — backpressure-aware admission: the job
//!   queue has a bounded depth, over-depth submissions come back as a
//!   typed [`AdmitError::Rejected`] carrying a `retry_after_ms` hint
//!   (instead of unbounded memory growth), and under overload the
//!   queue degrades gracefully by shedding the lowest-priority queued
//!   job — with a [`ShedRecord`] accounting trail, never silently.
//! * [`pool`] + [`worker`] — the **global** supervised worker pool:
//!   long-lived threads shared across every job (not per-job pools),
//!   one fresh [`System`](flexcore::System) per trial, no shared
//!   mutable simulation state. A panicking trial is isolated with
//!   `catch_unwind`, retried with bounded exponential backoff, and
//!   after the attempt budget quarantined as a typed [`TrialFailure`]
//!   instead of killing the campaign. A deterministic chaos hook
//!   injects worker panics on demand to prove all of that in CI.
//! * [`journal`] — crash-safe JSONL journaling keyed by campaign hash:
//!   every completed trial is appended in one write and fsynced on an
//!   epoch cadence; on resume a tail line truncated by `kill -9`
//!   mid-append is dropped (and the file repaired) rather than
//!   poisoning the log, and every journaled trial is reused — a killed
//!   server resumes exactly where it left off with zero lost and zero
//!   duplicated trials. Many-times-resumed journals are **compacted**
//!   (write-temp + fsync + atomic rename, crash-safe between any two
//!   syscalls) down to one record per trial, so resume replays
//!   O(unfinished trials) instead of O(all records ever appended).
//! * [`daemon`] + [`client`] — the long-lived `flexserve serve` form:
//!   [`JobSpec`] submission over a Unix-domain socket (newline-
//!   delimited JSON with typed errors) *while* the scheduler drains,
//!   streaming result subscription, graceful drain (stop admission,
//!   finish in-flight, final heartbeat, exit 0), and a bundled client
//!   that honors `retry_after_ms` with bounded exponential backoff +
//!   deterministic jitter.
//! * [`scheduler`] — the [`Server`]: drains the queue in priority
//!   order, shards each job's trials across the pool, journals, and
//!   emits per-job metrics plus Chrome-trace worker/trial spans
//!   (the observability story of `flexcore::obs`, applied to the
//!   service itself).
//! * [`health`] — live service health on
//!   [`flexcore_telemetry`](flexcore_telemetry)'s lock-free registry:
//!   queue depth and busy workers as gauges, trial/backpressure/shed
//!   counts as counters, journal write/fsync latency as log₂
//!   histograms — snapshotted after every trial into an
//!   atomically-replaced `status.json` heartbeat with a monotone
//!   `seq`, so an external watcher never reads a torn document even
//!   across a `kill -9`.
//!
//! The end-to-end robustness contract (exercised by the integration
//! tests and the CI soak): a campaign run under `flexserve` with
//! injected worker panics, a `kill -9` of the whole server, and queue
//! saturation completes with a merged trial log byte-identical to a
//! clean `faultsweep` run, and reports every failure as a typed
//! outcome.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod daemon;
pub mod health;
pub mod job;
pub mod journal;
pub mod pool;
pub mod queue;
pub mod scheduler;
pub mod worker;

pub use admission::{AdmissionStats, AdmitError, ShedRecord};
pub use client::{Client, ClientError, RetryPolicy};
pub use daemon::{Daemon, DaemonConfig, DaemonPhase};
pub use health::{HealthMetrics, Heartbeat};
pub use job::{JobId, JobSpec, JobSpecError};
pub use journal::{CompactionReport, Journal, JournalError, JournalRecovery, LoggedOutcome};
pub use pool::{JobHandle, WorkerPool};
pub use queue::JobQueue;
pub use scheduler::{JobState, JobSummary, Server, ServerConfig, ServerReport};
pub use worker::{run_job, run_job_observed, JobRunStats, TrialFailure, TrialRecord, WorkerPolicy};
