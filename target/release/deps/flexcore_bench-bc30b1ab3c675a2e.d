/root/repo/target/release/deps/flexcore_bench-bc30b1ab3c675a2e.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libflexcore_bench-bc30b1ab3c675a2e.rlib: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libflexcore_bench-bc30b1ab3c675a2e.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
