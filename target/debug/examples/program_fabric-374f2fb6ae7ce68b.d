/root/repo/target/debug/examples/program_fabric-374f2fb6ae7ce68b.d: examples/program_fabric.rs Cargo.toml

/root/repo/target/debug/examples/libprogram_fabric-374f2fb6ae7ce68b.rmeta: examples/program_fabric.rs Cargo.toml

examples/program_fabric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
