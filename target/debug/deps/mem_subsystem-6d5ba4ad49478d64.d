/root/repo/target/debug/deps/mem_subsystem-6d5ba4ad49478d64.d: crates/bench/benches/mem_subsystem.rs Cargo.toml

/root/repo/target/debug/deps/libmem_subsystem-6d5ba4ad49478d64.rmeta: crates/bench/benches/mem_subsystem.rs Cargo.toml

crates/bench/benches/mem_subsystem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
