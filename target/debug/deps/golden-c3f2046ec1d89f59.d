/root/repo/target/debug/deps/golden-c3f2046ec1d89f59.d: crates/pipeline/tests/golden.rs

/root/repo/target/debug/deps/golden-c3f2046ec1d89f59: crates/pipeline/tests/golden.rs

crates/pipeline/tests/golden.rs:
