/root/repo/target/debug/deps/flexsim-329ffa475b363091.d: crates/bench/src/bin/flexsim.rs

/root/repo/target/debug/deps/libflexsim-329ffa475b363091.rmeta: crates/bench/src/bin/flexsim.rs

crates/bench/src/bin/flexsim.rs:
