//! Criterion micro-benchmarks: the netlist construction, technology
//! mapping, and cost-model pipeline behind Table III.

use criterion::{criterion_group, criterion_main, Criterion};
use flexcore::ext::{Bc, Dift, Sec, Umc};
use flexcore::Extension;
use flexcore_fabric::{map_to_luts, AsicCost, FpgaCost};

fn bench_netlist_builds(c: &mut Criterion) {
    let mut g = c.benchmark_group("netlist_build");
    g.bench_function("umc", |b| b.iter(|| Umc::new().netlist()));
    g.bench_function("sec", |b| b.iter(|| Sec::new().netlist()));
    g.finish();
}

fn bench_lut_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("lut_mapping");
    for (name, netlist) in [
        ("umc", Umc::new().netlist()),
        ("dift", Dift::new().netlist()),
        ("bc", Bc::new().netlist()),
        ("sec", Sec::new().netlist()),
    ] {
        g.bench_function(name, |b| b.iter(|| map_to_luts(&netlist, 6).lut_count()));
    }
    g.finish();
}

fn bench_cost_models(c: &mut Criterion) {
    let netlist = Sec::new().netlist();
    c.bench_function("fpga_cost_sec", |b| b.iter(|| FpgaCost::of(&netlist).area_um2()));
    c.bench_function("asic_cost_sec", |b| b.iter(|| AsicCost::of(&netlist).area_um2()));
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_netlist_builds, bench_lut_mapping, bench_cost_models
}
criterion_main!(benches);
