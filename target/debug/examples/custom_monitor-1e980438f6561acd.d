/root/repo/target/debug/examples/custom_monitor-1e980438f6561acd.d: examples/custom_monitor.rs

/root/repo/target/debug/examples/custom_monitor-1e980438f6561acd: examples/custom_monitor.rs

examples/custom_monitor.rs:
