/root/repo/target/debug/deps/faultsweep-1cbfa2c7d61e9ad6.d: crates/bench/src/bin/faultsweep.rs

/root/repo/target/debug/deps/libfaultsweep-1cbfa2c7d61e9ad6.rmeta: crates/bench/src/bin/faultsweep.rs

crates/bench/src/bin/faultsweep.rs:
