/root/repo/target/debug/examples/dift_attack-6088697a7d4ec037.d: examples/dift_attack.rs

/root/repo/target/debug/examples/dift_attack-6088697a7d4ec037: examples/dift_attack.rs

examples/dift_attack.rs:
