/root/repo/target/debug/deps/golden-bbd3abfb23514b57.d: crates/pipeline/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-bbd3abfb23514b57.rmeta: crates/pipeline/tests/golden.rs Cargo.toml

crates/pipeline/tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
