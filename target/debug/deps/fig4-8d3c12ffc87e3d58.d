/root/repo/target/debug/deps/fig4-8d3c12ffc87e3d58.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-8d3c12ffc87e3d58: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
