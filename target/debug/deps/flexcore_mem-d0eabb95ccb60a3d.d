/root/repo/target/debug/deps/flexcore_mem-d0eabb95ccb60a3d.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

/root/repo/target/debug/deps/libflexcore_mem-d0eabb95ccb60a3d.rmeta: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/mainmem.rs:
crates/mem/src/metacache.rs:
crates/mem/src/storebuf.rs:
