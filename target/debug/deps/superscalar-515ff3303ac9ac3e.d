/root/repo/target/debug/deps/superscalar-515ff3303ac9ac3e.d: crates/bench/src/bin/superscalar.rs

/root/repo/target/debug/deps/superscalar-515ff3303ac9ac3e: crates/bench/src/bin/superscalar.rs

crates/bench/src/bin/superscalar.rs:
