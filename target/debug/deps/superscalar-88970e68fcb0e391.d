/root/repo/target/debug/deps/superscalar-88970e68fcb0e391.d: crates/bench/src/bin/superscalar.rs

/root/repo/target/debug/deps/superscalar-88970e68fcb0e391: crates/bench/src/bin/superscalar.rs

crates/bench/src/bin/superscalar.rs:
