/root/repo/target/debug/deps/fault_injection-26d6adb224972bf5.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-26d6adb224972bf5: tests/fault_injection.rs

tests/fault_injection.rs:
