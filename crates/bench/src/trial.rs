//! Shared fault-campaign trial machinery: the single place that knows
//! how to *generate*, *execute*, and *log* campaign trials.
//!
//! Both consumers go through this module so they cannot drift:
//!
//! * `faultsweep` — the batch campaign binary (SEC coverage, clean
//!   false-trap rows, rate × target sweep).
//! * `flexserve` (`flexcore-serve`) — the sharded campaign job server,
//!   which runs the *same* trials across a worker pool and journals
//!   the *same* JSONL records, so a merged `flexserve` trial log can be
//!   diffed byte-for-byte against a `faultsweep` progress log.
//!
//! The three invariants everything here protects:
//!
//! 1. **Trial identity is the label.** `campaign1_trials` /
//!    `sweep_trials` derive every seed, fault site, and flipped bit
//!    deterministically from `(campaign seed, trial index)`, and the
//!    label encodes the position — so a record keyed by label can be
//!    reused by any resume path.
//! 2. **Execution is a pure function of the spec.** [`run_trial`] has
//!    no hidden state; re-running a trial anywhere (another worker,
//!    another process, another day) reproduces the outcome bit-exactly.
//! 3. **One codec.** [`outcome_record`] / [`decode_outcome`] define the
//!    JSONL trial-record shape; [`parse_jsonl_tolerant`] defines how a
//!    possibly crash-truncated log is read back (drop the partial tail
//!    line, keep everything before it).

use flexcore::ext::{Bc, Dift, ExtEnv, Sec, Umc};
use flexcore::faults::{FaultModel, FaultPlan, FaultRng, FaultSchedule, FaultTarget};
use flexcore::recovery::{FaultOutcome, RecoveryPolicy, Supervisor};
use flexcore::{
    Cfgr, Extension, ExtensionDescriptor, ForwardPolicy, MonitorTrap, RunResult, SimError,
    SwapPolicy, System, SystemConfig,
};
use flexcore_fabric::{Netlist, NetlistBuilder};
use flexcore_isa::Instruction;
use flexcore_pipeline::TracePacket;
use flexcore_workloads::Workload;

use crate::{ExtKind, MAX_INSTRUCTIONS};

/// Cycle budget per faulted run: generous (clean sha needs ~2M) but
/// bounded, so a corrupted loop counter cannot spin forever.
pub const CYCLE_BUDGET: u64 = 50_000_000;

/// The Bernoulli fault rates (faults per million commits) of the
/// rate × target sweep; rate 0 is the clean false-trap row.
pub const SWEEP_RATES: [u64; 4] = [0, 10, 100, 1000];

/// The fault targets of the rate × target sweep, with their stable
/// label fragments.
pub const SWEEP_TARGETS: [(&str, FaultTarget); 4] = [
    ("result", FaultTarget::CommitResult),
    ("register", FaultTarget::Register),
    ("fifo-pkt", FaultTarget::FifoPacket),
    ("metacache", FaultTarget::MetaCache),
];

/// Forwards every commit and records the 1-based commit indices of ALU
/// operations — the population SEC protects. Commit indices here match
/// `FaultSchedule::AtCommit` exactly: the system polls the injector
/// with the same counter that orders these packets.
#[derive(Default)]
struct CommitProfiler {
    commits: u64,
    alu_commits: Vec<u64>,
}

impl Extension for CommitProfiler {
    fn name(&self) -> &'static str {
        "profiler"
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "PROF",
            name: "commit profiler",
            meta_data: &[],
            transparent_ops: &[],
            sw_visible_ops: &[],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new().with_classes(|_| true, ForwardPolicy::Always)
    }

    fn process(
        &mut self,
        pkt: &TracePacket,
        _env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        self.commits += 1;
        if matches!(pkt.inst, Instruction::Alu { .. }) {
            self.alu_commits.push(self.commits);
        }
        Ok(None)
    }

    fn netlist(&self) -> Netlist {
        NetlistBuilder::new("profiler").finish()
    }
}

/// What one faulted simulation did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrialOutcome {
    /// The extension raised a monitor trap.
    pub trapped: bool,
    /// The lockstep golden model caught an architectural divergence.
    pub diverged: bool,
    /// The forward-progress watchdog fired.
    pub deadlocked: bool,
    /// The cycle budget tripped before completion.
    pub over_budget: bool,
    /// Faults the injector actually struck.
    pub faults_injected: u64,
    /// Commits between injection and the trap, when both happened.
    pub trap_skid: Option<u64>,
    /// Fault-outcome triage — only populated by supervised
    /// (`recover`) trials.
    pub triage: Option<FaultOutcome>,
    /// Cycles of rolled-back work replayed by recovery — only
    /// populated by supervised trials.
    pub mttr: Option<u64>,
}

impl TrialOutcome {
    /// The fault was caught — by the extension's own trap or (under
    /// lockstep) by the golden model.
    pub fn detected(&self) -> bool {
        self.trapped || self.diverged
    }
}

/// The fault configuration of one trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrialKind {
    /// Campaign 1: one single-bit flip of an ALU result under SEC.
    AluFlip {
        /// Per-trial seed (drives the fault stream).
        trial_seed: u64,
        /// 1-based commit index of the struck ALU op.
        site: u64,
        /// Which result bit is flipped.
        bit: u32,
    },
    /// Campaigns 2–3: Bernoulli faults at a fixed rate against one
    /// target under one extension (rate 0 = clean false-trap row).
    RateSweep {
        /// Which extension monitors the run.
        ext: ExtKind,
        /// What the injector strikes.
        target: FaultTarget,
        /// Faults per million commits (0 = no injection).
        rate: u64,
        /// Seed of the Bernoulli stream.
        plan_seed: u64,
    },
    /// Reconfig-window campaign: a UMC → CFI hot-swap scheduled at a
    /// commit boundary, with bitstream-transfer faults striking
    /// *inside* the swap window.
    SwapWindow {
        /// Per-trial seed (drives the byte offset and mask of each
        /// bitstream strike).
        trial_seed: u64,
        /// Commit boundary the swap fires at.
        at_commit: u64,
        /// `false`: a single strike on the first transfer attempt —
        /// the swap's retry machinery must absorb it. `true`: every
        /// attempt is corrupted, so the retry budget exhausts and the
        /// failure escalates through the recovery ladder, which must
        /// replay the swap deterministically.
        exhaust: bool,
    },
}

/// One fully-determined trial: workload + fault configuration + run
/// mode. [`run_trial`] on an equal spec always reproduces the same
/// [`TrialOutcome`].
#[derive(Clone, Debug)]
pub struct TrialSpec {
    /// Stable identity (resume key and log key).
    pub label: String,
    /// The workload the faulted system runs.
    pub workload: Workload,
    /// Fault configuration.
    pub kind: TrialKind,
    /// Step the ISA-level golden model commit-for-commit.
    pub lockstep: bool,
    /// Run under the rollback-and-replay [`Supervisor`] and triage the
    /// outcome (campaign-1 trials only).
    pub recover: bool,
    /// Supervisor knobs for `recover` trials.
    pub policy: RecoveryPolicy,
}

/// Campaign-wide parameters shared by every generated trial.
#[derive(Clone, Copy, Debug)]
pub struct CampaignSpec {
    /// Campaign seed — every trial seed derives from it.
    pub seed: u64,
    /// Campaign-1 trials per workload.
    pub trials: usize,
    /// Enable the lockstep golden model on every trial.
    pub lockstep: bool,
    /// Run campaign-1 trials under the supervisor with triage.
    pub recover: bool,
    /// Supervisor knobs for `recover` trials.
    pub policy: RecoveryPolicy,
}

impl Default for CampaignSpec {
    fn default() -> CampaignSpec {
        CampaignSpec {
            seed: 0xf1ec,
            trials: 100,
            lockstep: false,
            recover: false,
            policy: RecoveryPolicy::default(),
        }
    }
}

/// Campaign-1 trial list: `spec.trials` single-bit ALU-result flips per
/// workload, fault sites drawn from a clean profiling run. Labels,
/// seeds, sites, and bits are exactly the `faultsweep` derivation —
/// progress logs written by either consumer resume interchangeably.
pub fn campaign1_trials(spec: &CampaignSpec, workloads: &[Workload]) -> Vec<TrialSpec> {
    let mut out = Vec::with_capacity(spec.trials * workloads.len());
    for workload in workloads {
        let sites = profile_alu_commits(workload);
        assert!(!sites.is_empty(), "{} has ALU commits", workload.name());
        for t in 0..spec.trials {
            let trial_seed = spec.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let site = sites[FaultRng::new(trial_seed).below(sites.len() as u64) as usize];
            let bit = FaultRng::new(trial_seed.rotate_left(17)).below(32) as u32;
            out.push(TrialSpec {
                label: format!("{} trial {t}", workload.name()),
                workload: *workload,
                kind: TrialKind::AluFlip { trial_seed, site, bit },
                lockstep: spec.lockstep,
                recover: spec.recover,
                policy: spec.policy,
            });
        }
    }
    out
}

/// Campaigns 2–3 trial list: the rate × target sweep for every
/// extension, in `workload → extension → target → rate` order (the
/// order `faultsweep` prints and records them in).
pub fn sweep_trials(spec: &CampaignSpec, workloads: &[Workload]) -> Vec<TrialSpec> {
    let mut out = Vec::new();
    for workload in workloads {
        for ext in ExtKind::ALL {
            for (tname, target) in SWEEP_TARGETS {
                for rate in SWEEP_RATES {
                    let plan_seed = spec.seed
                        ^ rate.wrapping_mul(0x2545_f491_4f6c_dd1d)
                        ^ (target_tag(target) << 48);
                    out.push(TrialSpec {
                        label: format!("{} {} {tname} rate {rate}", workload.name(), ext.name()),
                        workload: *workload,
                        kind: TrialKind::RateSweep { ext, target, rate, plan_seed },
                        lockstep: spec.lockstep,
                        recover: false,
                        policy: spec.policy,
                    });
                }
            }
        }
    }
    out
}

/// Reconfig-window trial list: `spec.trials` UMC → CFI hot-swaps per
/// workload, each at a boundary drawn deterministically from the
/// workload's commit population, alternating between a single
/// retry-absorbed bitstream strike (even trials) and full retry
/// exhaustion that exercises the recovery ladder (odd trials).
pub fn reconfig_trials(spec: &CampaignSpec, workloads: &[Workload]) -> Vec<TrialSpec> {
    let mut out = Vec::with_capacity(spec.trials * workloads.len());
    for workload in workloads {
        let sites = profile_alu_commits(workload);
        let span = *sites.last().expect("workload has commits");
        for t in 0..spec.trials {
            let trial_seed = spec.seed ^ (t as u64 + 1).wrapping_mul(0xd6e8_feb8_6659_fd93);
            let at_commit = 1 + FaultRng::new(trial_seed.rotate_left(23)).below(span);
            out.push(TrialSpec {
                label: format!("{} swap {t}", workload.name()),
                workload: *workload,
                kind: TrialKind::SwapWindow { trial_seed, at_commit, exhaust: t % 2 == 1 },
                lockstep: spec.lockstep,
                recover: spec.recover,
                policy: spec.policy,
            });
        }
    }
    out
}

fn target_tag(target: FaultTarget) -> u64 {
    match target {
        FaultTarget::CommitResult => 1,
        FaultTarget::Register => 2,
        FaultTarget::FifoPacket => 3,
        FaultTarget::MetaCache => 4,
        _ => 5,
    }
}

/// The paper's fabric-clock configuration for `ext`, with the campaign
/// cycle budget applied.
pub fn paper_config(ext: ExtKind) -> SystemConfig {
    let base = match ext.paper_divisor() {
        4 => SystemConfig::fabric_quarter_speed(),
        _ => SystemConfig::fabric_half_speed(),
    };
    base.with_cycle_budget(CYCLE_BUDGET)
}

/// ALU commit indices of one clean run (the fault-site population).
///
/// # Panics
///
/// Panics if the clean profiling run fails — a reproduction bug, not a
/// campaign outcome.
pub fn profile_alu_commits(workload: &Workload) -> Vec<u64> {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::new(
        SystemConfig::fabric_full_speed().with_cycle_budget(CYCLE_BUDGET),
        CommitProfiler::default(),
    );
    sys.load_program(&program);
    let r = sys.try_run(MAX_INSTRUCTIONS).expect("clean profiling run completes");
    assert!(r.monitor_trap.is_none());
    assert_eq!(r.forward.committed, r.forward.forwarded, "profiler must see every commit");
    sys.extension().alu_commits.clone()
}

/// The clean (fault-free) reference run supervised triage compares
/// against — SEC at the paper configuration, like every campaign-1
/// trial.
///
/// # Panics
///
/// Panics if the clean run fails or traps (a reproduction bug).
pub fn reference_run(workload: &Workload) -> RunResult {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::new(paper_config(ExtKind::Sec), Sec::new());
    sys.load_program(&program);
    let r = sys.try_run(MAX_INSTRUCTIONS).expect("clean reference run completes");
    assert!(r.monitor_trap.is_none(), "clean reference run must not trap");
    r
}

/// The clean reference the reconfig-window triage compares against: a
/// *swap-free* UMC run at the paper configuration. Triage compares
/// only architectural outcomes (exit reason, instret, console) — the
/// hot-swap equivalence guarantee is exactly that those are unchanged
/// by a swap at any boundary, so the swap-free run is the oracle.
///
/// # Panics
///
/// Panics if the clean run fails or traps (a reproduction bug).
pub fn swap_reference_run(workload: &Workload) -> RunResult {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::new(paper_config(ExtKind::Umc), Umc::new());
    sys.load_program(&program);
    let r = sys.try_run(MAX_INSTRUCTIONS).expect("clean swap reference run completes");
    assert!(r.monitor_trap.is_none(), "clean swap reference run must not trap");
    r
}

/// The reconfig-window campaign's system: the workload under UMC with
/// a UMC → CFI hot-swap scheduled at `at_commit` (CFI's edge table
/// recovered statically from the workload's own CFG).
fn swapped_system(workload: &Workload, at_commit: u64) -> System<Box<dyn Extension>> {
    let program = workload.program().expect("workload assembles");
    let umc = crate::swap::build_extension("umc", &program).expect("umc builds");
    let mut sys = System::new(paper_config(ExtKind::Umc), umc);
    sys.load_program(&program);
    let point = crate::swap::SwapPoint { at_commit, to: "cfi".into(), policy: SwapPolicy::Reset };
    crate::swap::schedule(&mut sys, &point, &program).expect("cfi is swappable");
    sys
}

fn outcome_of(result: Result<RunResult, SimError>) -> TrialOutcome {
    match result {
        Ok(r) => TrialOutcome {
            trapped: r.monitor_trap.is_some(),
            faults_injected: r.resilience.faults_injected,
            trap_skid: r.trap_skid,
            ..TrialOutcome::default()
        },
        Err(SimError::Divergence(_)) => TrialOutcome { diverged: true, ..TrialOutcome::default() },
        Err(SimError::Deadlock(_)) => TrialOutcome { deadlocked: true, ..TrialOutcome::default() },
        Err(_) => TrialOutcome { over_budget: true, ..TrialOutcome::default() },
    }
}

/// One reconfig-window trial without the supervisor: the swap either
/// absorbs its strike through retries or errors out, and the outcome
/// is recorded as-is.
fn run_swap_plain(
    workload: &Workload,
    at_commit: u64,
    plan: &FaultPlan,
    lockstep: bool,
) -> TrialOutcome {
    let mut sys = swapped_system(workload, at_commit);
    sys.arm_faults(plan.clone());
    if lockstep {
        sys.enable_lockstep();
    }
    outcome_of(sys.try_run(MAX_INSTRUCTIONS))
}

/// One reconfig-window trial under the rollback-and-replay supervisor,
/// triaged against the swap-free reference.
fn run_swap_supervised(
    workload: &Workload,
    at_commit: u64,
    plan: &FaultPlan,
    lockstep: bool,
    policy: RecoveryPolicy,
    reference: &RunResult,
) -> TrialOutcome {
    let mut sys = swapped_system(workload, at_commit);
    sys.arm_faults(plan.clone());
    if lockstep {
        sys.enable_lockstep();
    }
    let mut sup = Supervisor::new(sys, policy);
    let result = sup.run(MAX_INSTRUCTIONS);
    let report = sup.report();
    let triage = FaultOutcome::classify(report, &result, reference);
    let mut o = outcome_of(result);
    o.triage = Some(triage);
    o.mttr = Some(report.mttr_cycles);
    o
}

fn run_one<E: Extension>(
    workload: &Workload,
    config: SystemConfig,
    ext: E,
    plan: &FaultPlan,
    lockstep: bool,
) -> TrialOutcome {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::new(config, ext);
    sys.load_program(&program);
    sys.arm_faults(plan.clone());
    if lockstep {
        sys.enable_lockstep();
    }
    outcome_of(sys.try_run(MAX_INSTRUCTIONS))
}

/// One campaign-1 trial under the rollback-and-replay supervisor,
/// triaged against a clean reference run of the same workload.
fn run_one_supervised(
    workload: &Workload,
    config: SystemConfig,
    plan: &FaultPlan,
    lockstep: bool,
    policy: RecoveryPolicy,
    reference: &RunResult,
) -> TrialOutcome {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::new(config, Sec::new());
    sys.load_program(&program);
    sys.arm_faults(plan.clone());
    if lockstep {
        sys.enable_lockstep();
    }
    let mut sup = Supervisor::new(sys, policy);
    let result = sup.run(MAX_INSTRUCTIONS);
    let report = sup.report();
    let triage = FaultOutcome::classify(report, &result, reference);
    let mut o = outcome_of(result);
    o.triage = Some(triage);
    o.mttr = Some(report.mttr_cycles);
    o
}

fn run_kind(
    workload: &Workload,
    ext: ExtKind,
    config: SystemConfig,
    plan: &FaultPlan,
    lockstep: bool,
) -> TrialOutcome {
    match ext {
        ExtKind::Umc => run_one(workload, config, Umc::new(), plan, lockstep),
        ExtKind::Dift => run_one(workload, config, Dift::new(), plan, lockstep),
        ExtKind::Bc => run_one(workload, config, Bc::new(), plan, lockstep),
        ExtKind::Sec => run_one(workload, config, Sec::new(), plan, lockstep),
    }
}

/// Executes one trial. Pure: equal specs produce bit-equal outcomes,
/// on any thread, in any process.
///
/// `reference` is the clean run supervised triage compares against;
/// pass a cached one to amortize it across a campaign (it is computed
/// on the spot when `None`). Non-`recover` trials ignore it.
pub fn run_trial(spec: &TrialSpec, reference: Option<&RunResult>) -> TrialOutcome {
    match &spec.kind {
        TrialKind::AluFlip { trial_seed, site, bit } => {
            let plan = FaultPlan::new(*trial_seed).inject(
                FaultTarget::CommitResult,
                FaultSchedule::AtCommit(*site),
                FaultModel::Mask(1 << bit),
            );
            if spec.recover {
                let computed;
                let r = match reference {
                    Some(r) => r,
                    None => {
                        computed = reference_run(&spec.workload);
                        &computed
                    }
                };
                run_one_supervised(
                    &spec.workload,
                    paper_config(ExtKind::Sec),
                    &plan,
                    spec.lockstep,
                    spec.policy,
                    r,
                )
            } else {
                run_kind(
                    &spec.workload,
                    ExtKind::Sec,
                    paper_config(ExtKind::Sec),
                    &plan,
                    spec.lockstep,
                )
            }
        }
        TrialKind::RateSweep { ext, target, rate, plan_seed } => {
            let mut plan = FaultPlan::new(*plan_seed);
            if *rate > 0 {
                plan = plan.inject(
                    *target,
                    FaultSchedule::Bernoulli { per_million: *rate as u32 },
                    FaultModel::BitFlip { bits: 1 },
                );
            }
            run_kind(&spec.workload, *ext, paper_config(*ext), &plan, spec.lockstep)
        }
        TrialKind::SwapWindow { trial_seed, at_commit, exhaust } => {
            // `exhaust` corrupts *every* transfer attempt (the retry
            // budget cannot win); otherwise exactly the first attempt
            // is struck and one retry must absorb it. Bitstream
            // schedules are evaluated against the transfer-attempt
            // index, so `AtCommit(1)` means "first transfer attempt".
            let schedule =
                if *exhaust { FaultSchedule::EveryCommits(1) } else { FaultSchedule::AtCommit(1) };
            let plan = FaultPlan::new(*trial_seed).inject(
                FaultTarget::Bitstream,
                schedule,
                FaultModel::BitFlip { bits: 1 },
            );
            if spec.recover {
                let computed;
                let r = match reference {
                    Some(r) => r,
                    None => {
                        computed = swap_reference_run(&spec.workload);
                        &computed
                    }
                };
                run_swap_supervised(
                    &spec.workload,
                    *at_commit,
                    &plan,
                    spec.lockstep,
                    spec.policy,
                    r,
                )
            } else {
                run_swap_plain(&spec.workload, *at_commit, &plan, spec.lockstep)
            }
        }
    }
}

/// The JSONL trial record: the one shape `faultsweep` progress logs and
/// `flexserve` journals both use.
pub fn outcome_record(label: &str, o: &TrialOutcome) -> serde::Value {
    let mut obj = serde::Value::object()
        .field("label", &label)
        .field("trapped", &o.trapped)
        .field("diverged", &o.diverged)
        .field("deadlocked", &o.deadlocked)
        .field("over_budget", &o.over_budget)
        .field("faults_injected", &o.faults_injected)
        .field("trap_skid", &o.trap_skid);
    if let Some(t) = o.triage {
        obj = obj.field("triage", &t.label()).field("mttr", &o.mttr.unwrap_or(0));
    }
    obj.build()
}

fn decode_record_bool(v: &serde::Value, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(serde::Value::Bool(b)) => Ok(*b),
        _ => Err(format!("trial record missing boolean `{key}`")),
    }
}

/// Decodes one [`outcome_record`] back into a [`TrialOutcome`].
pub fn decode_outcome(v: &serde::Value) -> Result<TrialOutcome, String> {
    Ok(TrialOutcome {
        trapped: decode_record_bool(v, "trapped")?,
        diverged: decode_record_bool(v, "diverged")?,
        deadlocked: decode_record_bool(v, "deadlocked")?,
        over_budget: decode_record_bool(v, "over_budget")?,
        faults_injected: v
            .get("faults_injected")
            .and_then(serde::Value::as_u64)
            .ok_or("trial record missing `faults_injected`")?,
        trap_skid: v.get("trap_skid").and_then(serde::Value::as_u64),
        // Absent in records written without recovery; consumers keep
        // the two modes apart via their campaign headers.
        triage: v.get("triage").and_then(serde::Value::as_str).and_then(FaultOutcome::from_label),
        mttr: v.get("mttr").and_then(serde::Value::as_u64),
    })
}

/// A JSONL log read back with crash tolerance.
#[derive(Clone, Debug, Default)]
pub struct TolerantLog {
    /// Every successfully parsed record, in file order.
    pub records: Vec<serde::Value>,
    /// The dropped partial tail line (truncated mid-append by a crash),
    /// when there was one — callers should log it as a warning.
    pub dropped_partial: Option<String>,
    /// Byte length of the file up to and including the last good
    /// record's newline — the truncation point that removes the partial
    /// tail without touching any good record.
    pub good_len: usize,
    /// Whether the good prefix ends with a newline (false only when the
    /// last good record itself lacked one).
    pub good_ends_with_newline: bool,
}

impl TolerantLog {
    /// Physically repairs the log file the parse came from: truncates
    /// away the crash-partial tail and guarantees the file ends with a
    /// newline, so subsequent appends start on a fresh line instead of
    /// concatenating onto the debris.
    pub fn repair_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(self.good_len as u64)?;
        drop(f);
        if self.good_len > 0 && !self.good_ends_with_newline {
            let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
            std::io::Write::write_all(&mut f, b"\n")?;
        }
        Ok(())
    }
}

/// Parses a JSONL log, tolerating exactly one failure mode: a
/// truncated or corrupt **final** line, the signature of a crash (or
/// `kill -9`) mid-append. That tail is dropped and reported in
/// [`TolerantLog::dropped_partial`]; corruption anywhere *before* the
/// final line is a real integrity problem and stays a hard error.
pub fn parse_jsonl_tolerant(text: &str) -> Result<TolerantLog, String> {
    let mut log = TolerantLog::default();
    let mut pos = 0usize;
    let mut lineno = 0usize;
    while pos < text.len() {
        let end = match text[pos..].find('\n') {
            Some(i) => pos + i + 1,
            None => text.len(),
        };
        lineno += 1;
        let line = text[pos..end].trim_end_matches('\n');
        if !line.trim().is_empty() {
            match serde::from_str(line) {
                Ok(v) => {
                    log.records.push(v);
                    log.good_len = end;
                    log.good_ends_with_newline = text.as_bytes()[end - 1] == b'\n';
                }
                Err(e) => {
                    let tail_only = text[end..].lines().all(|l| l.trim().is_empty());
                    if !tail_only {
                        return Err(format!("line {lineno}: unparseable record: {e}"));
                    }
                    let mut snippet: String = line.chars().take(60).collect();
                    if snippet.len() < line.len() {
                        snippet.push('…');
                    }
                    log.dropped_partial = Some(snippet);
                    return Ok(log);
                }
            }
        }
        pos = end;
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(trials: usize) -> CampaignSpec {
        CampaignSpec { trials, ..CampaignSpec::default() }
    }

    #[test]
    fn campaign1_labels_and_seeds_are_the_faultsweep_derivation() {
        let trials = campaign1_trials(&spec(3), &[Workload::bitcount()]);
        assert_eq!(trials.len(), 3);
        assert_eq!(trials[0].label, "bitcount trial 0");
        assert_eq!(trials[2].label, "bitcount trial 2");
        let TrialKind::AluFlip { trial_seed, site, bit } = trials[1].kind else {
            panic!("campaign-1 trials are ALU flips");
        };
        assert_eq!(trial_seed, 0xf1ec ^ 2u64.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        assert!(bit < 32);
        assert!(site > 0, "commit indices are 1-based");
    }

    #[test]
    fn sweep_order_is_workload_ext_target_rate() {
        let trials = sweep_trials(&spec(1), &[Workload::bitcount()]);
        assert_eq!(trials.len(), ExtKind::ALL.len() * SWEEP_TARGETS.len() * SWEEP_RATES.len());
        assert_eq!(trials[0].label, "bitcount UMC result rate 0");
        assert_eq!(trials[3].label, "bitcount UMC result rate 1000");
        assert_eq!(trials[4].label, "bitcount UMC register rate 0");
        assert_eq!(trials[16].label, "bitcount DIFT result rate 0");
        assert!(!trials[0].recover, "sweep trials never run supervised");
    }

    #[test]
    fn reconfig_trials_alternate_strike_and_exhaustion() {
        let trials = reconfig_trials(&spec(4), &[Workload::bitcount()]);
        assert_eq!(trials.len(), 4);
        assert_eq!(trials[0].label, "bitcount swap 0");
        let TrialKind::SwapWindow { at_commit, exhaust, .. } = trials[0].kind else {
            panic!("reconfig trials are swap windows");
        };
        assert!(at_commit >= 1, "boundaries are 1-based");
        assert!(!exhaust, "even trials are single retry-absorbed strikes");
        let TrialKind::SwapWindow { exhaust, .. } = trials[1].kind else {
            panic!("reconfig trials are swap windows");
        };
        assert!(exhaust, "odd trials exhaust the retry budget");
        // Identity is deterministic: regeneration yields the same runs.
        let again = reconfig_trials(&spec(4), &[Workload::bitcount()]);
        assert_eq!(trials[2].kind, again[2].kind);
        assert_eq!(trials[3].label, again[3].label);
    }

    #[test]
    fn outcome_record_roundtrips() {
        let o = TrialOutcome {
            trapped: true,
            faults_injected: 1,
            trap_skid: Some(7),
            triage: Some(FaultOutcome::DetectedRecovered),
            mttr: Some(1234),
            ..TrialOutcome::default()
        };
        let v = outcome_record("sha trial 9", &o);
        assert_eq!(v.get("label").and_then(serde::Value::as_str), Some("sha trial 9"));
        assert_eq!(decode_outcome(&v).expect("decodes"), o);

        let plain = TrialOutcome { deadlocked: true, ..TrialOutcome::default() };
        let v = outcome_record("x", &plain);
        assert!(v.get("triage").is_none(), "triage fields only appear on supervised trials");
        assert_eq!(decode_outcome(&v).expect("decodes"), plain);
    }

    #[test]
    fn tolerant_parse_accepts_clean_logs() {
        let text = "{\"a\": 1}\n{\"b\": 2}\n";
        let log = parse_jsonl_tolerant(text).expect("clean log parses");
        assert_eq!(log.records.len(), 2);
        assert!(log.dropped_partial.is_none());
        assert_eq!(log.good_len, text.len());
    }

    #[test]
    fn tolerant_parse_drops_a_truncated_tail() {
        let good = "{\"a\": 1}\n{\"b\": 2}\n";
        let text = format!("{good}{{\"c\": 3, \"tr");
        let log = parse_jsonl_tolerant(&text).expect("truncated tail is tolerated");
        assert_eq!(log.records.len(), 2);
        let dropped = log.dropped_partial.expect("partial tail reported");
        assert!(dropped.contains("\"c\""), "snippet names the dropped line: {dropped}");
        assert_eq!(log.good_len, good.len(), "truncation point preserves every good record");
    }

    #[test]
    fn tolerant_parse_rejects_mid_file_corruption() {
        let text = "{\"a\": 1}\nnot json at all\n{\"b\": 2}\n";
        let err = parse_jsonl_tolerant(text).expect_err("mid-file corruption is a hard error");
        assert!(err.contains("line 2"), "error names the line: {err}");
    }

    #[test]
    fn tolerant_parse_accepts_a_complete_final_line_without_newline() {
        let text = "{\"a\": 1}\n{\"b\": 2}";
        let log = parse_jsonl_tolerant(text).expect("parses");
        assert_eq!(log.records.len(), 2);
        assert!(log.dropped_partial.is_none());
        assert_eq!(log.good_len, text.len());
    }
}
