//! `flexserve` — the fault-tolerant sharded campaign job server.
//!
//! Submits fault-campaign jobs (sweep spec + workload set + recovery
//! policy) to a bounded priority queue and drains them across a
//! supervised work-stealing worker pool, journaling every finished
//! trial crash-safely so a `kill -9` mid-campaign resumes exactly
//! (`--resume`) with zero lost and zero duplicated trials.
//!
//! ```text
//! flexserve run   [job flags]... [server flags]...
//! flexserve bench [--trials N] [--json FILE]
//! ```
//!
//! Job flags (define one inline job; repeat `--spec FILE` for more):
//!
//! * `--spec FILE` — JSON job spec (repeatable; fields: name, seed,
//!   trials, workloads, lockstep, recover, sweep, priority, policy)
//! * `--job NAME` `--seed N` `--trials N` `--workloads a,b`
//!   `--lockstep` `--recover` `--sweep` `--priority N`
//!
//! Server flags:
//!
//! * `--journal-dir DIR` — journal directory (default
//!   `flexserve-journals`); each campaign gets `<hash>.jsonl` plus a
//!   `<hash>.trials.jsonl` merged log on completion
//! * `--workers N` — pool width (default: one per core)
//! * `--resume` — reuse completed trials from existing journals
//! * `--max-depth N` — queue admission bound (default 16)
//! * `--sync-every N` — journal fsync cadence in records (default 8)
//! * `--stop-after N` — stop claiming trials after N records (soft
//!   deterministic interruption; `kill -9` is the hard version)
//! * `--max-attempts N` / `--backoff-base-ms N` — supervision budget
//! * `--chaos-panic N` — deterministically panic the first attempt of
//!   ~1/N trials (supervision demo); `--chaos-all-attempts` escalates
//!   the selected trials to full quarantine
//! * `--trace FILE` — write a Chrome trace of worker/trial spans
//! * `--status FILE` — write a live `status.json` heartbeat
//!   (atomically replaced after every trial: queue depth, busy
//!   workers, trial counters, journal write/fsync latency histograms,
//!   trials/sec, monotone `seq`)
//! * `--progress` — per-trial progress lines with rate and ETA on
//!   stderr (stdout stays byte-deterministic)
//!
//! Exit codes: 0 all jobs completed; 1 quarantined trials or failed
//! jobs; 2 usage error; 3 interrupted (resume to finish).

use std::path::PathBuf;

use flexcore_serve::{JobSpec, Server, ServerConfig, WorkerPolicy};

fn arg_value(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1).and_then(|v| {
        v.strip_prefix("0x").map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
    })
}

fn arg_strings(flag: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn arg_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn usage() -> ! {
    eprintln!(
        "usage: flexserve run [--spec FILE]... [--job NAME --seed N --trials N \
         --workloads a,b --lockstep --recover --sweep --priority N] [--journal-dir DIR] \
         [--workers N] [--resume] [--max-depth N] [--sync-every N] [--stop-after N] \
         [--max-attempts N] [--backoff-base-ms N] [--chaos-panic N] [--chaos-all-attempts] \
         [--trace FILE] [--status FILE] [--progress]\n       flexserve bench [--trials N] \
         [--workloads a,b] [--json FILE]"
    );
    std::process::exit(2);
}

/// The inline job defined by `--job`/`--seed`/… flags, or the default
/// job when no `--spec` files were given either.
fn inline_job() -> Option<JobSpec> {
    let d = JobSpec::default();
    let inline_flags_used = arg_value("--seed").is_some()
        || arg_value("--trials").is_some()
        || !arg_strings("--job").is_empty()
        || !arg_strings("--workloads").is_empty()
        || arg_flag("--lockstep")
        || arg_flag("--recover")
        || arg_flag("--sweep")
        || arg_value("--priority").is_some();
    if !inline_flags_used && !arg_strings("--spec").is_empty() {
        return None;
    }
    Some(JobSpec {
        name: arg_strings("--job").pop().unwrap_or(d.name),
        seed: arg_value("--seed").unwrap_or(d.seed),
        trials: arg_value("--trials").unwrap_or(d.trials as u64) as usize,
        workloads: match arg_strings("--workloads").pop() {
            Some(list) => list.split(',').map(str::to_string).collect(),
            None => d.workloads,
        },
        lockstep: arg_flag("--lockstep"),
        recover: arg_flag("--recover"),
        sweep: arg_flag("--sweep"),
        priority: arg_value("--priority").unwrap_or(u64::from(d.priority)) as u8,
        policy: d.policy,
    })
}

fn worker_policy() -> WorkerPolicy {
    let d = WorkerPolicy::default();
    WorkerPolicy {
        workers: arg_value("--workers").unwrap_or(0) as usize,
        max_attempts: arg_value("--max-attempts").unwrap_or(u64::from(d.max_attempts)) as u32,
        backoff_base_ms: arg_value("--backoff-base-ms").unwrap_or(d.backoff_base_ms),
        backoff_cap_ms: d.backoff_cap_ms,
        chaos_panic_every: arg_value("--chaos-panic"),
        chaos_all_attempts: arg_flag("--chaos-all-attempts"),
    }
}

fn server_config() -> ServerConfig {
    let d = ServerConfig::default();
    ServerConfig {
        journal_dir: PathBuf::from(
            arg_strings("--journal-dir").pop().unwrap_or_else(|| "flexserve-journals".into()),
        ),
        worker_policy: worker_policy(),
        max_depth: arg_value("--max-depth").unwrap_or(d.max_depth as u64) as usize,
        sync_every: arg_value("--sync-every").unwrap_or(d.sync_every as u64) as usize,
        resume: arg_flag("--resume"),
        stop_after: arg_value("--stop-after"),
        trace_path: arg_strings("--trace").pop().map(PathBuf::from),
        status_path: arg_strings("--status").pop().map(PathBuf::from),
        progress: arg_flag("--progress"),
    }
}

fn cmd_run() -> i32 {
    let mut jobs: Vec<JobSpec> = Vec::new();
    for path in arg_strings("--spec") {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("flexserve: {path}: {e}");
                return 2;
            }
        };
        match JobSpec::from_json(&text) {
            Ok(spec) => jobs.push(spec),
            Err(e) => {
                eprintln!("flexserve: {path}: {e}");
                return 2;
            }
        }
    }
    if let Some(spec) = inline_job() {
        jobs.push(spec);
    }
    if jobs.is_empty() {
        usage();
    }

    let config = server_config();
    // Chaos panics are supervised by design; their default-hook
    // backtraces would drown the report.
    if config.worker_policy.chaos_panic_every.is_some() {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let server = Server::new(config);
    for spec in jobs {
        let name = spec.name.clone();
        match server.submit(spec) {
            Ok(id) => println!("flexserve: admitted `{name}` as campaign {id}"),
            Err(e) => println!("flexserve: refused `{name}`: {e}"),
        }
    }
    println!(
        "flexserve: draining {} queued job(s) on {} worker(s)",
        server.queue().depth(),
        server.config().worker_policy.pool_width()
    );

    let report = match server.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flexserve: {e}");
            return 2;
        }
    };
    let mut exit = 0;
    for job in &report.jobs {
        let s = &job.stats;
        println!(
            "flexserve: campaign {} `{}` {}: {} trials (executed {}, reused {}, retried {}, \
             quarantined {}) in {:.2}s",
            job.id,
            job.name,
            job.state,
            job.trials,
            s.executed,
            s.reused,
            s.retried,
            s.quarantined,
            s.elapsed_us as f64 / 1e6,
        );
        println!("flexserve:   journal: {}", job.journal.display());
        if let Some(merged) = &job.merged_log {
            println!("flexserve:   merged:  {}", merged.display());
        }
        if s.quarantined > 0 || matches!(job.state, flexcore_serve::JobState::Failed(_)) {
            exit = 1;
        }
    }
    let a = &report.admission;
    println!(
        "flexserve: admission: admitted {}, rejected {}, duplicates {}, shed {}",
        a.admitted, a.rejected, a.duplicates, a.shed
    );
    for shed in &report.shed {
        println!("flexserve: {shed}");
    }
    if report.interrupted {
        println!("flexserve: interrupted by --stop-after; rerun with --resume to finish");
        return 3;
    }
    exit
}

/// `flexserve bench` — trials/sec at 1, N/2, and N workers, written as
/// `BENCH_flexserve.json` for the CI benchmark trail.
fn cmd_bench() -> i32 {
    let trials = arg_value("--trials").unwrap_or(16) as usize;
    let out = arg_strings("--json").pop().unwrap_or_else(|| "BENCH_flexserve.json".into());
    let workloads = match arg_strings("--workloads").pop() {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => JobSpec::default().workloads,
    };
    let cores = std::thread::available_parallelism().map_or(4, usize::from);
    let mut widths = vec![1, (cores / 2).max(1), cores];
    widths.dedup();
    println!("flexserve bench: {trials} trials/workload at pool widths {widths:?}");

    let spec = JobSpec { trials, workloads, ..JobSpec::default() };
    let mut points = Vec::new();
    for width in widths {
        let dir =
            std::env::temp_dir().join(format!("flexserve-bench-{}-{width}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::new(ServerConfig {
            journal_dir: dir.clone(),
            worker_policy: WorkerPolicy { workers: width, ..WorkerPolicy::default() },
            ..ServerConfig::default()
        });
        if let Err(e) = server.submit(spec.clone()) {
            eprintln!("flexserve bench: {e}");
            return 2;
        }
        let report = match server.run() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("flexserve bench: {e}");
                return 2;
            }
        };
        let stats = report.jobs[0].stats;
        let secs = stats.elapsed_us as f64 / 1e6;
        let rate = stats.executed as f64 / secs.max(1e-9);
        println!(
            "  {width:>2} worker(s): {} trials in {secs:.2}s = {rate:.1} trials/s",
            stats.executed
        );
        points.push(
            serde::Value::object()
                .field("workers", &(width as u64))
                .field("trials", &stats.executed)
                .field("elapsed_us", &stats.elapsed_us)
                .field("trials_per_sec", &rate)
                .build(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let doc = serde::Value::object()
        .field("bench", &"flexserve")
        .field("trials_per_workload", &(trials as u64))
        .raw("points", serde::Value::Array(points))
        .build();
    if let Err(e) = std::fs::write(&out, serde::to_string(&doc) + "\n") {
        eprintln!("flexserve bench: {out}: {e}");
        return 2;
    }
    println!("flexserve bench: wrote {out}");
    0
}

fn main() {
    let mode = std::env::args().nth(1);
    let code = match mode.as_deref() {
        Some("run") => cmd_run(),
        Some("bench") => cmd_bench(),
        _ => usage(),
    };
    std::process::exit(code);
}
