/root/repo/target/debug/deps/flexcore_isa-9bee0ab9f9673c84.d: crates/isa/src/lib.rs crates/isa/src/class.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_isa-9bee0ab9f9673c84.rmeta: crates/isa/src/lib.rs crates/isa/src/class.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/class.rs:
crates/isa/src/cond.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/opcode.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
