//! Regenerates the paper's **Table III**: area, power, and maximum
//! frequency of the baseline Leon3, the four extensions as full ASICs,
//! the dedicated FlexCore modules, and the four extensions on the Flex
//! fabric — all *derived* from the extension netlists through the cost
//! models in `flexcore-fabric`, with the paper's published numbers
//! printed alongside.

use flexcore::ext::{Bc, Dift, Extension, Sec, Umc};
use flexcore_bench::paper;
use flexcore_fabric::{calib, AsicCost, FpgaCost, MacroBlock, MacroCost};

/// The 4-KB meta-data cache as an SRAM macro: 32 Kbit of data plus
/// 128 lines x 2 ways x (22-bit tag + valid + dirty) = 3 Kbit of tags.
fn meta_cache_macro() -> MacroBlock {
    MacroBlock::Ram { words: 1120, width: 32 } // 35,840 bits
}

/// Entry width of the *dedicated* (per-extension ASIC) forward FIFO:
/// unlike the general 293-bit FlexCore packet, a custom integration
/// carries only the fields its extension consumes.
fn asic_fifo_width(name: &str) -> Option<u32> {
    match name {
        // ADDR(32) + opcode(5) + cpop operands(64) + control(4)
        "UMC" => Some(105),
        // + decoded register numbers (3 x 9)
        "DIFT" => Some(132),
        // + byte-lane / store-color controls
        "BC" => Some(140),
        // SEC checks in lock-step at the core clock: no FIFO, no cache
        // ("the overheads are negligible because SEC does not require a
        // meta-data cache or a complex interface").
        "SEC" => None,
        _ => unreachable!(),
    }
}

fn needs_meta_cache(name: &str) -> bool {
    name != "SEC"
}

struct Row {
    name: String,
    fmax: f64,
    area: f64,
    power: f64,
}

fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

fn print_row(r: &Row, p: Option<&paper::AreaPowerRow>, base_area: f64, base_power: f64) {
    let area_ovh = r.area / base_area - 1.0;
    let pow_ovh = r.power / base_power - 1.0;
    print!(
        "{:<34}{:>6.0} {:>10.0} {:>8} {:>7.0} {:>8}",
        r.name,
        r.fmax,
        r.area,
        pct(area_ovh),
        r.power,
        pct(pow_ovh)
    );
    if let Some(p) = p {
        print!(
            "   | paper: {:.0} MHz, {:.0} um2 ({}), {:.0} mW ({})",
            p.fmax_mhz,
            p.area_um2,
            p.area_overhead.map_or("-".into(), pct),
            p.power_mw,
            p.power_overhead.map_or("-".into(), pct),
        );
    }
    println!();
}

fn main() {
    let base_area = calib::LEON3_AREA_UM2;
    let base_power = calib::LEON3_POWER_MW;
    let base_freq = calib::LEON3_FMAX_MHZ;

    println!("Table III: area, power, and frequency (measured vs paper)");
    println!("{}", "=".repeat(132));
    println!(
        "{:<34}{:>6} {:>10} {:>8} {:>7} {:>8}",
        "Configuration", "MHz", "um2", "d-area", "mW", "d-power"
    );
    println!("{}", "-".repeat(132));

    // Baseline: the calibration anchor (taken from the paper — it is
    // the reference everything else is measured against).
    print_row(
        &Row {
            name: "Baseline: unmodified Leon3".into(),
            fmax: base_freq,
            area: base_area,
            power: base_power,
        },
        Some(&paper::BASELINE),
        base_area,
        base_power,
    );

    let exts: [Box<dyn Extension>; 4] =
        [Box::new(Umc::new()), Box::new(Dift::new()), Box::new(Bc::new()), Box::new(Sec::new())];

    // --- Full-ASIC integrations -------------------------------------
    println!("\nFull ASIC (extension as dedicated hardware at the core clock):");
    for (ext, p) in exts.iter().zip(&paper::ASIC_ROWS) {
        let netlist = ext.netlist();
        let logic = AsicCost::of(&netlist);
        let mut area = logic.area_um2();
        let mut bits: u64 = 0;
        if needs_meta_cache(ext.name()) {
            let m = meta_cache_macro();
            area += MacroCost::block_area_um2(&m);
            bits += m.bits();
        }
        if let Some(width) = asic_fifo_width(ext.name()) {
            let f = MacroBlock::Fifo { depth: 64, width };
            area += MacroCost::block_area_um2(&f);
            bits += f.bits();
        }
        // Register-file-style shadow tags for DIFT/BC.
        let fmax = logic.core_fmax_mhz();
        let power = logic.power_mw(fmax) + bits as f64 * calib::SRAM_UW_PER_BIT_MHZ * fmax / 1000.0;
        print_row(
            &Row {
                name: format!("Leon3 w/ {} (ASIC)", ext.name()),
                fmax,
                area: base_area + area,
                power: base_power + power,
            },
            Some(p),
            base_area,
            base_power,
        );
    }

    // --- Dedicated FlexCore modules ----------------------------------
    println!("\nFlexCore (dedicated modules + extension on the fabric):");
    {
        // The general interface netlist (packet register, CFGR + policy
        // mux, decision logic, CDC synchronizers) plus its storage
        // macros (293-bit FFIFO, BFIFO, shadow register file) and the
        // meta-data cache.
        let iface = flexcore::interface::interface_netlist();
        let logic = AsicCost::of(&iface);
        let meta = meta_cache_macro();
        let area = logic.total_area_um2() + MacroCost::block_area_um2(&meta);
        let bits = logic.macros().bits + meta.bits();
        let fmax = base_freq * (1.0 - calib::core_tap_penalty(logic.gate_equivalents()));
        let power = logic.power_mw(fmax) + bits as f64 * calib::SRAM_UW_PER_BIT_MHZ * fmax / 1000.0;
        print_row(
            &Row {
                name: "Leon3 w/ dedicated FlexCore mods".into(),
                fmax,
                area: base_area + area,
                power: base_power + power,
            },
            Some(&paper::FLEXCORE_COMMON),
            base_area,
            base_power,
        );
    }

    // --- Extensions on the fabric ------------------------------------
    for (ext, p) in exts.iter().zip(&paper::FABRIC_ROWS) {
        let netlist = ext.netlist();
        let cost = FpgaCost::of(&netlist);
        let fmax = cost.fmax_mhz();
        println!(
            "{:<34}{:>6.0} {:>10.0} {:>8} {:>7.1} {:>8}   | paper: {:.0} MHz, {:.0} um2 ({}), {:.0} mW ({}) [{:.0} LUTs]",
            format!("{} on Flex fabric ({} LUTs)", ext.name(), cost.luts()),
            fmax,
            cost.area_um2(),
            pct(cost.area_um2() / base_area),
            cost.power_mw(fmax),
            pct(cost.power_mw(fmax) / base_power),
            p.fmax_mhz,
            p.area_um2,
            pct(p.area_overhead.unwrap()),
            p.power_mw,
            pct(p.power_overhead.unwrap()),
            paper::fabric_luts(p),
        );
    }

    println!("{}", "-".repeat(132));
    println!(
        "Note: fabric-row overhead percentages are relative additions (area/power of the fabric\n\
         extension alone over the baseline), matching the paper's presentation."
    );
}
