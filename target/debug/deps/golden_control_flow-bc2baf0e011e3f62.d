/root/repo/target/debug/deps/golden_control_flow-bc2baf0e011e3f62.d: crates/pipeline/tests/golden_control_flow.rs

/root/repo/target/debug/deps/libgolden_control_flow-bc2baf0e011e3f62.rmeta: crates/pipeline/tests/golden_control_flow.rs

crates/pipeline/tests/golden_control_flow.rs:
