//! Vendored deterministic serialization subset.
//!
//! The workspace must build with no network and no registry cache (the
//! same constraint that produced the vendored `proptest` subset), so
//! this crate provides the small slice of `serde`'s surface the
//! observability layer needs: a [`Serialize`] trait mapping values into
//! a JSON [`Value`] model, byte-deterministic emitters ([`to_string`],
//! [`to_string_pretty`]), and a strict parser ([`from_str`]) used by
//! tests and CI gates to validate emitted output.
//!
//! Determinism notes: objects preserve insertion order (no hash-map
//! reordering), floats emit via Rust's shortest-roundtrip `Display`,
//! and non-finite floats serialize as `null` (JSON has no NaN/Inf).
//!
//! # Example
//!
//! ```
//! use serde::{from_str, to_string, Serialize, Value};
//!
//! struct Point { x: u32, y: u32 }
//! impl Serialize for Point {
//!     fn to_value(&self) -> Value {
//!         Value::object().field("x", &self.x).field("y", &self.y).build()
//!     }
//! }
//!
//! let json = to_string(&Point { x: 3, y: 4 });
//! assert_eq!(json, r#"{"x":3,"y":4}"#);
//! assert_eq!(from_str(&json).unwrap().get("y").and_then(Value::as_u64), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Starts an object builder.
    pub fn object() -> ObjectBuilder {
        ObjectBuilder(Vec::new())
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for other variants).
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Integer view: `U64` directly, or an exactly-representable `I64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Float view of any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// String view (`None` for other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Incremental object construction preserving field order.
#[derive(Default)]
pub struct ObjectBuilder(Vec<(String, Value)>);

impl ObjectBuilder {
    /// Appends a serialized field.
    #[must_use]
    pub fn field(mut self, name: &str, value: &dyn Serialize) -> ObjectBuilder {
        self.0.push((name.to_string(), value.to_value()));
        self
    }

    /// Appends a pre-built [`Value`] field.
    #[must_use]
    pub fn raw(mut self, name: &str, value: Value) -> ObjectBuilder {
        self.0.push((name.to_string(), value));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Object(self.0)
    }
}

/// Conversion into the JSON [`Value`] model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                // Shortest-roundtrip Display; force a fractional part so
                // the value parses back as a float.
                let s = format!("{n}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                emit(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes to compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, None, 0);
    out
}

/// Serializes to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    emit(&value.to_value(), &mut out, Some(2), 0);
    out
}

/// A parse failure: byte offset and description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() != Some(b'\\') {
                                    return self.err("lone high surrogate");
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => s.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                }
                b if b < 0x20 => return self.err("control character in string"),
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return self.err("invalid UTF-8"),
                    };
                    if start + len > self.bytes.len() {
                        return self.err("truncated UTF-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..start + len]) {
                        Ok(frag) => s.push_str(frag),
                        Err(_) => return self.err("invalid UTF-8"),
                    }
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return self.err("truncated \\u escape");
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return self.err("invalid hex digit"),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::F64(n)),
            Err(_) => self.err(format!("invalid number `{text}`")),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value(depth + 1)?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            _ => self.err("expected a JSON value"),
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing
/// else).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for case in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = from_str(case).unwrap();
            assert_eq!(to_string(&v), case, "round-trip of {case}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Value::object().field("z", &1u32).field("a", &2u32).build();
        assert_eq!(to_string(&v), r#"{"z":1,"a":2}"#);
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_parse_back() {
        let s = "line1\nline2\t\"quoted\" \\slash \u{1}";
        let json = to_string(&s);
        assert_eq!(from_str(&json).unwrap(), Value::Str(s.to_string()));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str(r#""\u0041""#).unwrap(), Value::Str("A".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(from_str(r#""\ud83d\ude00""#).unwrap(), Value::Str("\u{1f600}".into()));
        assert!(from_str(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn floats_always_reparse_as_floats() {
        let json = to_string(&2.0f64);
        assert_eq!(json, "2.0");
        assert!(matches!(from_str(&json).unwrap(), Value::F64(_)));
        assert_eq!(to_string(&f64::NAN), "null", "non-finite floats become null");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::object()
            .raw("xs", Value::Array(vec![Value::U64(1), Value::Null, Value::Bool(true)]))
            .raw("o", Value::object().field("s", &"x").build())
            .build();
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n  \"xs\": ["));
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "{\"a\" 1}", "\"\\q\""] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(from_str(&deep).is_err());
    }

    #[test]
    fn integer_widths() {
        assert_eq!(from_str("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(from_str("-9223372036854775808").unwrap(), Value::I64(i64::MIN));
        assert_eq!(to_string(&u64::MAX), "18446744073709551615");
    }

    #[test]
    fn option_and_collections_serialize() {
        assert_eq!(to_string(&Option::<u32>::None), "null");
        assert_eq!(to_string(&Some(3u32)), "3");
        assert_eq!(to_string(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_string(&[1u64; 2]), "[1,1]");
    }
}
