//! The core model: functional execution plus commit-driven timing.

use flexcore_asm::Program;
use flexcore_isa::{decode, IccFlags, InstrClass, Instruction, Opcode, Operand2, Reg};
use flexcore_mem::{BusMaster, CacheStats, MainMemory, StoreBuffer, SystemBus, TimingCache};
use flexcore_telemetry::{NullPhaseClock, Phase, PhaseClock};

use crate::alu::alu;
use crate::{CoreConfig, CoreStats, TracePacket, CONSOLE_ADDR};

/// Why execution stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExitReason {
    /// A taken `t<cond>` trap; carries the software trap number.
    /// Workloads use `ta 0` for success and `ta 1` for assertion
    /// failure.
    Halt(u32),
    /// An undecodable instruction word.
    IllegalInstruction {
        /// PC of the offending instruction.
        pc: u32,
        /// The word that failed to decode.
        word: u32,
    },
    /// A misaligned load or store.
    MisalignedAccess {
        /// PC of the offending instruction.
        pc: u32,
        /// The misaligned effective address.
        addr: u32,
    },
    /// An integer divide by zero.
    DivideByZero {
        /// PC of the offending instruction.
        pc: u32,
    },
    /// [`Core::run`] hit its instruction budget.
    InstructionLimit,
    /// An external monitor raised an exception (the FlexCore TRAP
    /// signal); carries the PC the monitor reported.
    MonitorTrap {
        /// PC of the instruction that failed the monitor's check.
        pc: u32,
    },
}

/// Outcome of a single [`Core::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepResult {
    /// An instruction committed; here is its trace packet.
    Committed(TracePacket),
    /// The delay-slot instruction was annulled (consumes a cycle,
    /// commits nothing, forwards nothing).
    Annulled,
    /// Execution stopped.
    Exited(ExitReason),
}

/// Complete checkpointable state of a [`Core`]: architectural state
/// (registers, condition codes, pc/npc window), microarchitectural
/// state (cache tags, store buffer, commit slot, cycle counter), and
/// accounting (statistics, console output, exit status).
///
/// Captured by [`Core::snapshot`] and reapplied by [`Core::restore`]
/// onto a core built with the same [`CoreConfig`].
#[derive(Clone, PartialEq, Debug)]
pub struct CoreSnapshot {
    /// Architectural register file.
    pub regs: [u32; 32],
    /// Condition codes, as [`IccFlags::to_bits`] (NZVC).
    pub icc: u8,
    /// Current program counter.
    pub pc: u32,
    /// Next program counter (delay-slot window).
    pub npc: u32,
    /// Whether the next fetch is an annulled delay slot.
    pub annul_next: bool,
    /// Core-clock cycle count.
    pub cycle: u64,
    /// I-cache tag/LRU state.
    pub icache: flexcore_mem::CacheSnapshot,
    /// D-cache tag/LRU state.
    pub dcache: flexcore_mem::CacheSnapshot,
    /// Pending store completions, oldest first.
    pub storebuf_pending: Vec<u64>,
    /// Store-buffer stall accounting.
    pub storebuf_stalls: u64,
    /// Execution statistics.
    pub stats: CoreStats,
    /// Console bytes produced so far.
    pub console: Vec<u8>,
    /// Exit status, if execution has stopped.
    pub exited: Option<ExitReason>,
    /// Commit-group slot (for `commit_width > 1`).
    pub commit_slot: u32,
}

/// The Leon3-like in-order core.
///
/// See the [crate docs](crate) for the modeling approach and an
/// end-to-end example.
#[derive(Clone, Debug)]
pub struct Core {
    config: CoreConfig,
    regs: [u32; 32],
    icc: IccFlags,
    pc: u32,
    npc: u32,
    annul_next: bool,
    cycle: u64,
    icache: TimingCache,
    dcache: TimingCache,
    storebuf: StoreBuffer,
    stats: CoreStats,
    console: Vec<u8>,
    exited: Option<ExitReason>,
    /// Instructions committed since the last base-cycle charge (for
    /// `commit_width > 1`).
    commit_slot: u32,
}

impl Core {
    /// Initial stack pointer after [`Core::load_program`] (grows down).
    pub const STACK_TOP: u32 = 0x00ff_fff0;

    /// Creates a core in reset state (PC 0, registers zero).
    pub fn new(config: CoreConfig) -> Core {
        Core {
            config,
            regs: [0; 32],
            icc: IccFlags::default(),
            pc: 0,
            npc: 4,
            annul_next: false,
            cycle: 0,
            icache: TimingCache::new(config.icache),
            dcache: TimingCache::new(config.dcache),
            storebuf: StoreBuffer::new(config.store_buffer_depth),
            stats: CoreStats::default(),
            console: Vec::new(),
            exited: None,
            commit_slot: 0,
        }
    }

    /// Loads a program image into memory, points the PC at its entry,
    /// and initializes `%sp`/`%fp` to [`Core::STACK_TOP`].
    pub fn load_program(&mut self, program: &Program, mem: &mut MainMemory) {
        mem.load(program.base(), program.image());
        self.pc = program.entry();
        self.npc = program.entry().wrapping_add(4);
        self.regs[Reg::SP.index()] = Core::STACK_TOP;
        self.regs[Reg::FP.index()] = Core::STACK_TOP;
    }

    /// Reads an architectural register (`%g0` reads as zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an architectural register (writes to `%g0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Current condition codes.
    pub fn icc(&self) -> IccFlags {
        self.icc
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Core-clock cycle count so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// I-cache statistics.
    pub fn icache_stats(&self) -> CacheStats {
        self.icache.stats()
    }

    /// D-cache statistics.
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.stats()
    }

    /// Bytes written to the console device at
    /// [`CONSOLE_ADDR`](crate::CONSOLE_ADDR).
    pub fn console(&self) -> &[u8] {
        &self.console
    }

    /// Stalls the commit stage until cycle `t` (used by the FlexCore
    /// interface when the forward FIFO is full). No-op if `t` is in the
    /// past.
    pub fn stall_until(&mut self, t: u64) {
        if t > self.cycle {
            self.stats.external_stall_cycles += t - self.cycle;
            self.cycle = t;
        }
    }

    /// Forces execution to stop with `reason` (the FlexCore TRAP path).
    pub fn halt(&mut self, reason: ExitReason) {
        self.exited.get_or_insert(reason);
    }

    /// Why execution stopped, if it has.
    pub fn exit_reason(&self) -> Option<ExitReason> {
        self.exited
    }

    /// The cycle at which all pending write-through stores have
    /// drained.
    pub fn quiesced_at(&self) -> u64 {
        self.storebuf.drained_at(self.cycle)
    }

    /// Next program counter (the second half of the SPARC delay-slot
    /// window). Lockstep verification uses this to seed a reference
    /// model mid-run.
    pub fn npc(&self) -> u32 {
        self.npc
    }

    /// Whether the next fetch will be annulled (the slot of a taken
    /// `ba,a` or an untaken annulling branch).
    pub fn annul_pending(&self) -> bool {
        self.annul_next
    }

    /// Captures the complete core state for checkpointing.
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            regs: self.regs,
            icc: self.icc.to_bits(),
            pc: self.pc,
            npc: self.npc,
            annul_next: self.annul_next,
            cycle: self.cycle,
            icache: self.icache.snapshot(),
            dcache: self.dcache.snapshot(),
            storebuf_pending: self.storebuf.pending_completions(),
            storebuf_stalls: self.storebuf.stall_cycles(),
            stats: self.stats,
            console: self.console.clone(),
            exited: self.exited,
            commit_slot: self.commit_slot,
        }
    }

    /// Restores state captured by [`Core::snapshot`].
    ///
    /// The core must have been constructed with the same
    /// [`CoreConfig`] as the snapshotted one; the cache restore panics
    /// on a geometry mismatch.
    pub fn restore(&mut self, snap: &CoreSnapshot) {
        self.regs = snap.regs;
        self.icc = IccFlags::from_bits(snap.icc);
        self.pc = snap.pc;
        self.npc = snap.npc;
        self.annul_next = snap.annul_next;
        self.cycle = snap.cycle;
        self.icache.restore(&snap.icache);
        self.dcache.restore(&snap.dcache);
        self.storebuf.restore(&snap.storebuf_pending, snap.storebuf_stalls);
        self.stats = snap.stats;
        self.console = snap.console.clone();
        self.exited = snap.exited;
        self.commit_slot = snap.commit_slot;
    }

    fn operand2(&self, op2: Operand2) -> u32 {
        match op2 {
            Operand2::Reg(r) => self.reg(r),
            Operand2::Imm(i) => i as u32,
        }
    }

    fn exit(&mut self, reason: ExitReason) -> StepResult {
        self.exited = Some(reason);
        StepResult::Exited(reason)
    }

    /// Executes one instruction: fetch, decode, execute, charge timing,
    /// and produce the commit-stage trace packet.
    pub fn step(&mut self, mem: &mut MainMemory, bus: &mut SystemBus) -> StepResult {
        self.step_phased(mem, bus, &mut NullPhaseClock)
    }

    /// [`Core::step`] with host-time phase attribution: the fetch
    /// (icache/bus/annul) through decode window is charged to
    /// [`Phase::FetchDecode`] and functional execution plus commit
    /// timing to [`Phase::Execute`]. With the default
    /// [`NullPhaseClock`] (`ENABLED = false`) both spans fold away and
    /// this is exactly `step`. Terminal exits (illegal instruction,
    /// halt, misalignment) drop the in-flight span — they occur at
    /// most once per run, which is below the profiler's resolution
    /// anyway.
    pub fn step_phased<C: PhaseClock>(
        &mut self,
        mem: &mut MainMemory,
        bus: &mut SystemBus,
        clock: &mut C,
    ) -> StepResult {
        if let Some(reason) = self.exited {
            return StepResult::Exited(reason);
        }
        let fetch_span = clock.begin();
        let pc = self.pc;

        // Instruction fetch.
        let ifetch = self.icache.access(pc, false);
        if !ifetch.hit {
            let done = bus.transfer(BusMaster::Core, self.cycle, self.config.icache.line_words());
            self.cycle = done;
        }
        let word = mem.read_u32(pc);

        // Default control flow: slide the delay-slot window.
        let next_pc = self.npc;
        let mut next_npc = self.npc.wrapping_add(4);

        // An annulled delay slot consumes a fetch cycle but does not
        // decode, execute, or commit.
        if std::mem::take(&mut self.annul_next) {
            self.cycle += 1;
            self.stats.annulled += 1;
            self.pc = next_pc;
            self.npc = next_npc;
            clock.commit(Phase::FetchDecode, fetch_span);
            return StepResult::Annulled;
        }

        let inst = match decode(word) {
            Ok(i) => i,
            Err(_) => return self.exit(ExitReason::IllegalInstruction { pc, word }),
        };

        let (src1, src2) = inst.source_regs();
        let mut packet = TracePacket {
            pc,
            inst_word: word,
            inst,
            class: InstrClass::of(&inst),
            addr: 0,
            result: 0,
            srcv1: src1.map_or(0, |r| self.reg(r)),
            srcv2: 0,
            store_value: 0,
            cond: self.icc,
            branch_taken: false,
            src1,
            src2,
            dest: inst.dest_reg(),
            commit_cycle: 0,
        };
        clock.commit(Phase::FetchDecode, fetch_span);

        let exec_span = clock.begin();
        match inst {
            Instruction::Alu { op, rd, rs1, op2 } => {
                let a = self.reg(rs1);
                let b = self.operand2(op2);
                packet.srcv2 = b;
                let Some(out) = alu(op, a, b) else {
                    return self.exit(ExitReason::DivideByZero { pc });
                };
                self.set_reg(rd, out.value);
                if let Some(icc) = out.icc {
                    self.icc = icc;
                }
                packet.result = out.value;
                packet.cond = self.icc;
                match op {
                    Opcode::Umul | Opcode::Smul => self.cycle += u64::from(self.config.mul_latency),
                    Opcode::Udiv | Opcode::Sdiv => self.cycle += u64::from(self.config.div_latency),
                    _ => {}
                }
            }
            Instruction::Sethi { rd, imm22 } => {
                let value = imm22 << 10;
                self.set_reg(rd, value);
                packet.result = value;
            }
            Instruction::Branch { cond, annul, disp22 } => {
                let taken = cond.eval(self.icc);
                packet.branch_taken = taken;
                if taken {
                    next_npc = pc.wrapping_add((disp22 as u32) << 2);
                }
                // SPARC annul rule: the delay slot is annulled when the
                // annul bit is set and the branch is untaken — or, for
                // `ba,a`/`bn,a`, unconditionally.
                if annul && (cond.is_unconditional() || !taken) {
                    self.annul_next = true;
                }
            }
            Instruction::Call { disp30 } => {
                self.set_reg(Reg::O7, pc);
                packet.result = pc;
                packet.branch_taken = true;
                next_npc = pc.wrapping_add((disp30 as u32) << 2);
            }
            Instruction::Jmpl { rd, rs1, op2 } => {
                let target = self.reg(rs1).wrapping_add(self.operand2(op2));
                packet.srcv2 = self.operand2(op2);
                packet.addr = target;
                if !target.is_multiple_of(4) {
                    return self.exit(ExitReason::MisalignedAccess { pc, addr: target });
                }
                self.set_reg(rd, pc);
                packet.result = pc;
                packet.branch_taken = true;
                next_npc = target;
            }
            Instruction::Trap { cond, rs1, op2 } => {
                packet.srcv2 = self.operand2(op2);
                if cond.eval(self.icc) {
                    let tn = self.reg(rs1).wrapping_add(self.operand2(op2)) & 0x7f;
                    // Traps drain the store buffer before transferring
                    // control (the paper's EMPTY-signal discipline).
                    self.cycle = self.storebuf.drained_at(self.cycle);
                    return self.exit(ExitReason::Halt(tn));
                }
            }
            Instruction::Cpop { rs1, rs2, .. } => {
                // Co-processor ops are transparent to the core: the
                // FlexCore interface layer interprets them (and supplies
                // the BFIFO value for "read from co-processor").
                packet.srcv1 = self.reg(rs1);
                packet.srcv2 = self.reg(rs2);
            }
            Instruction::Mem { op, rd, rs1, op2 } => {
                let ea = self.reg(rs1).wrapping_add(self.operand2(op2));
                packet.addr = ea;
                packet.srcv2 = self.operand2(op2);
                let bytes = op.access_bytes().expect("memory opcode");
                if !ea.is_multiple_of(bytes) {
                    return self.exit(ExitReason::MisalignedAccess { pc, addr: ea });
                }
                if matches!(op, Opcode::Ldd | Opcode::Std) && rd.index() % 2 != 0 {
                    // Doubleword ops require an even register pair.
                    return self.exit(ExitReason::IllegalInstruction { pc, word });
                }
                if ea >= CONSOLE_ADDR {
                    // Memory-mapped console: uncached, no bus model
                    // (a real UART sits on a peripheral bus).
                    if op.is_store() {
                        self.console.push(self.reg(rd) as u8);
                        packet.store_value = self.reg(rd);
                    }
                } else if op == Opcode::Swap {
                    // Atomic swap: one read plus one write, locked on
                    // the bus.
                    let old = mem.read_u32(ea);
                    mem.write_u32(ea, self.reg(rd));
                    packet.store_value = self.reg(rd);
                    packet.result = old;
                    let lookup = self.dcache.access(ea, false);
                    if !lookup.hit {
                        let done = bus.transfer(
                            BusMaster::Core,
                            self.cycle,
                            self.config.dcache.line_words(),
                        );
                        self.cycle = done;
                    }
                    self.dcache.access(ea, true);
                    let done = bus.write(BusMaster::Core, self.cycle, 1);
                    // Atomicity: the core holds the bus; no store
                    // buffering.
                    self.cycle = done;
                    self.set_reg(rd, old);
                    self.cycle += u64::from(self.config.load_latency);
                } else if op == Opcode::Std {
                    // SPARC-V8 doubleword ops pair even/odd registers.
                    // A crafted (or fault-flipped) odd rd would address
                    // past %r31, so the low bit is ignored and rd is
                    // the even-aligned pair base.
                    let rd = Reg::new(rd.index() as u8 & !1).unwrap_or(rd);
                    let rd2 = Reg::new(rd.index() as u8 | 1).unwrap_or(rd);
                    let (v1, v2) = (self.reg(rd), self.reg(rd2));
                    mem.write_u32(ea, v1);
                    mem.write_u32(ea + 4, v2);
                    packet.store_value = v1;
                    packet.result = v1;
                    self.dcache.access(ea, true);
                    self.dcache.access(ea + 4, true);
                    let done = bus.write(BusMaster::Core, self.cycle, 2);
                    let proceed = self.storebuf.push(self.cycle, done);
                    self.stats.store_stall_cycles += proceed - self.cycle;
                    self.cycle = proceed;
                    // The second word occupies the memory stage an
                    // extra cycle.
                    self.cycle += 1;
                } else if op.is_store() {
                    let value = self.reg(rd);
                    packet.store_value = value;
                    packet.result = value;
                    match op {
                        Opcode::St => mem.write_u32(ea, value),
                        Opcode::Sth => mem.write_u16(ea, value as u16),
                        Opcode::Stb => mem.write_u8(ea, value as u8),
                        _ => unreachable!(),
                    }
                    // Write-through: tags updated on hit, no allocate;
                    // the word goes to memory via the store buffer.
                    self.dcache.access(ea, true);
                    let done = bus.write(BusMaster::Core, self.cycle, 1);
                    let proceed = self.storebuf.push(self.cycle, done);
                    self.stats.store_stall_cycles += proceed - self.cycle;
                    self.cycle = proceed;
                } else if op == Opcode::Ldd {
                    // Even-aligned pair base, as for `std` above.
                    let rd = Reg::new(rd.index() as u8 & !1).unwrap_or(rd);
                    let rd2 = Reg::new(rd.index() as u8 | 1).unwrap_or(rd);
                    let lookup = self.dcache.access(ea, false);
                    if !lookup.hit {
                        let done = bus.transfer(
                            BusMaster::Core,
                            self.cycle,
                            self.config.dcache.line_words(),
                        );
                        self.cycle = done;
                    }
                    self.dcache.access(ea + 4, false); // same line: 8-aligned
                    let v1 = mem.read_u32(ea);
                    let v2 = mem.read_u32(ea + 4);
                    self.set_reg(rd, v1);
                    self.set_reg(rd2, v2);
                    packet.result = v1;
                    // Two memory-stage beats plus the usual load use.
                    self.cycle += u64::from(self.config.load_latency) + 1;
                } else {
                    let lookup = self.dcache.access(ea, false);
                    if !lookup.hit {
                        let done = bus.transfer(
                            BusMaster::Core,
                            self.cycle,
                            self.config.dcache.line_words(),
                        );
                        self.cycle = done;
                    }
                    let value = match op {
                        Opcode::Ld => mem.read_u32(ea),
                        Opcode::Lduh => u32::from(mem.read_u16(ea)),
                        Opcode::Ldsh => mem.read_u16(ea) as i16 as i32 as u32,
                        Opcode::Ldub => u32::from(mem.read_u8(ea)),
                        Opcode::Ldsb => mem.read_u8(ea) as i8 as i32 as u32,
                        _ => unreachable!(),
                    };
                    self.set_reg(rd, value);
                    packet.result = value;
                    self.cycle += u64::from(self.config.load_latency);
                }
            }
        }

        // Taken control transfers pay the fetch-redirect bubble (and
        // break the commit group).
        if packet.branch_taken {
            self.cycle += u64::from(self.config.taken_branch_penalty);
            self.commit_slot = 0;
        }
        // Base cycle, shared by `commit_width` instructions.
        self.commit_slot += 1;
        if self.commit_slot >= self.config.commit_width {
            self.commit_slot = 0;
            self.cycle += 1;
        }
        self.stats.instret += 1;
        self.stats.per_class[packet.class.index()] += 1;
        packet.commit_cycle = self.cycle;

        self.pc = next_pc;
        self.npc = next_npc;
        clock.commit(Phase::Execute, exec_span);
        StepResult::Committed(packet)
    }

    /// Performs one extra data access on behalf of instrumentation
    /// code (used by the software-monitoring baselines): charges
    /// D-cache, bus, and store-buffer timing exactly like a real
    /// load/store plus its base cycle, without touching architectural
    /// state.
    pub fn instrumentation_access(
        &mut self,
        addr: u32,
        is_write: bool,
        _mem: &mut MainMemory,
        bus: &mut SystemBus,
    ) {
        if is_write {
            self.dcache.access(addr, true);
            let done = bus.write(BusMaster::Core, self.cycle, 1);
            let proceed = self.storebuf.push(self.cycle, done);
            self.cycle = proceed;
        } else {
            let lookup = self.dcache.access(addr, false);
            if !lookup.hit {
                let done =
                    bus.transfer(BusMaster::Core, self.cycle, self.config.dcache.line_words());
                self.cycle = done;
            }
            self.cycle += u64::from(self.config.load_latency);
        }
        self.cycle += 1;
    }

    /// Runs until the program exits or `max_instructions` commit.
    pub fn run(
        &mut self,
        mem: &mut MainMemory,
        bus: &mut SystemBus,
        max_instructions: u64,
    ) -> ExitReason {
        loop {
            if self.stats.instret >= max_instructions {
                self.exited = Some(ExitReason::InstructionLimit);
                return ExitReason::InstructionLimit;
            }
            if let StepResult::Exited(reason) = self.step(mem, bus) {
                return reason;
            }
        }
    }
}
