/root/repo/target/debug/deps/netlists-bb6116e5de79827e.d: crates/flexcore/tests/netlists.rs Cargo.toml

/root/repo/target/debug/deps/libnetlists-bb6116e5de79827e.rmeta: crates/flexcore/tests/netlists.rs Cargo.toml

crates/flexcore/tests/netlists.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
