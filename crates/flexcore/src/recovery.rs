//! Supervised rollback-and-replay recovery.
//!
//! The fault-injection campaign (`faultsweep`) established *detection*:
//! SEC catches ALU strikes, lockstep catches architectural divergence,
//! the watchdog catches hangs. This module closes the loop with
//! *recovery*: a [`Supervisor`] owns a [`System`], takes periodic
//! [`Snapshot`]s at commit boundaries, and when the run fails — monitor
//! trap, [`SimError::Divergence`], [`SimError::Deadlock`], cycle-budget
//! blowout, or unrecoverable bitstream corruption — walks a fixed
//! escalation ladder:
//!
//! 1. **Rollback and replay** — restore the last provably-clean
//!    checkpoint (or the initial state) and re-run with the fault plan
//!    disarmed. Replay is deterministic, so a transient strike that was
//!    rolled back cannot recur.
//! 2. **Replay after bitstream reload** — additionally re-map the
//!    extension's netlist and push a fresh bitstream through
//!    [`System::load_bitstream`], clearing any latent fabric
//!    configuration damage, then replay from the initial state.
//! 3. **Degraded mode** — give up on monitoring but not on the program:
//!    restore the initial state, bypass the extension
//!    ([`System::enter_degraded`]), and run to completion while counting
//!    unmonitored commits and suppressed checks.
//! 4. **Abort** — surface the original failure in a structured
//!    [`RecoveryReport`].
//!
//! A checkpoint is retained only when the injector has struck nothing
//! and no trap is pending ([`System::trap_pending`]), so rung 1 replays
//! from state that is provably on the fault-free timeline — which is
//! what makes the recovered [`RunResult`] bit-exact against an
//! uninterrupted fault-free run (the property the checkpoint subsystem
//! already guarantees, inherited here).
//!
//! [`FaultOutcome::classify`] turns a supervised run plus a clean
//! reference run into the standard fault-outcome taxonomy: **Masked**,
//! **Detected-Recovered**, **SDC** (silent data corruption), or **DUE**
//! (detected unrecoverable error).

use crate::ext::Extension;
use crate::obs::{NullSink, TraceSink};
use crate::stats::{ResilienceStats, RunResult};
use crate::{SimError, Snapshot, System};

/// Knobs of the [`Supervisor`]'s checkpoint cadence and escalation
/// ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Commit-boundary interval between checkpoint attempts (clamped to
    /// ≥ 1).
    pub checkpoint_every: u64,
    /// Rung-1 budget: rollback-and-replay attempts before escalating.
    pub max_replays: u32,
    /// Rung-2 budget: replay-after-bitstream-reload attempts before
    /// escalating.
    pub max_reload_replays: u32,
    /// Whether rung 3 (degraded mode) is permitted at all; when
    /// `false` the ladder goes straight from rung 2 to abort.
    pub allow_degraded: bool,
    /// Modeled cost of taking one checkpoint, in core-clock cycles.
    /// Snapshots are instantaneous in the simulation (they never
    /// perturb timing or the replayed state); this knob only prices
    /// them in [`RecoveryReport::checkpoint_overhead_cycles`].
    pub checkpoint_cost_cycles: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            checkpoint_every: 10_000,
            max_replays: 2,
            max_reload_replays: 1,
            allow_degraded: true,
            checkpoint_cost_cycles: 500,
        }
    }
}

/// One walk up the escalation ladder, as recorded in
/// [`RecoveryReport::attempts`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryAttempt {
    /// Ladder rung taken: 1 = replay, 2 = reload + replay, 3 =
    /// degraded mode.
    pub rung: u32,
    /// Core-clock cycle at which the error was detected.
    pub detect_cycle: u64,
    /// Core-clock cycle of the snapshot the system was rewound to.
    pub restored_cycle: u64,
    /// Human-readable description of the detected error.
    pub error: String,
}

/// What the [`Supervisor`] did, in counters — the recovery analogue of
/// [`RunResult`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Detected errors (monitor traps and [`SimError`]s), including
    /// recurrences after a recovery attempt.
    pub errors_detected: u64,
    /// Rung-1 rollback-and-replay attempts taken.
    pub replays: u32,
    /// Rung-2 reload-and-replay attempts taken.
    pub reload_replays: u32,
    /// Whether rung 3 was entered (monitoring bypassed).
    pub degraded_entered: bool,
    /// Whether the ladder was exhausted and the original failure
    /// surfaced unrecovered.
    pub aborted: bool,
    /// Mean-time-to-repair numerator: Σ (detect cycle − restored
    /// snapshot cycle) over all recovery attempts — the simulated work
    /// each recovery threw away and redid.
    pub mttr_cycles: u64,
    /// Checkpoints retained during supervised execution.
    pub checkpoints_taken: u64,
    /// `checkpoints_taken ×`
    /// [`RecoveryPolicy::checkpoint_cost_cycles`] — the modeled price
    /// of the checkpoint cadence.
    pub checkpoint_overhead_cycles: u64,
    /// Instructions committed while monitoring was bypassed (rung 3).
    pub degraded_commits: u64,
    /// Checks the CFGR would have forwarded but degraded mode
    /// suppressed.
    pub suppressed_checks: u64,
    /// Core-clock cycles spent in degraded mode.
    pub degraded_cycles: u64,
    /// Forward-FIFO entries discarded across all restores — monitoring
    /// work abandoned mid-flight by rollback.
    pub fifo_drained: u64,
    /// Every recovery attempt, in order.
    pub attempts: Vec<RecoveryAttempt>,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "errors detected   {} (replays {}, reload replays {}{}{})",
            self.errors_detected,
            self.replays,
            self.reload_replays,
            if self.degraded_entered { ", degraded" } else { "" },
            if self.aborted { ", ABORTED" } else { "" },
        )?;
        writeln!(
            f,
            "checkpoints       {} taken, {} cycles modeled overhead",
            self.checkpoints_taken, self.checkpoint_overhead_cycles
        )?;
        writeln!(
            f,
            "mttr              {} cycles replayed, {} fifo entries drained",
            self.mttr_cycles, self.fifo_drained
        )?;
        if self.degraded_entered {
            writeln!(
                f,
                "degraded mode     {} cycles, {} unmonitored commits, {} suppressed checks",
                self.degraded_cycles, self.degraded_commits, self.suppressed_checks
            )?;
        }
        for a in &self.attempts {
            writeln!(
                f,
                "  rung {} at cycle {} -> rewound to cycle {}: {}",
                a.rung, a.detect_cycle, a.restored_cycle, a.error
            )?;
        }
        Ok(())
    }
}

/// The standard fault-outcome taxonomy for one supervised trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// No error was ever detected and the architectural outcome matches
    /// the fault-free reference — the strike was absorbed.
    Masked,
    /// At least one error was detected, recovery ran, and the
    /// architectural outcome matches the reference.
    DetectedRecovered,
    /// Silent data corruption: the run completed "successfully" but its
    /// architectural outcome differs from the reference.
    Sdc,
    /// Detected unrecoverable error: the run ended in a [`SimError`] or
    /// the supervisor aborted with the failure unresolved.
    Due,
}

impl FaultOutcome {
    /// All four outcomes, in severity order — campaign tables iterate
    /// this.
    pub const ALL: [FaultOutcome; 4] = [
        FaultOutcome::Masked,
        FaultOutcome::DetectedRecovered,
        FaultOutcome::Sdc,
        FaultOutcome::Due,
    ];

    /// Classifies one supervised trial against a fault-free reference
    /// run of the same workload.
    ///
    /// The comparison is *architectural* — exit reason, committed
    /// instruction count, and console output — not cycle counts, which
    /// legitimately differ once a replay or degraded-mode completion is
    /// involved.
    pub fn classify(
        report: &RecoveryReport,
        result: &Result<RunResult, SimError>,
        reference: &RunResult,
    ) -> FaultOutcome {
        let r = match result {
            Ok(r) => r,
            Err(_) => return FaultOutcome::Due,
        };
        if report.aborted || r.monitor_trap.is_some() {
            return FaultOutcome::Due;
        }
        let architectural_match = r.exit == reference.exit
            && r.instret == reference.instret
            && r.console == reference.console;
        match (report.errors_detected > 0, architectural_match) {
            (true, true) => FaultOutcome::DetectedRecovered,
            (false, true) => FaultOutcome::Masked,
            (_, false) => FaultOutcome::Sdc,
        }
    }

    /// Short stable label ("masked", "recovered", "sdc", "due") — the
    /// triage-log key.
    pub fn label(self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::DetectedRecovered => "recovered",
            FaultOutcome::Sdc => "sdc",
            FaultOutcome::Due => "due",
        }
    }

    /// Inverse of [`FaultOutcome::label`] — decodes a triage-log key
    /// back into the outcome (`None` for anything unrecognized).
    pub fn from_label(label: &str) -> Option<FaultOutcome> {
        FaultOutcome::ALL.into_iter().find(|o| o.label() == label)
    }
}

impl std::fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultOutcome::Masked => "Masked",
            FaultOutcome::DetectedRecovered => "Detected-Recovered",
            FaultOutcome::Sdc => "SDC",
            FaultOutcome::Due => "DUE",
        };
        f.write_str(name)
    }
}

/// Owns a [`System`], checkpoints it periodically, and walks the
/// escalation ladder when a run fails.
///
/// Construct it *after* [`System::load_program`] (and after arming
/// faults / enabling lockstep): [`Supervisor::new`] snapshots the
/// system immediately, and that snapshot is the rung-2/3 "initial
/// state" every deep recovery rewinds to.
#[derive(Debug)]
pub struct Supervisor<E: Extension, S: TraceSink = NullSink> {
    sys: System<E, S>,
    policy: RecoveryPolicy,
    initial: Snapshot,
    last: Option<Snapshot>,
    report: RecoveryReport,
    rung1_used: u32,
    rung2_used: u32,
}

impl<E: Extension, S: TraceSink> Supervisor<E, S> {
    /// Wraps `sys` (program already loaded) under `policy`, taking the
    /// initial snapshot.
    pub fn new(sys: System<E, S>, policy: RecoveryPolicy) -> Supervisor<E, S> {
        let initial = sys.snapshot();
        Supervisor {
            sys,
            policy,
            initial,
            last: None,
            report: RecoveryReport::default(),
            rung1_used: 0,
            rung2_used: 0,
        }
    }

    /// The supervised system.
    pub fn system(&self) -> &System<E, S> {
        &self.sys
    }

    /// The supervised system, mutably.
    pub fn system_mut(&mut self) -> &mut System<E, S> {
        &mut self.sys
    }

    /// Consumes the supervisor, returning the system (e.g. to extract
    /// its trace sink).
    pub fn into_system(self) -> System<E, S> {
        self.sys
    }

    /// What happened so far.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Runs the system to completion, recovering from failures along
    /// the way.
    ///
    /// Returns `Ok` with a trap-free [`RunResult`] when the program
    /// completed (possibly after replays, possibly in degraded mode).
    /// When the ladder is exhausted the original failure is returned
    /// as-is — an `Err` for [`SimError`]s, an `Ok` result carrying the
    /// monitor trap otherwise — with
    /// [`RecoveryReport::aborted`] set.
    pub fn run(&mut self, max_instructions: u64) -> Result<RunResult, SimError> {
        loop {
            let outcome = self.drive(max_instructions);
            let detected = match &outcome {
                Ok(r) => r
                    .monitor_trap
                    .as_ref()
                    .map(|t| (r.cycles, format!("monitor trap at {:#010x}: {}", t.pc, t.reason))),
                Err(e) => Some((self.sys.core().cycle(), e.to_string())),
            };
            let Some((detect_cycle, error)) = detected else {
                let r = outcome?;
                self.finish(r.resilience, r.cycles);
                return Ok(r);
            };
            self.report.errors_detected += 1;
            if !self.escalate(detect_cycle, error) {
                self.report.aborted = true;
                match outcome {
                    Ok(r) => {
                        self.finish(r.resilience, r.cycles);
                        return Ok(r);
                    }
                    Err(e) => {
                        self.finish(self.sys.resilience(), self.sys.core().cycle());
                        return Err(e);
                    }
                }
            }
        }
    }

    /// One supervised execution attempt: run with periodic checkpoint
    /// pauses until done or an error surfaces.
    fn drive(&mut self, max_instructions: u64) -> Result<RunResult, SimError> {
        if self.sys.degraded() {
            // No point checkpointing: monitoring is off, so there is
            // nothing left to recover to — degraded mode is already the
            // last rung before abort.
            return self.sys.try_run(max_instructions);
        }
        let every = self.policy.checkpoint_every.max(1);
        loop {
            let pause_at = self.sys.core().stats().instret + every;
            match self.sys.try_run_until(max_instructions, pause_at)? {
                crate::RunOutcome::Done(r) => return Ok(r),
                crate::RunOutcome::Paused { .. } => {
                    // Retain the snapshot only when it is provably on
                    // the fault-free timeline: nothing injected yet and
                    // no trap in flight. That keeps rung-1 replays
                    // bit-exact against the uninterrupted clean run.
                    if self.sys.resilience().faults_injected == 0 && !self.sys.trap_pending() {
                        self.last = Some(self.sys.snapshot());
                        self.report.checkpoints_taken += 1;
                    }
                }
            }
        }
    }

    /// Takes the next rung of the ladder. Returns `false` when the
    /// ladder is exhausted (caller aborts).
    fn escalate(&mut self, detect_cycle: u64, error: String) -> bool {
        // Rung 1: rollback and replay. The first attempt trusts the
        // last clean checkpoint; later attempts distrust it and replay
        // from time zero.
        if self.rung1_used < self.policy.max_replays {
            self.rung1_used += 1;
            let snap = match (&self.last, self.rung1_used) {
                (Some(last), 1) => last,
                _ => &self.initial,
            };
            if self.sys.restore(snap).is_err() {
                return false;
            }
            self.recovered(1, detect_cycle, error);
            self.report.replays += 1;
            return true;
        }

        // Rung 2: reload the fabric configuration from a freshly mapped
        // netlist, then replay from the initial state.
        if self.rung2_used < self.policy.max_reload_replays {
            self.rung2_used += 1;
            if self.sys.restore(&self.initial).is_err() {
                return false;
            }
            self.sys.disarm_faults();
            let mapping = flexcore_fabric::map_to_luts(&self.sys.extension().netlist(), 6);
            let bytes = flexcore_fabric::to_bitstream(&mapping);
            if self.sys.load_bitstream(&bytes).is_err() {
                return false;
            }
            self.recovered(2, detect_cycle, error);
            self.report.reload_replays += 1;
            return true;
        }

        // Rung 3: degraded mode — run the program out unmonitored.
        if self.policy.allow_degraded && !self.sys.degraded() {
            if self.sys.restore(&self.initial).is_err() {
                return false;
            }
            self.sys.enter_degraded();
            self.recovered(3, detect_cycle, error);
            self.report.degraded_entered = true;
            return true;
        }

        false
    }

    /// Common post-restore bookkeeping for every successful rung.
    fn recovered(&mut self, rung: u32, detect_cycle: u64, error: String) {
        self.sys.disarm_faults();
        self.sys.rearm_flight();
        self.sys.note_recovery(rung);
        let restored_cycle = self.sys.core().cycle();
        self.report.mttr_cycles += detect_cycle.saturating_sub(restored_cycle);
        self.report.attempts.push(RecoveryAttempt { rung, detect_cycle, restored_cycle, error });
    }

    /// Folds end-of-run state into the report.
    fn finish(&mut self, resilience: ResilienceStats, end_cycle: u64) {
        self.report.checkpoint_overhead_cycles =
            self.report.checkpoints_taken * self.policy.checkpoint_cost_cycles;
        self.report.fifo_drained = self.sys.fifo_drained_on_restore();
        self.report.degraded_commits = resilience.unmonitored_commits;
        self.report.suppressed_checks = resilience.suppressed_checks;
        if let Some((entry_cycle, _)) = self.sys.degraded_entry() {
            self.report.degraded_cycles = end_cycle.saturating_sub(entry_cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::Umc;
    use crate::SystemConfig;
    use flexcore_asm::assemble;

    fn loopy() -> flexcore_asm::Program {
        assemble(
            "start: mov 400, %o0
                    set buf, %o2
            loop:   ld [%o2], %o1
                    add %o1, %o0, %o1
                    st %o1, [%o2]
                    subcc %o0, 1, %o0
                    bne loop
                    nop
                    ta 0
                    .align 4
            buf:    .word 0",
        )
        .unwrap()
    }

    fn uninit_read() -> flexcore_asm::Program {
        assemble(
            "start:  set 0x8000, %o0
                     st %g0, [%o0]
                     ld [%o0], %o1
                     ld [%o0 + 4], %o2
                     ta 0",
        )
        .unwrap()
    }

    const MAX: u64 = 1_000_000;

    #[test]
    fn policy_defaults_walk_every_rung_once_over() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.max_replays, 2);
        assert_eq!(p.max_reload_replays, 1);
        assert!(p.allow_degraded);
        assert_eq!(p.checkpoint_every, 10_000);
    }

    #[test]
    fn divergence_is_rolled_back_and_replayed_bit_exact() {
        let mut clean = System::new(SystemConfig::fabric_half_speed(), Umc::new());
        clean.load_program(&loopy());
        let reference = clean.try_run(MAX).expect("clean run completes");

        let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
        sys.load_program(&loopy());
        sys.enable_lockstep();
        sys.inject_result_fault(1000, 5);
        let mut sup = Supervisor::new(
            sys,
            RecoveryPolicy { checkpoint_every: 256, ..RecoveryPolicy::default() },
        );
        let recovered = sup.run(MAX).expect("supervisor recovers the divergence");

        assert_eq!(recovered, reference, "replay is bit-exact");
        let report = sup.report();
        assert_eq!(report.errors_detected, 1);
        assert_eq!(report.replays, 1);
        assert_eq!(report.reload_replays, 0);
        assert!(!report.degraded_entered);
        assert!(!report.aborted);
        assert!(report.checkpoints_taken > 0, "the loop crosses several checkpoint boundaries");
        assert!(report.mttr_cycles > 0, "detection happened after the restored checkpoint");
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].rung, 1);
        assert!(report.attempts[0].error.contains("divergence"), "{}", report.attempts[0].error);

        let outcome = FaultOutcome::classify(report, &Ok(recovered.clone()), &reference);
        assert_eq!(outcome, FaultOutcome::DetectedRecovered);

        // Sanity-check the other taxonomy corners with the same data.
        let clean_report = RecoveryReport::default();
        assert_eq!(
            FaultOutcome::classify(&clean_report, &Ok(reference.clone()), &reference),
            FaultOutcome::Masked
        );
        let mut skewed = reference.clone();
        skewed.instret += 1;
        assert_eq!(
            FaultOutcome::classify(&clean_report, &Ok(skewed), &reference),
            FaultOutcome::Sdc
        );
    }

    #[test]
    fn persistent_trap_walks_the_ladder_into_degraded_mode() {
        // A genuine program bug (uninitialized read) recurs on every
        // replay no matter how often we rewind: rungs 1, 1, 2 all fail,
        // rung 3 completes the program unmonitored.
        let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
        sys.load_program(&uninit_read());
        let mut sup = Supervisor::new(sys, RecoveryPolicy::default());
        let r = sup.run(MAX).expect("degraded mode completes");

        assert!(r.monitor_trap.is_none(), "degraded run never traps");
        let report = sup.report();
        assert_eq!(report.errors_detected, 4);
        assert_eq!(report.replays, 2);
        assert_eq!(report.reload_replays, 1);
        assert!(report.degraded_entered);
        assert!(!report.aborted);
        assert!(report.degraded_cycles > 0);
        assert_eq!(report.degraded_commits, r.instret, "every commit ran unmonitored");
        assert_eq!(r.resilience.unmonitored_commits, r.instret);
        assert!(r.resilience.suppressed_checks > 0, "UMC would have checked the loads/stores");
        assert_eq!(report.attempts.iter().map(|a| a.rung).collect::<Vec<_>>(), vec![1, 1, 2, 3]);
    }

    #[test]
    fn exhausted_ladder_aborts_with_the_original_trap() {
        let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
        sys.load_program(&uninit_read());
        let mut sup = Supervisor::new(
            sys,
            RecoveryPolicy {
                max_replays: 0,
                max_reload_replays: 0,
                allow_degraded: false,
                ..RecoveryPolicy::default()
            },
        );
        let r = sup.run(MAX).expect("a monitor trap is an Ok result");
        assert!(r.monitor_trap.is_some(), "the trap surfaces unrecovered");
        let report = sup.report();
        assert!(report.aborted);
        assert_eq!(report.errors_detected, 1);
        assert_eq!(
            FaultOutcome::classify(report, &Ok(r.clone()), &r),
            FaultOutcome::Due,
            "an aborted trial is DUE even against itself"
        );
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(FaultOutcome::Masked.to_string(), "Masked");
        assert_eq!(FaultOutcome::DetectedRecovered.to_string(), "Detected-Recovered");
        assert_eq!(FaultOutcome::Sdc.to_string(), "SDC");
        assert_eq!(FaultOutcome::Due.to_string(), "DUE");
        assert_eq!(FaultOutcome::Due.label(), "due");
        assert_eq!(FaultOutcome::ALL.len(), 4);
    }
}
