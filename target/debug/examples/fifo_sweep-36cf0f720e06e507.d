/root/repo/target/debug/examples/fifo_sweep-36cf0f720e06e507.d: examples/fifo_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libfifo_sweep-36cf0f720e06e507.rmeta: examples/fifo_sweep.rs Cargo.toml

examples/fifo_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
