/root/repo/target/debug/deps/flexcore_bench-25779d11753f8907.d: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libflexcore_bench-25779d11753f8907.rmeta: crates/bench/src/lib.rs crates/bench/src/microbench.rs crates/bench/src/paper.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/microbench.rs:
crates/bench/src/paper.rs:
crates/bench/src/runner.rs:
