//! The extension netlists are real circuits: they map onto 6-LUTs, the
//! mapped networks compute the same function as the source gates, and
//! the full §III.F flow — synthesize, map, serialize to a bitstream,
//! reload — is lossless for every extension.

use flexcore::ext::{Bc, Dift, Extension, Mprot, Sec, Umc};
use flexcore_fabric::{from_bitstream, map_to_luts, to_bitstream, Netlist};

fn all_netlists() -> Vec<Netlist> {
    vec![
        Umc::new().netlist(),
        Dift::new().netlist(),
        Bc::new().netlist(),
        Sec::new().netlist(),
        Mprot::new().netlist(),
    ]
}

/// Deterministic input patterns: a cheap xorshift stream.
fn stimulus(seed: u32, n: usize) -> Vec<bool> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            s & 1 == 1
        })
        .collect()
}

#[test]
fn mapped_networks_match_their_netlists() {
    for netlist in all_netlists() {
        let mapping = map_to_luts(&netlist, 6);
        let mut s1 = netlist.initial_state();
        let mut s2 = netlist.initial_state();
        for round in 0..12u32 {
            let inputs =
                stimulus(0x1234_5678 ^ round.wrapping_mul(0x9e37_79b9), netlist.inputs().len());
            let o1 = netlist.eval(&inputs, &mut s1);
            let o2 = mapping.eval(&netlist, &inputs, &mut s2);
            assert_eq!(o1, o2, "{}: outputs diverge in round {round}", netlist.name());
            assert_eq!(s1, s2, "{}: state diverges in round {round}", netlist.name());
        }
    }
}

#[test]
fn every_extension_survives_the_bitstream_flow() {
    for netlist in all_netlists() {
        let mapping = map_to_luts(&netlist, 6);
        let bs = to_bitstream(&mapping);
        let reloaded = from_bitstream(&bs).unwrap_or_else(|e| panic!("{}: {e}", netlist.name()));
        assert_eq!(reloaded.lut_count(), mapping.lut_count(), "{}", netlist.name());
        // The reloaded configuration is functionally identical.
        let mut s1 = netlist.initial_state();
        let mut s2 = netlist.initial_state();
        for round in 0..6u32 {
            let inputs = stimulus(0xfeed ^ round, netlist.inputs().len());
            assert_eq!(
                mapping.eval(&netlist, &inputs, &mut s1),
                reloaded.eval(&netlist, &inputs, &mut s2),
                "{}: round {round}",
                netlist.name()
            );
        }
        // Boot-time plausibility: each extension's configuration is a
        // compact stream.
        assert!(bs.len() < 256 * 1024, "{}: {} bytes", netlist.name(), bs.len());
    }
}

#[test]
fn interface_netlist_also_maps_cleanly() {
    let n = flexcore::interface::interface_netlist();
    let m = map_to_luts(&n, 6);
    assert!(m.lut_count() > 50);
    let bs = to_bitstream(&m);
    assert!(from_bitstream(&bs).is_ok());
}
