/root/repo/target/release/deps/flexcore_pipeline-6ca8cd70e75e73b3.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/release/deps/libflexcore_pipeline-6ca8cd70e75e73b3.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/release/deps/libflexcore_pipeline-6ca8cd70e75e73b3.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
