//! A pass-through extension that monitors nothing.
//!
//! `Nop` forwards no instruction classes and performs no checks; a
//! `System<Nop>` behaves like the bare core plus the commit-stage
//! plumbing (FIFO, watchdog, error handling). Examples use it to model
//! an unmonitored baseline through the same `try_run` entry point as a
//! monitored run, and tests use it when only the core/system behaviour
//! is under scrutiny.

use flexcore_fabric::{Netlist, NetlistBuilder};
use flexcore_pipeline::TracePacket;

use crate::ext::{ExtEnv, Extension, ExtensionDescriptor, MonitorTrap};
use crate::interface::Cfgr;

/// The do-nothing extension: empty CFGR (nothing is forwarded), no
/// checks, no meta-data.
#[derive(Clone, Copy, Debug, Default)]
pub struct Nop;

impl Nop {
    /// Creates the extension.
    pub fn new() -> Nop {
        Nop
    }
}

impl Extension for Nop {
    fn name(&self) -> &'static str {
        "NOP"
    }

    fn descriptor(&self) -> ExtensionDescriptor {
        ExtensionDescriptor {
            abbrev: "NOP",
            name: "Pass-Through (no monitoring)",
            meta_data: &[],
            transparent_ops: &[],
            sw_visible_ops: &[],
        }
    }

    fn cfgr(&self) -> Cfgr {
        Cfgr::new()
    }

    fn pipeline_stages(&self) -> u32 {
        1
    }

    fn process(
        &mut self,
        _pkt: &TracePacket,
        _env: &mut ExtEnv<'_>,
    ) -> Result<Option<u32>, MonitorTrap> {
        Ok(None)
    }

    /// A single registered wire — the smallest netlist the mapper and
    /// bitstream codec accept.
    fn netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new("nop");
        let i = b.input();
        let r = b.register(i);
        b.output("q", r);
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ext::tests_util::{env_parts, mem_packet};
    use crate::interface::ForwardPolicy;
    use flexcore_isa::{InstrClass, Opcode};

    #[test]
    fn forwards_nothing_and_never_traps() {
        let c = Nop::new().cfgr();
        assert_eq!(c.policy(InstrClass::Ld), ForwardPolicy::Ignore);
        assert_eq!(c.policy(InstrClass::Add), ForwardPolicy::Ignore);
        assert_eq!(c.policy(InstrClass::Cpop1), ForwardPolicy::Ignore);

        let (mut meta, mut mem, mut bus, mut shadow) = env_parts();
        let mut env = ExtEnv::new(&mut meta, &mut mem, &mut bus, &mut shadow, 0);
        assert_eq!(Nop::new().process(&mem_packet(Opcode::Ld, 0x3000), &mut env).unwrap(), None);
    }

    #[test]
    fn netlist_round_trips_through_the_bitstream() {
        let n = Nop::new().netlist();
        let m = flexcore_fabric::map_to_luts(&n, 6);
        let bytes = flexcore_fabric::to_bitstream(&m);
        assert!(flexcore_fabric::from_bitstream(&bytes).is_ok());
    }
}
