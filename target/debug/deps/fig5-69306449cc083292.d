/root/repo/target/debug/deps/fig5-69306449cc083292.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-69306449cc083292.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
