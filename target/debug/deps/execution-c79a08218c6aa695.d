/root/repo/target/debug/deps/execution-c79a08218c6aa695.d: crates/pipeline/tests/execution.rs Cargo.toml

/root/repo/target/debug/deps/libexecution-c79a08218c6aa695.rmeta: crates/pipeline/tests/execution.rs Cargo.toml

crates/pipeline/tests/execution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
