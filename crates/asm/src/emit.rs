//! Two-pass layout and encoding.

use std::collections::HashMap;

use flexcore_isa::{encode, Cond, Instruction, Opcode, Operand2, Reg};

use crate::error::AsmError;
use crate::parse::{parse_line, Expr, ImmOp, Line, MemIndex, Operand, Stmt};
use crate::program::Program;

/// Cap on assembled image size. User-supplied `.space`/`.org` must not
/// be able to request multi-gigabyte allocations or overflow the
/// 32-bit address space — both were reachable panics/aborts before
/// this bound existed.
const MAX_IMAGE_BYTES: u64 = 1 << 26; // 64 MiB

/// Size in bytes a statement will occupy at address `pc`. Computed in
/// `u64` so pathological inputs (`.space 0xffffffff`, `.align` near the
/// top of the address space) can't overflow.
fn stmt_size(stmt: &Stmt, pc: u32, line: usize) -> Result<u64, AsmError> {
    Ok(match stmt {
        Stmt::Inst { mnemonic, .. } => {
            if mnemonic == "set" {
                8
            } else {
                4
            }
        }
        Stmt::Word(v) => 4 * v.len() as u64,
        Stmt::Half(v) => 2 * v.len() as u64,
        Stmt::Byte(v) => v.len() as u64,
        Stmt::Ascii(b) => b.len() as u64,
        Stmt::Space(n) => u64::from(*n),
        Stmt::Align(a) => {
            if *a == 0 {
                return Err(AsmError::new(line, ".align 0 is invalid".to_string()));
            }
            u64::from(pc).next_multiple_of(u64::from(*a)) - u64::from(pc)
        }
        Stmt::Org(_) | Stmt::Equ(..) => 0,
    })
}

struct Ctx {
    symbols: HashMap<String, i64>,
    /// Address of the statement currently being encoded (the value of
    /// the `.` symbol).
    dot: u32,
}

impl Ctx {
    fn resolve(&self, e: &Expr, line: usize) -> Result<i64, AsmError> {
        let base = match e.sym.as_deref() {
            None => 0,
            Some(".") => i64::from(self.dot),
            Some(s) => *self
                .symbols
                .get(s)
                .ok_or_else(|| AsmError::new(line, format!("undefined symbol `{s}`")))?,
        };
        Ok(base + e.addend)
    }

    fn resolve_imm(&self, i: &ImmOp, line: usize) -> Result<i64, AsmError> {
        Ok(match i {
            ImmOp::Plain(e) => self.resolve(e, line)?,
            ImmOp::Hi(e) => ((self.resolve(e, line)? as u32) >> 10) as i64,
            ImmOp::Lo(e) => (self.resolve(e, line)? as u32 & 0x3ff) as i64,
        })
    }
}

fn simm13(v: i64, line: usize) -> Result<Operand2, AsmError> {
    if (-4096..=4095).contains(&v) {
        Ok(Operand2::Imm(v as i32))
    } else {
        Err(AsmError::new(line, format!("immediate {v} out of simm13 range (use `set`)")))
    }
}

struct InstEncoder<'a> {
    ctx: &'a Ctx,
    line: usize,
    pc: u32,
}

impl InstEncoder<'_> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, msg)
    }

    fn reg(&self, op: &Operand) -> Result<Reg, AsmError> {
        match op {
            Operand::Reg(r) => Ok(*r),
            other => Err(self.err(format!("expected register, found {other:?}"))),
        }
    }

    fn op2(&self, op: &Operand) -> Result<Operand2, AsmError> {
        match op {
            Operand::Reg(r) => Ok(Operand2::Reg(*r)),
            Operand::Imm(i) => simm13(self.ctx.resolve_imm(i, self.line)?, self.line),
            Operand::Mem { .. } => Err(self.err("unexpected address operand")),
        }
    }

    /// Splits an address operand (`[base + idx]` or bare `reg`/`reg+off`)
    /// into `(rs1, op2)`.
    fn addr(&self, op: &Operand) -> Result<(Reg, Operand2), AsmError> {
        match op {
            Operand::Mem { base, index } => {
                let op2 = match index {
                    MemIndex::Reg(r) => Operand2::Reg(*r),
                    MemIndex::Imm(i) => simm13(self.ctx.resolve_imm(i, self.line)?, self.line)?,
                };
                Ok((*base, op2))
            }
            Operand::Reg(r) => Ok((*r, Operand2::Imm(0))),
            Operand::Imm(_) => Err(self.err("expected an address operand")),
        }
    }

    /// Resolves a branch/call target to a word displacement from `pc`.
    fn disp(&self, op: &Operand, bits: u32) -> Result<i32, AsmError> {
        let target = match op {
            Operand::Imm(i) => self.ctx.resolve_imm(i, self.line)?,
            other => return Err(self.err(format!("expected branch target, found {other:?}"))),
        };
        let delta = target - self.pc as i64;
        if delta % 4 != 0 {
            return Err(self.err(format!("branch target {target:#x} not word-aligned")));
        }
        let words = delta / 4;
        let limit = 1i64 << (bits - 1);
        if !(-limit..limit).contains(&words) {
            return Err(self.err(format!("branch target out of disp{bits} range")));
        }
        Ok(words as i32)
    }

    fn nargs(&self, ops: &[Operand], n: usize) -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(self.err(format!("expected {n} operands, found {}", ops.len())))
        }
    }

    fn alu3(&self, op: Opcode, ops: &[Operand]) -> Result<Instruction, AsmError> {
        self.nargs(ops, 3)?;
        Ok(Instruction::Alu {
            op,
            rs1: self.reg(&ops[0])?,
            op2: self.op2(&ops[1])?,
            rd: self.reg(&ops[2])?,
        })
    }

    fn encode_one(
        &self,
        mnemonic: &str,
        annul: bool,
        ops: &[Operand],
    ) -> Result<Vec<Instruction>, AsmError> {
        use Opcode::*;
        let alu_table: Option<Opcode> = match mnemonic {
            "add" => Some(Add),
            "sub" => Some(Sub),
            "and" => Some(And),
            "or" => Some(Or),
            "xor" => Some(Xor),
            "andn" => Some(Andn),
            "orn" => Some(Orn),
            "xnor" => Some(Xnor),
            "addcc" => Some(Addcc),
            "subcc" => Some(Subcc),
            "andcc" => Some(Andcc),
            "orcc" => Some(Orcc),
            "xorcc" => Some(Xorcc),
            "andncc" => Some(Andncc),
            "orncc" => Some(Orncc),
            "xnorcc" => Some(Xnorcc),
            "umul" => Some(Umul),
            "smul" => Some(Smul),
            "udiv" => Some(Udiv),
            "sdiv" => Some(Sdiv),
            "sll" => Some(Sll),
            "srl" => Some(Srl),
            "sra" => Some(Sra),
            "save" => Some(Save),
            "restore" => Some(Restore),
            _ => None,
        };
        if let Some(op) = alu_table {
            return Ok(vec![self.alu3(op, ops)?]);
        }
        let mem_table: Option<Opcode> = match mnemonic {
            "ld" => Some(Ld),
            "ldub" => Some(Ldub),
            "lduh" => Some(Lduh),
            "ldsb" => Some(Ldsb),
            "ldsh" => Some(Ldsh),
            "st" => Some(St),
            "stb" => Some(Stb),
            "sth" => Some(Sth),
            "ldd" => Some(Ldd),
            "std" => Some(Std),
            "swap" => Some(Swap),
            _ => None,
        };
        if let Some(op) = mem_table {
            self.nargs(ops, 2)?;
            let (addr_idx, data_idx) = if op.is_store() { (1, 0) } else { (0, 1) };
            let (rs1, op2) = self.addr(&ops[addr_idx])?;
            let rd = self.reg(&ops[data_idx])?;
            return Ok(vec![Instruction::Mem { op, rd, rs1, op2 }]);
        }

        match mnemonic {
            "sethi" => {
                self.nargs(ops, 2)?;
                let v = match &ops[0] {
                    Operand::Imm(i) => self.ctx.resolve_imm(i, self.line)?,
                    other => return Err(self.err(format!("expected imm22, found {other:?}"))),
                };
                if !(0..1 << 22).contains(&v) {
                    return Err(self.err(format!("sethi value {v} out of imm22 range")));
                }
                Ok(vec![Instruction::Sethi { rd: self.reg(&ops[1])?, imm22: v as u32 }])
            }
            "nop" => {
                self.nargs(ops, 0)?;
                Ok(vec![Instruction::nop()])
            }
            "call" => {
                self.nargs(ops, 1)?;
                Ok(vec![Instruction::Call { disp30: self.disp(&ops[0], 30)? }])
            }
            "jmpl" => {
                self.nargs(ops, 2)?;
                let (rs1, op2) = self.addr(&ops[0])?;
                Ok(vec![Instruction::Jmpl { rd: self.reg(&ops[1])?, rs1, op2 }])
            }
            "jmp" => {
                self.nargs(ops, 1)?;
                let (rs1, op2) = self.addr(&ops[0])?;
                Ok(vec![Instruction::Jmpl { rd: Reg::G0, rs1, op2 }])
            }
            "ret" => {
                self.nargs(ops, 0)?;
                Ok(vec![Instruction::Jmpl { rd: Reg::G0, rs1: Reg::I7, op2: Operand2::Imm(8) }])
            }
            "retl" => {
                self.nargs(ops, 0)?;
                Ok(vec![Instruction::Jmpl { rd: Reg::G0, rs1: Reg::O7, op2: Operand2::Imm(8) }])
            }
            "set" => {
                self.nargs(ops, 2)?;
                let v = match &ops[0] {
                    Operand::Imm(i) => self.ctx.resolve_imm(i, self.line)? as u32,
                    other => return Err(self.err(format!("expected value, found {other:?}"))),
                };
                let rd = self.reg(&ops[1])?;
                if rd.is_zero() {
                    return Err(self.err("set with destination %g0 has no effect"));
                }
                Ok(vec![
                    Instruction::Sethi { rd, imm22: v >> 10 },
                    Instruction::Alu {
                        op: Or,
                        rd,
                        rs1: rd,
                        op2: Operand2::Imm((v & 0x3ff) as i32),
                    },
                ])
            }
            "mov" => {
                self.nargs(ops, 2)?;
                Ok(vec![Instruction::Alu {
                    op: Or,
                    rd: self.reg(&ops[1])?,
                    rs1: Reg::G0,
                    op2: self.op2(&ops[0])?,
                }])
            }
            "clr" => {
                self.nargs(ops, 1)?;
                Ok(vec![Instruction::Alu {
                    op: Or,
                    rd: self.reg(&ops[0])?,
                    rs1: Reg::G0,
                    op2: Operand2::Reg(Reg::G0),
                }])
            }
            "cmp" => {
                self.nargs(ops, 2)?;
                Ok(vec![Instruction::Alu {
                    op: Subcc,
                    rd: Reg::G0,
                    rs1: self.reg(&ops[0])?,
                    op2: self.op2(&ops[1])?,
                }])
            }
            "tst" => {
                self.nargs(ops, 1)?;
                Ok(vec![Instruction::Alu {
                    op: Orcc,
                    rd: Reg::G0,
                    rs1: Reg::G0,
                    op2: Operand2::Reg(self.reg(&ops[0])?),
                }])
            }
            "inc" | "dec" => {
                let (amount, rd) = match ops.len() {
                    1 => (Operand2::Imm(1), self.reg(&ops[0])?),
                    2 => (self.op2(&ops[0])?, self.reg(&ops[1])?),
                    n => return Err(self.err(format!("expected 1 or 2 operands, found {n}"))),
                };
                let op = if mnemonic == "inc" { Add } else { Sub };
                Ok(vec![Instruction::Alu { op, rd, rs1: rd, op2: amount }])
            }
            "not" => {
                let (rs1, rd) = match ops.len() {
                    1 => (self.reg(&ops[0])?, self.reg(&ops[0])?),
                    2 => (self.reg(&ops[0])?, self.reg(&ops[1])?),
                    n => return Err(self.err(format!("expected 1 or 2 operands, found {n}"))),
                };
                Ok(vec![Instruction::Alu { op: Xnor, rd, rs1, op2: Operand2::Reg(Reg::G0) }])
            }
            "neg" => {
                let (rs2, rd) = match ops.len() {
                    1 => (self.reg(&ops[0])?, self.reg(&ops[0])?),
                    2 => (self.reg(&ops[0])?, self.reg(&ops[1])?),
                    n => return Err(self.err(format!("expected 1 or 2 operands, found {n}"))),
                };
                Ok(vec![Instruction::Alu { op: Sub, rd, rs1: Reg::G0, op2: Operand2::Reg(rs2) }])
            }
            "cpop1" | "cpop2" => {
                self.nargs(ops, 4)?;
                let opc = match &ops[0] {
                    Operand::Imm(i) => self.ctx.resolve_imm(i, self.line)?,
                    other => return Err(self.err(format!("expected opc, found {other:?}"))),
                };
                if !(0..512).contains(&opc) {
                    return Err(self.err(format!("cpop opc {opc} out of range (0..512)")));
                }
                Ok(vec![Instruction::Cpop {
                    space: if mnemonic == "cpop1" { 1 } else { 2 },
                    opc: opc as u16,
                    rs1: self.reg(&ops[1])?,
                    rs2: self.reg(&ops[2])?,
                    rd: self.reg(&ops[3])?,
                }])
            }
            _ => {
                // Branch family: `b<cond>[,a] target`.
                if let Some(cond) = mnemonic.strip_prefix('b').and_then(|c| c.parse::<Cond>().ok())
                {
                    self.nargs(ops, 1)?;
                    return Ok(vec![Instruction::Branch {
                        cond,
                        annul,
                        disp22: self.disp(&ops[0], 22)?,
                    }]);
                }
                // Trap family: `t<cond> [rs1 +] imm`.
                if let Some(cond) = mnemonic.strip_prefix('t').and_then(|c| c.parse::<Cond>().ok())
                {
                    self.nargs(ops, 1)?;
                    let (rs1, op2) = match &ops[0] {
                        Operand::Imm(i) => {
                            (Reg::G0, simm13(self.ctx.resolve_imm(i, self.line)?, self.line)?)
                        }
                        other => self.addr(other)?,
                    };
                    return Ok(vec![Instruction::Trap { cond, rs1, op2 }]);
                }
                Err(self.err(format!("unknown mnemonic `{mnemonic}`")))
            }
        }
    }
}

pub(crate) fn assemble_impl(source: &str, default_base: u32) -> Result<Program, AsmError> {
    if !default_base.is_multiple_of(4) {
        return Err(AsmError::new(0, format!("base address {default_base:#x} not word-aligned")));
    }
    let lines: Vec<Line> =
        source.lines().enumerate().map(|(i, l)| parse_line(l, i + 1)).collect::<Result<_, _>>()?;

    // Pass 1: layout.
    let mut ctx = Ctx { symbols: HashMap::new(), dot: 0 };
    let mut base = default_base;
    let mut pc = default_base;
    let mut started = false; // any bytes or labels emitted yet?
    for line in &lines {
        if let Some(label) = &line.label {
            if ctx.symbols.insert(label.clone(), pc as i64).is_some() {
                return Err(AsmError::new(line.num, format!("duplicate symbol `{label}`")));
            }
            started = true;
        }
        let Some(stmt) = &line.stmt else { continue };
        match stmt {
            Stmt::Org(addr) => {
                if !started && pc == base {
                    base = *addr;
                    pc = *addr;
                } else if *addr < pc {
                    return Err(AsmError::new(
                        line.num,
                        format!(".org {addr:#x} goes backwards (pc is {pc:#x})"),
                    ));
                } else {
                    pc = *addr;
                }
                if !pc.is_multiple_of(4) {
                    return Err(AsmError::new(line.num, ".org address not word-aligned"));
                }
                if u64::from(pc) - u64::from(base) > MAX_IMAGE_BYTES {
                    return Err(AsmError::new(
                        line.num,
                        format!(".org {pc:#x} puts the image over {MAX_IMAGE_BYTES} bytes"),
                    ));
                }
            }
            Stmt::Equ(name, value) => {
                if ctx.symbols.insert(name.clone(), *value).is_some() {
                    return Err(AsmError::new(line.num, format!("duplicate symbol `{name}`")));
                }
            }
            other => {
                if matches!(other, Stmt::Inst { .. } | Stmt::Word(_)) && !pc.is_multiple_of(4) {
                    return Err(AsmError::new(
                        line.num,
                        format!("instruction/word at unaligned address {pc:#x} (add `.align 4`)"),
                    ));
                }
                if matches!(other, Stmt::Half(_)) && !pc.is_multiple_of(2) {
                    return Err(AsmError::new(
                        line.num,
                        format!("halfword at odd address {pc:#x}"),
                    ));
                }
                let sz = stmt_size(other, pc, line.num)?;
                if sz > 0 {
                    started = true;
                }
                let next = u64::from(pc) + sz;
                if next - u64::from(base) > MAX_IMAGE_BYTES {
                    return Err(AsmError::new(
                        line.num,
                        format!("image exceeds {MAX_IMAGE_BYTES} bytes"),
                    ));
                }
                if next > u64::from(u32::MAX) {
                    return Err(AsmError::new(line.num, "address overflows 32 bits"));
                }
                pc = next as u32;
            }
        }
    }
    let end = pc;

    // Pass 2: emit.
    let mut image = vec![0u8; (end - base) as usize];
    let mut pc = base;
    for line in &lines {
        let Some(stmt) = &line.stmt else { continue };
        let off = (pc - base) as usize;
        ctx.dot = pc;
        match stmt {
            Stmt::Org(addr) => {
                pc = pc.max(*addr);
                continue;
            }
            Stmt::Equ(..) => continue,
            Stmt::Inst { mnemonic, annul, operands } => {
                let enc = InstEncoder { ctx: &ctx, line: line.num, pc };
                let insts = enc.encode_one(mnemonic, *annul, operands)?;
                for (i, inst) in insts.iter().enumerate() {
                    image[off + 4 * i..off + 4 * i + 4]
                        .copy_from_slice(&encode(inst).to_be_bytes());
                }
            }
            Stmt::Word(v) => {
                for (i, imm) in v.iter().enumerate() {
                    let val = ctx.resolve_imm(imm, line.num)? as u32;
                    image[off + 4 * i..off + 4 * i + 4].copy_from_slice(&val.to_be_bytes());
                }
            }
            Stmt::Half(v) => {
                for (i, imm) in v.iter().enumerate() {
                    let val = ctx.resolve_imm(imm, line.num)?;
                    if !(-32768..=65535).contains(&val) {
                        return Err(AsmError::new(
                            line.num,
                            format!("halfword value {val} out of range"),
                        ));
                    }
                    image[off + 2 * i..off + 2 * i + 2]
                        .copy_from_slice(&(val as u16).to_be_bytes());
                }
            }
            Stmt::Byte(v) => {
                for (i, imm) in v.iter().enumerate() {
                    let val = ctx.resolve_imm(imm, line.num)?;
                    if !(-128..=255).contains(&val) {
                        return Err(AsmError::new(
                            line.num,
                            format!("byte value {val} out of range"),
                        ));
                    }
                    image[off + i] = val as u8;
                }
            }
            Stmt::Ascii(bytes) => {
                image[off..off + bytes.len()].copy_from_slice(bytes);
            }
            Stmt::Space(_) | Stmt::Align(_) => {}
        }
        // Already bounds-checked by pass 1.
        pc = (u64::from(pc) + stmt_size(stmt, pc, line.num)?) as u32;
    }

    let symbols = ctx.symbols.into_iter().map(|(k, v)| (k, v as u32)).collect();
    Ok(Program::new(base, image, symbols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;
    use flexcore_isa::decode;

    fn words(src: &str) -> Vec<Instruction> {
        assemble(src).unwrap().words().iter().map(|&w| decode(w).unwrap()).collect()
    }

    #[test]
    fn simple_alu_program() {
        let p = words("add %g1, 4, %g2\nsub %g2, %g1, %g3");
        assert_eq!(p[0], Instruction::alu(Opcode::Add, Reg::G1, Reg::G2, Operand2::Imm(4)));
        assert_eq!(p[1], Instruction::alu(Opcode::Sub, Reg::G2, Reg::G3, Operand2::Reg(Reg::G1)));
    }

    #[test]
    fn forward_and_backward_branches() {
        let p = words("loop: nop\n bne loop\n nop\n be end\n nop\nend: nop");
        let Instruction::Branch { disp22: back, .. } = p[1] else { panic!() };
        assert_eq!(back, -1);
        let Instruction::Branch { disp22: fwd, .. } = p[3] else { panic!() };
        assert_eq!(fwd, 2);
    }

    #[test]
    fn call_and_ret() {
        let p = words("start: call fun\n nop\n ta 0\nfun: retl\n nop");
        let Instruction::Call { disp30 } = p[0] else { panic!() };
        assert_eq!(disp30, 3);
        assert_eq!(p[3], Instruction::Jmpl { rd: Reg::G0, rs1: Reg::O7, op2: Operand2::Imm(8) });
    }

    #[test]
    fn set_expands_to_sethi_or() {
        let p = words("set 0x12345678, %g1");
        assert_eq!(p[0], Instruction::Sethi { rd: Reg::G1, imm22: 0x12345678 >> 10 });
        assert_eq!(
            p[1],
            Instruction::Alu {
                op: Opcode::Or,
                rd: Reg::G1,
                rs1: Reg::G1,
                op2: Operand2::Imm(0x278)
            }
        );
    }

    #[test]
    fn set_of_label_resolves_address() {
        let p = assemble("start: set data, %o0\n ta 0\ndata: .word 42").unwrap();
        let data_addr = p.symbol("data").unwrap();
        let ws = p.words();
        let Instruction::Sethi { imm22, .. } = decode(ws[0]).unwrap() else { panic!() };
        let Instruction::Alu { op2: Operand2::Imm(lo), .. } = decode(ws[1]).unwrap() else {
            panic!()
        };
        assert_eq!((imm22 << 10) | lo as u32, data_addr);
    }

    #[test]
    fn synthetic_instructions() {
        let p = words(
            "mov 7, %o0\nclr %o1\ncmp %o0, 3\ntst %o2\ninc %o3\ndec 2, %o4\nneg %o5\nnot %l0, %l1",
        );
        assert_eq!(p[0], Instruction::alu(Opcode::Or, Reg::G0, Reg::O0, Operand2::Imm(7)));
        assert_eq!(p[2], Instruction::alu(Opcode::Subcc, Reg::O0, Reg::G0, Operand2::Imm(3)));
        assert_eq!(p[4], Instruction::alu(Opcode::Add, Reg::O3, Reg::O3, Operand2::Imm(1)));
        assert_eq!(p[5], Instruction::alu(Opcode::Sub, Reg::O4, Reg::O4, Operand2::Imm(2)));
        assert_eq!(p[6], Instruction::alu(Opcode::Sub, Reg::G0, Reg::O5, Operand2::Reg(Reg::O5)));
        assert_eq!(p[7], Instruction::alu(Opcode::Xnor, Reg::L0, Reg::L1, Operand2::Reg(Reg::G0)));
    }

    #[test]
    fn data_directives_layout() {
        let p = assemble(
            "start: ta 0\n .align 8\nbuf: .space 6\n .align 4\ntbl: .word 1, tbl\nmsg: .asciz \"ok\"",
        )
        .unwrap();
        let buf = p.symbol("buf").unwrap();
        let tbl = p.symbol("tbl").unwrap();
        assert_eq!(buf % 8, 0);
        assert_eq!(tbl % 4, 0);
        assert!(tbl >= buf + 6);
        // Second word of tbl holds tbl's own address.
        let off = (tbl - p.base()) as usize;
        let w = u32::from_be_bytes(p.image()[off + 4..off + 8].try_into().unwrap());
        assert_eq!(w, tbl);
        let msg = p.symbol("msg").unwrap();
        let m = (msg - p.base()) as usize;
        assert_eq!(&p.image()[m..m + 3], b"ok\0");
    }

    #[test]
    fn equ_constants() {
        let p = words(".equ N, 12\nmov N, %g1\nmov N + 1, %g2");
        assert_eq!(p[0], Instruction::alu(Opcode::Or, Reg::G0, Reg::G1, Operand2::Imm(12)));
        assert_eq!(p[1], Instruction::alu(Opcode::Or, Reg::G0, Reg::G2, Operand2::Imm(13)));
    }

    #[test]
    fn org_sets_base() {
        let p = assemble(".org 0x4000\nstart: ta 0").unwrap();
        assert_eq!(p.base(), 0x4000);
        assert_eq!(p.entry(), 0x4000);
    }

    #[test]
    fn cpop_instructions() {
        let p = words("cpop1 5, %o0, %o1, %o2");
        assert_eq!(
            p[0],
            Instruction::Cpop { space: 1, opc: 5, rs1: Reg::O0, rs2: Reg::O1, rd: Reg::O2 }
        );
    }

    #[test]
    fn jmpl_with_offset() {
        let p = words("jmpl %g1 + 12, %o7");
        assert_eq!(p[0], Instruction::Jmpl { rd: Reg::O7, rs1: Reg::G1, op2: Operand2::Imm(12) });
    }

    #[test]
    fn error_cases() {
        for (src, frag) in [
            ("frobnicate %g1", "unknown mnemonic"),
            ("bne nowhere", "undefined symbol"),
            ("add %g1, 99999, %g2", "simm13"),
            ("x: nop\nx: nop", "duplicate symbol"),
            (".org 0x100\nnop\n.org 0x10\nnop", "backwards"),
            ("set 5, %g0", "%g0"),
        ] {
            let e = assemble(src).unwrap_err();
            assert!(e.to_string().contains(frag), "{src}: {e}");
        }
    }

    #[test]
    fn branch_synonyms_assemble() {
        let p = words("x: bz x\n bnz x\n bgeu x\n blu x\n ba,a x");
        assert!(matches!(p[0], Instruction::Branch { cond: Cond::E, .. }));
        assert!(matches!(p[1], Instruction::Branch { cond: Cond::Ne, .. }));
        assert!(matches!(p[2], Instruction::Branch { cond: Cond::Cc, .. }));
        assert!(matches!(p[3], Instruction::Branch { cond: Cond::Cs, .. }));
        assert!(matches!(p[4], Instruction::Branch { cond: Cond::A, annul: true, .. }));
    }

    #[test]
    fn trap_forms() {
        let p = words("ta 0\nte 3\nta %g1 + 1");
        assert_eq!(p[0], Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) });
        assert_eq!(p[1], Instruction::Trap { cond: Cond::E, rs1: Reg::G0, op2: Operand2::Imm(3) });
        assert_eq!(p[2], Instruction::Trap { cond: Cond::A, rs1: Reg::G1, op2: Operand2::Imm(1) });
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::assemble;
    use flexcore_isa::decode;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Assembling a printed ALU instruction reproduces the original:
        /// text -> words -> decode == the instruction we printed.
        #[test]
        fn alu_text_round_trip(
            op in prop::sample::select(vec![
                Opcode::Add, Opcode::Sub, Opcode::And, Opcode::Or, Opcode::Xor,
                Opcode::Addcc, Opcode::Subcc, Opcode::Sll, Opcode::Srl, Opcode::Sra,
                Opcode::Umul, Opcode::Sdiv,
            ]),
            rs1 in 0u8..32,
            rd in 0u8..32,
            imm in -4096i32..=4095,
            use_reg in any::<bool>(),
            rs2 in 0u8..32,
        ) {
            let op2 = if use_reg {
                Operand2::Reg(Reg::new(rs2).unwrap())
            } else {
                Operand2::Imm(imm)
            };
            let inst = Instruction::alu(op, Reg::new(rs1).unwrap(), Reg::new(rd).unwrap(), op2);
            let text = inst.to_string();
            let prog = assemble(&text).unwrap();
            let back = decode(prog.words()[0]).unwrap();
            prop_assert_eq!(back, inst, "text was `{}`", text);
        }

        /// Every label address reported by the symbol table is
        /// word-aligned when it labels an instruction.
        #[test]
        fn instruction_labels_are_aligned(n in 1usize..20) {
            let mut src = String::new();
            for i in 0..n {
                src.push_str(&format!("l{i}: nop\n"));
            }
            let p = assemble(&src).unwrap();
            for i in 0..n {
                let a = p.symbol(&format!("l{i}")).unwrap();
                prop_assert_eq!(a % 4, 0);
                prop_assert_eq!(a, p.base() + 4 * i as u32);
            }
        }
    }
}
