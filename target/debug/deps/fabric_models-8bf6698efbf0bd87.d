/root/repo/target/debug/deps/fabric_models-8bf6698efbf0bd87.d: crates/bench/benches/fabric_models.rs

/root/repo/target/debug/deps/libfabric_models-8bf6698efbf0bd87.rmeta: crates/bench/benches/fabric_models.rs

crates/bench/benches/fabric_models.rs:
