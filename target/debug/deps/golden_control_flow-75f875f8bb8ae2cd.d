/root/repo/target/debug/deps/golden_control_flow-75f875f8bb8ae2cd.d: crates/pipeline/tests/golden_control_flow.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_control_flow-75f875f8bb8ae2cd.rmeta: crates/pipeline/tests/golden_control_flow.rs Cargo.toml

crates/pipeline/tests/golden_control_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
