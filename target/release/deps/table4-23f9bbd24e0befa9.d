/root/repo/target/release/deps/table4-23f9bbd24e0befa9.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-23f9bbd24e0befa9: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
