/root/repo/target/debug/examples/soft_error-cb476aaaa0d44718.d: examples/soft_error.rs

/root/repo/target/debug/examples/libsoft_error-cb476aaaa0d44718.rmeta: examples/soft_error.rs

examples/soft_error.rs:
