/root/repo/target/release/deps/flexcore_asm-0d0cf70026f5df3b.d: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

/root/repo/target/release/deps/libflexcore_asm-0d0cf70026f5df3b.rlib: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

/root/repo/target/release/deps/libflexcore_asm-0d0cf70026f5df3b.rmeta: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

crates/asm/src/lib.rs:
crates/asm/src/emit.rs:
crates/asm/src/error.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
