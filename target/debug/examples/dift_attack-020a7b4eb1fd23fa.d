/root/repo/target/debug/examples/dift_attack-020a7b4eb1fd23fa.d: examples/dift_attack.rs Cargo.toml

/root/repo/target/debug/examples/libdift_attack-020a7b4eb1fd23fa.rmeta: examples/dift_attack.rs Cargo.toml

examples/dift_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
