//! Golden-model property test: random straight-line instruction
//! sequences executed by the full core must produce exactly the
//! register/flag/memory state of an independent, minimal SPARC
//! interpreter written here from the V8 manual's semantics.
//!
//! The interpreter shares no code with the core (it re-derives ALU
//! results, condition codes, and big-endian memory semantics from
//! scratch), so agreement is meaningful.

use std::collections::HashMap;

use flexcore_isa::{encode, Instruction, Opcode, Operand2, Reg};
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, StepResult};
use proptest::prelude::*;

/// The independent reference machine.
#[derive(Default)]
struct Golden {
    regs: [u64; 32], // wider than needed; masked on every write
    n: bool,
    z: bool,
    v: bool,
    c: bool,
    mem: HashMap<u32, u8>,
}

impl Golden {
    fn r(&self, r: Reg) -> u32 {
        if r.index() == 0 {
            0
        } else {
            self.regs[r.index()] as u32
        }
    }

    fn w(&mut self, r: Reg, v: u32) {
        if r.index() != 0 {
            self.regs[r.index()] = u64::from(v);
        }
    }

    fn op2(&self, o: Operand2) -> u32 {
        match o {
            Operand2::Reg(r) => self.r(r),
            Operand2::Imm(i) => i as u32,
        }
    }

    fn rd_mem(&self, a: u32) -> u8 {
        self.mem.get(&a).copied().unwrap_or(0)
    }

    fn exec(&mut self, inst: &Instruction) {
        match *inst {
            Instruction::Alu { op, rd, rs1, op2 } => {
                let a = u64::from(self.r(rs1));
                let b = u64::from(self.op2(op2));
                use Opcode::*;
                let (res, set_flags) = match op {
                    Add | Save | Restore => (a + b, false),
                    Addcc => (a + b, true),
                    Sub => (a.wrapping_sub(b), false),
                    Subcc => (a.wrapping_sub(b), true),
                    And => (a & b, false),
                    Andcc => (a & b, true),
                    Or => (a | b, false),
                    Orcc => (a | b, true),
                    Xor => (a ^ b, false),
                    Xorcc => (a ^ b, true),
                    Andn => (a & !b, false),
                    Andncc => (a & !b, true),
                    Orn => (a | (!b & 0xffff_ffff), false),
                    Orncc => (a | (!b & 0xffff_ffff), true),
                    Xnor => (!(a ^ b) & 0xffff_ffff, false),
                    Xnorcc => (!(a ^ b) & 0xffff_ffff, true),
                    Sll => ((a as u32).wrapping_shl(b as u32 & 31) as u64, false),
                    Srl => ((a as u32).wrapping_shr(b as u32 & 31) as u64, false),
                    Sra => ((((a as u32) as i32) >> (b as u32 & 31)) as u32 as u64, false),
                    Umul => ((a as u32).wrapping_mul(b as u32) as u64, false),
                    Smul => ((a as u32 as i32).wrapping_mul(b as u32 as i32) as u32 as u64, false),
                    Udiv | Sdiv => unreachable!("generator avoids division"),
                    _ => unreachable!("not an ALU op"),
                };
                let r32 = res as u32;
                if set_flags {
                    self.n = (r32 as i32) < 0;
                    self.z = r32 == 0;
                    match op {
                        Addcc => {
                            self.c = res > 0xffff_ffff;
                            self.v = ((a as u32 ^ !(b as u32)) & (a as u32 ^ r32)) >> 31 == 1;
                        }
                        Subcc => {
                            self.c = (a as u32) < (b as u32);
                            self.v = ((a as u32 ^ b as u32) & (a as u32 ^ r32)) >> 31 == 1;
                        }
                        _ => {
                            self.c = false;
                            self.v = false;
                        }
                    }
                }
                self.w(rd, r32);
            }
            Instruction::Sethi { rd, imm22 } => self.w(rd, imm22 << 10),
            Instruction::Mem { op, rd, rs1, op2 } => {
                let ea = self.r(rs1).wrapping_add(self.op2(op2));
                use Opcode::*;
                match op {
                    St => {
                        let v = self.r(rd);
                        for (i, byte) in v.to_be_bytes().into_iter().enumerate() {
                            self.mem.insert(ea + i as u32, byte);
                        }
                    }
                    Sth => {
                        let v = self.r(rd) as u16;
                        for (i, byte) in v.to_be_bytes().into_iter().enumerate() {
                            self.mem.insert(ea + i as u32, byte);
                        }
                    }
                    Stb => {
                        self.mem.insert(ea, self.r(rd) as u8);
                    }
                    Ld => {
                        let v = u32::from_be_bytes([
                            self.rd_mem(ea),
                            self.rd_mem(ea + 1),
                            self.rd_mem(ea + 2),
                            self.rd_mem(ea + 3),
                        ]);
                        self.w(rd, v);
                    }
                    Lduh => {
                        let v = u16::from_be_bytes([self.rd_mem(ea), self.rd_mem(ea + 1)]);
                        self.w(rd, u32::from(v));
                    }
                    Ldsh => {
                        let v = i16::from_be_bytes([self.rd_mem(ea), self.rd_mem(ea + 1)]);
                        self.w(rd, v as i32 as u32);
                    }
                    Ldub => {
                        let b = self.rd_mem(ea);
                        self.w(rd, u32::from(b));
                    }
                    Ldsb => {
                        let b = self.rd_mem(ea) as i8;
                        self.w(rd, b as i32 as u32);
                    }
                    _ => unreachable!(),
                }
            }
            _ => unreachable!("generator emits only ALU/sethi/memory"),
        }
    }
}

// ------------------------------------------------------------- strategy

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn arb_alu_inst() -> impl Strategy<Value = Instruction> {
    use Opcode::*;
    let ops = vec![
        Add, Addcc, Sub, Subcc, And, Andcc, Or, Orcc, Xor, Xorcc, Andn, Andncc, Orn, Orncc, Xnor,
        Xnorcc, Sll, Srl, Sra, Umul, Smul, Save, Restore,
    ];
    (
        prop::sample::select(ops),
        arb_reg(),
        arb_reg(),
        prop_oneof![arb_reg().prop_map(Operand2::Reg), (-4096i32..=4095).prop_map(Operand2::Imm)],
    )
        .prop_map(|(op, rs1, rd, op2)| Instruction::Alu { op, rd, rs1, op2 })
}

/// Memory ops constrained to an aligned scratch window so the core
/// never traps: `base = %g7` is pinned to SCRATCH by the test harness
/// and never used as an ALU destination.
fn arb_mem_inst() -> impl Strategy<Value = Instruction> {
    use Opcode::*;
    let word_ops = vec![Ld, St];
    let half_ops = vec![Lduh, Ldsh, Sth];
    let byte_ops = vec![Ldub, Ldsb, Stb];
    prop_oneof![
        (prop::sample::select(word_ops), arb_reg(), 0i32..64).prop_map(|(op, rd, w)| (
            op,
            rd,
            w * 4
        )),
        (prop::sample::select(half_ops), arb_reg(), 0i32..128).prop_map(|(op, rd, h)| (
            op,
            rd,
            h * 2
        )),
        (prop::sample::select(byte_ops), arb_reg(), 0i32..256).prop_map(|(op, rd, b)| (op, rd, b)),
    ]
    .prop_map(|(op, rd, off)| Instruction::Mem {
        op,
        rd,
        rs1: Reg::G7,
        op2: Operand2::Imm(off),
    })
}

fn arb_program() -> impl Strategy<Value = Vec<Instruction>> {
    prop::collection::vec(
        prop_oneof![
            4 => arb_alu_inst(),
            2 => arb_mem_inst(),
            1 => (arb_reg(), 0u32..(1 << 22))
                .prop_map(|(rd, imm22)| Instruction::Sethi { rd, imm22 }),
        ],
        1..60,
    )
    .prop_map(|mut insts| {
        // Keep %g7 (the scratch base) stable: retarget anything that
        // would clobber it.
        for inst in &mut insts {
            match inst {
                Instruction::Alu { rd, .. } | Instruction::Sethi { rd, .. } if *rd == Reg::G7 => {
                    *rd = Reg::G6;
                }
                Instruction::Mem { op, rd, .. } if op.is_load() && *rd == Reg::G7 => {
                    *rd = Reg::G6;
                }
                _ => {}
            }
        }
        insts
    })
}

const SCRATCH: u32 = 0x0002_0000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Registers, flags, and the scratch memory window agree with the
    /// golden model after every generated program.
    #[test]
    fn core_matches_golden_model(insts in arb_program()) {
        // --- run on the core (from reset: pc = 0) ---
        let halt = Instruction::Trap {
            cond: flexcore_isa::Cond::A,
            rs1: Reg::G0,
            op2: Operand2::Imm(0),
        };
        let mut mem0 = MainMemory::new();
        for (i, inst) in insts.iter().enumerate() {
            mem0.write_u32(4 * i as u32, encode(inst));
        }
        mem0.write_u32(4 * insts.len() as u32, encode(&halt));

        let mut bus = SystemBus::default();
        let mut core = Core::new(CoreConfig::leon3());
        core.set_reg(Reg::G7, SCRATCH);
        let mut golden = Golden::default();
        golden.w(Reg::G7, SCRATCH);

        loop {
            match core.step(&mut mem0, &mut bus) {
                StepResult::Committed(_) | StepResult::Annulled => {}
                StepResult::Exited(e) => {
                    prop_assert_eq!(e, flexcore_pipeline::ExitReason::Halt(0));
                    break;
                }
            }
        }

        // --- run on the golden model ---
        for inst in &insts {
            golden.exec(inst);
        }

        // --- compare ---
        for r in Reg::all() {
            prop_assert_eq!(core.reg(r), golden.r(r), "register {}", r);
        }
        let icc = core.icc();
        prop_assert_eq!((icc.n, icc.z, icc.v, icc.c), (golden.n, golden.z, golden.v, golden.c));
        for off in 0..1024u32 {
            let a = SCRATCH + off;
            prop_assert_eq!(mem0.read_u8(a), golden.rd_mem(a), "memory at {:#x}", a);
        }
    }
}
