/root/repo/target/release/examples/quickstart-4101a5f091e55117.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-4101a5f091e55117: examples/quickstart.rs

examples/quickstart.rs:
