//! The campaign server: drains the job queue in priority order, shards
//! each job across the supervised worker pool, journals every record
//! crash-safely, and reports per-job summaries plus an optional Chrome
//! trace of worker/trial spans.
//!
//! Per job, the flow is: expand the [`JobSpec`] into its trial list →
//! open (or resume) the campaign-hash-keyed journal → skip every trial
//! the journal already completed → run the rest on the pool, appending
//! each record as it completes → stamp a terminal event and write the
//! merged trial log. The merged log (`<id>.trials.jsonl`) holds the
//! final outcome of every trial in submission order — byte-identical
//! to the records a clean single-threaded `faultsweep` run would
//! write, which is the server's end-to-end correctness check.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

use flexcore_bench::trial::{self, TrialOutcome, TrialSpec};
use flexcore_telemetry::RateMeter;
use serde::Value;

use crate::admission::{AdmissionStats, AdmitError, ShedRecord};
use crate::health::{HealthMetrics, Heartbeat};
use crate::job::{JobId, JobSpec};
use crate::journal::{CompactionReport, Journal, JournalError, LoggedOutcome};
use crate::pool::WorkerPool;
use crate::queue::JobQueue;
use crate::worker::{JobRunStats, TrialFailure, TrialRecord, WorkerPolicy};

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Directory holding one journal (and one merged trial log) per
    /// campaign hash.
    pub journal_dir: PathBuf,
    /// Worker-pool supervision policy.
    pub worker_policy: WorkerPolicy,
    /// Queue depth bound (admission backpressure kicks in above it).
    pub max_depth: usize,
    /// Journal fsync cadence, in records.
    pub sync_every: usize,
    /// Resume existing journals instead of restarting campaigns.
    pub resume: bool,
    /// Soft interruption: stop claiming new trials once this many
    /// records have been executed across the whole run (tests and the
    /// CI soak use it to interrupt at a deterministic point; `kill -9`
    /// is the hard version).
    pub stop_after: Option<u64>,
    /// Where to write the Chrome trace of worker/trial spans.
    pub trace_path: Option<PathBuf>,
    /// Where to write the live `status.json` heartbeat (atomically
    /// replaced after every trial record); `None` disables health
    /// reporting entirely.
    pub status_path: Option<PathBuf>,
    /// Emit a per-record progress line (done/total, trials/sec, ETA)
    /// on **stderr** — stdout stays reserved for the report, which CI
    /// diffs byte-for-byte between runs.
    pub progress: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            journal_dir: PathBuf::from("flexserve-journals"),
            worker_policy: WorkerPolicy::default(),
            max_depth: 16,
            sync_every: 8,
            resume: false,
            stop_after: None,
            trace_path: None,
            status_path: None,
            progress: false,
        }
    }
}

/// How a job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Every trial has a completed outcome.
    Completed,
    /// Interrupted by the `stop_after` budget; the journal holds the
    /// completed prefix and a resume finishes the rest.
    Interrupted,
    /// The spec could not be expanded into trials.
    Failed(String),
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobState::Completed => write!(f, "completed"),
            JobState::Interrupted => write!(f, "interrupted"),
            JobState::Failed(detail) => write!(f, "failed: {detail}"),
        }
    }
}

/// One drained job's summary.
#[derive(Clone, Debug)]
pub struct JobSummary {
    /// The campaign hash.
    pub id: JobId,
    /// The job's human-readable name.
    pub name: String,
    /// Total trials in the campaign.
    pub trials: u64,
    /// Pool statistics (executed/reused/retried/quarantined/...).
    pub stats: JobRunStats,
    /// Terminal state.
    pub state: JobState,
    /// The journal file.
    pub journal: PathBuf,
    /// The merged trial log, written when the job completed.
    pub merged_log: Option<PathBuf>,
    /// What the pre-resume compaction pass did (`None` on fresh runs).
    pub compaction: Option<CompactionReport>,
}

/// What one [`Server::run`] drain did.
#[derive(Clone, Debug, Default)]
pub struct ServerReport {
    /// Per-job summaries, in drain (priority) order.
    pub jobs: Vec<JobSummary>,
    /// Admission counters at the end of the drain.
    pub admission: AdmissionStats,
    /// Accounting trail of jobs shed under overload.
    pub shed: Vec<ShedRecord>,
    /// The drain stopped early on the `stop_after` budget.
    pub interrupted: bool,
}

impl ServerReport {
    /// Trials quarantined across all jobs.
    pub fn quarantined(&self) -> u64 {
        self.jobs.iter().map(|j| j.stats.quarantined).sum()
    }
}

/// The observation surface one [`Server::run_one`] reports into.
///
/// `observer` sees each [`TrialRecord`] right after it is journaled —
/// the daemon hangs its subscription fan-out there; the batch drain
/// passes a no-op. `metrics`/`heartbeat` are split so the daemon can
/// share one registry across threads (behind an `Arc`) while the
/// scheduler thread alone owns the heartbeat. `spans` accumulates
/// Chrome-trace spans across jobs, offset by `trace_base_us`.
pub(crate) struct RunHooks<'a> {
    pub spans: &'a mut Vec<(String, TrialRecord)>,
    pub trace_base_us: u64,
    pub metrics: Option<&'a HealthMetrics>,
    pub heartbeat: Option<&'a mut Heartbeat>,
    pub observer: &'a mut dyn FnMut(&TrialRecord),
}

/// The campaign job server.
///
/// Owns the **one** global [`WorkerPool`]: the pool's threads are
/// spawned when the server is built and shared by every job the
/// server ever drains (and, behind the daemon, by every submission
/// path), instead of a fresh per-job pool.
#[derive(Debug)]
pub struct Server {
    queue: JobQueue,
    pool: WorkerPool,
    config: ServerConfig,
}

impl Server {
    /// A server with an empty queue and a freshly started global pool.
    pub fn new(config: ServerConfig) -> Server {
        Server {
            queue: JobQueue::new(config.max_depth),
            pool: WorkerPool::start(config.worker_policy.pool_width().max(1)),
            config,
        }
    }

    /// The configuration the server runs under.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Submits a job through admission control.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, AdmitError> {
        self.queue.submit(spec)
    }

    /// The underlying queue (admission stats, depth, shed log).
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// The global worker pool every job runs on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// This campaign's journal path under the configured directory.
    pub fn journal_path(&self, id: JobId) -> PathBuf {
        self.config.journal_dir.join(format!("{id}.jsonl"))
    }

    /// This campaign's merged trial-log path.
    pub fn merged_log_path(&self, id: JobId) -> PathBuf {
        self.config.journal_dir.join(format!("{id}.trials.jsonl"))
    }

    /// Drains the queue: runs every queued job in priority order,
    /// journaling as it goes. Returns when the queue is empty or the
    /// `stop_after` budget is spent.
    pub fn run(&self) -> Result<ServerReport, JournalError> {
        std::fs::create_dir_all(&self.config.journal_dir)
            .map_err(|e| JournalError::Io { path: self.config.journal_dir.clone(), error: e })?;
        let mut report = ServerReport::default();
        let mut budget = self.config.stop_after;
        let mut spans: Vec<(String, TrialRecord)> = Vec::new();
        let mut trace_base_us = 0u64;
        // The heartbeat is written before the first job so an external
        // watcher sees a complete (if all-zero) status.json immediately;
        // only this first write propagates its IO error — later writes
        // are best-effort because a full disk must not kill a campaign
        // whose journal writes still succeed.
        let mut health: Option<(HealthMetrics, Heartbeat)> =
            self.config.status_path.as_ref().map(|p| (HealthMetrics::new(), Heartbeat::new(p)));
        if let Some((metrics, heartbeat)) = health.as_mut() {
            metrics.queue_depth.set(self.queue.depth() as u64);
            metrics.sync_admission(&self.queue.stats());
            heartbeat
                .write(metrics)
                .map_err(|e| JournalError::Io { path: heartbeat.path().to_path_buf(), error: e })?;
        }
        while let Some(spec) = self.queue.pop() {
            if budget == Some(0) {
                report.interrupted = true;
                break;
            }
            let (metrics, heartbeat) = match health.as_mut() {
                Some((m, h)) => (Some(&*m), Some(&mut *h)),
                None => (None, None),
            };
            let mut hooks = RunHooks {
                spans: &mut spans,
                trace_base_us,
                metrics,
                heartbeat,
                observer: &mut |_| {},
            };
            let summary = self.run_one(&spec, budget, &mut hooks)?;
            if let Some(b) = budget.as_mut() {
                *b = b.saturating_sub(summary.stats.executed);
            }
            trace_base_us += summary.stats.elapsed_us;
            if summary.state == JobState::Interrupted {
                report.interrupted = true;
                report.jobs.push(summary);
                break;
            }
            report.jobs.push(summary);
        }
        report.admission = self.queue.stats();
        report.shed = self.queue.shed_log();
        if let Some((metrics, heartbeat)) = health.as_mut() {
            metrics.queue_depth.set(self.queue.depth() as u64);
            metrics.sync_admission(&report.admission);
            let _ = heartbeat.write(metrics);
        }
        if let Some(path) = &self.config.trace_path {
            std::fs::write(path, trace_json(&spans, self.config.worker_policy.pool_width()))
                .map_err(|e| JournalError::Io { path: path.clone(), error: e })?;
        }
        Ok(report)
    }

    /// Runs one job on the global pool, journaling every record.
    pub(crate) fn run_one(
        &self,
        spec: &JobSpec,
        budget: Option<u64>,
        hooks: &mut RunHooks<'_>,
    ) -> Result<JobSummary, JournalError> {
        let metrics = hooks.metrics;
        let trace_base_us = hooks.trace_base_us;
        let id = spec.id();
        let journal_path = self.journal_path(id);
        let mut summary = JobSummary {
            id,
            name: spec.name.clone(),
            trials: 0,
            stats: JobRunStats::default(),
            state: JobState::Completed,
            journal: journal_path.clone(),
            merged_log: None,
            compaction: None,
        };
        let trials = match spec.trial_specs() {
            Ok(trials) => trials,
            Err(e) => {
                summary.state = JobState::Failed(e.to_string());
                return Ok(summary);
            }
        };
        summary.trials = trials.len() as u64;

        // A campaign resumed N times accretes events and superseded
        // records; compact before replaying so resume stays
        // O(unfinished trials) no matter how often it was interrupted.
        if self.config.resume {
            let report = Journal::compact(&journal_path, &spec.canonical())?;
            if let (true, Some(metrics)) = (report.compacted, metrics) {
                metrics.journal_compactions.inc();
                metrics.compaction_dropped.add(
                    report.dropped_events
                        + report.dropped_superseded
                        + u64::from(report.dropped_partial),
                );
            }
            summary.compaction = Some(report);
        }

        let (mut journal, recovery) = Journal::open(
            &journal_path,
            &spec.header(),
            &spec.canonical(),
            self.config.resume,
            self.config.sync_every,
        )?;
        // Completed trials are reused; quarantined ones get a fresh
        // chance on resume.
        let mut outcomes: HashMap<String, TrialOutcome> = HashMap::new();
        let mut skip: HashSet<String> = HashSet::new();
        for (label, logged) in &recovery.outcomes {
            if let LoggedOutcome::Done(o) = logged {
                outcomes.insert(label.clone(), *o);
                skip.insert(label.clone());
            }
        }
        let busy = if let Some(metrics) = metrics {
            journal.instrument(metrics.journal_write_ns.clone(), metrics.journal_fsync_ns.clone());
            metrics.trials_total.add(summary.trials);
            metrics.trials_reused.add(skip.len() as u64);
            metrics.queue_depth.set(self.queue.depth() as u64);
            Some(metrics.busy_workers.clone())
        } else {
            None
        };
        journal.append_event(
            "job-started",
            Value::object()
                .field("total", &summary.trials)
                .field("reused", &(skip.len() as u64))
                .build(),
        )?;

        let meter = RateMeter::start();
        let todo = summary.trials - skip.len() as u64;
        let mut done = 0u64;
        let mut journal_err: Option<JournalError> = None;
        let stats = self
            .pool
            .submit(&trials, &skip, &self.config.worker_policy, busy.as_ref())
            .collect(budget, |record| {
                if journal_err.is_some() {
                    return;
                }
                let append = match &record.outcome {
                    Ok(outcome) => {
                        outcomes.insert(record.label.clone(), *outcome);
                        journal.append_trial(&record.label, outcome)
                    }
                    Err(failure) => journal.append_quarantine(&record.label, failure),
                };
                if let Err(e) = append {
                    journal_err = Some(e);
                }
                hooks.spans.push((
                    spec.name.clone(),
                    TrialRecord { start_us: trace_base_us + record.start_us, ..record.clone() },
                ));
                done += 1;
                if self.config.progress {
                    // Stderr, not stdout: the stdout report is diffed
                    // byte-for-byte between runs by CI, and wall-clock
                    // rates legitimately differ.
                    eprintln!(
                        "flexserve: `{}` {done}/{todo} trials  {}",
                        spec.name,
                        meter.progress_column(done, todo),
                    );
                }
                if let Some(metrics) = metrics {
                    metrics.trials_executed.inc();
                    match &record.outcome {
                        Ok(_) if record.attempts > 1 => metrics.trials_retried.inc(),
                        Ok(_) => {}
                        Err(TrialFailure::Panicked { .. }) => metrics.trials_quarantined.inc(),
                    }
                    if let Some(hb) = hooks.heartbeat.as_deref_mut() {
                        let _ = hb.write(metrics);
                    }
                }
                (hooks.observer)(record);
            });
        if let Some(e) = journal_err {
            return Err(e);
        }
        summary.stats = stats;

        if stats.remaining > 0 {
            summary.state = JobState::Interrupted;
            journal.append_event(
                "job-interrupted",
                Value::object()
                    .field("executed", &stats.executed)
                    .field("remaining", &stats.remaining)
                    .build(),
            )?;
            journal.sync()?;
            return Ok(summary);
        }

        journal.append_event(
            "job-done",
            Value::object()
                .field("executed", &stats.executed)
                .field("reused", &stats.reused)
                .field("retried", &stats.retried)
                .field("quarantined", &stats.quarantined)
                .build(),
        )?;
        journal.sync()?;

        // The merged log: every trial's final outcome, in submission
        // order — the byte-level contract with `faultsweep`. Only
        // written when every trial actually has an outcome; a campaign
        // with quarantined holes keeps its journal but gets no merged
        // log until a resume heals it.
        if trials.iter().all(|t| outcomes.contains_key(&t.label)) {
            let merged = self.merged_log_path(id);
            write_merged_log(&merged, &trials, &outcomes)
                .map_err(|e| JournalError::Io { path: merged.clone(), error: e })?;
            summary.merged_log = Some(merged);
        }
        Ok(summary)
    }
}

fn write_merged_log(
    path: &Path,
    trials: &[TrialSpec],
    outcomes: &HashMap<String, TrialOutcome>,
) -> std::io::Result<()> {
    let mut text = String::new();
    for spec in trials {
        if let Some(outcome) = outcomes.get(&spec.label) {
            text.push_str(&serde::to_string(&trial::outcome_record(&spec.label, outcome)));
            text.push('\n');
        }
    }
    std::fs::write(path, text)
}

/// Renders worker/trial spans as Chrome trace-event JSON (the same
/// `traceEvents` shape `flexcore::obs` emits for the simulator, here
/// applied to the service: one timeline thread per worker, one `X`
/// span per trial attempt run).
fn trace_json(spans: &[(String, TrialRecord)], workers: usize) -> String {
    const PID: u64 = 1;
    let mut events = vec![Value::object()
        .field("name", &"process_name")
        .field("ph", &"M")
        .field("pid", &PID)
        .raw("args", Value::object().field("name", &"flexserve").build())
        .build()];
    for worker in 0..workers {
        events.push(
            Value::object()
                .field("name", &"thread_name")
                .field("ph", &"M")
                .field("pid", &PID)
                .field("tid", &(worker as u64 + 1))
                .raw("args", Value::object().field("name", &format!("worker-{worker}")).build())
                .build(),
        );
    }
    for (job, r) in spans {
        let quarantined = matches!(r.outcome, Err(TrialFailure::Panicked { .. }));
        events.push(
            Value::object()
                .field("name", &r.label)
                .field("ph", &"X")
                .field("ts", &r.start_us)
                .field("dur", &r.dur_us)
                .field("pid", &PID)
                .field("tid", &(r.worker as u64 + 1))
                .raw(
                    "args",
                    Value::object()
                        .field("job", job)
                        .field("attempts", &u64::from(r.attempts))
                        .field("quarantined", &quarantined)
                        .build(),
                )
                .build(),
        );
    }
    let doc = Value::object()
        .raw("traceEvents", Value::Array(events))
        .field("displayTimeUnit", &"ms")
        .raw("otherData", Value::object().field("clock", &"wall-microseconds").build())
        .build();
    serde::to_string(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flexserve-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmpdir");
        dir
    }

    fn small_job(name: &str, trials: usize) -> JobSpec {
        JobSpec {
            name: name.into(),
            trials,
            workloads: vec!["bitcount".into()],
            ..JobSpec::default()
        }
    }

    fn config(dir: &Path) -> ServerConfig {
        ServerConfig {
            journal_dir: dir.to_path_buf(),
            worker_policy: WorkerPolicy { workers: 2, ..WorkerPolicy::default() },
            ..ServerConfig::default()
        }
    }

    #[test]
    fn drains_completes_and_writes_the_merged_log_in_order() {
        let dir = tmpdir("drain");
        let server = Server::new(config(&dir));
        let spec = small_job("drain", 4);
        server.submit(spec.clone()).expect("admitted");
        let report = server.run().expect("drains");
        assert_eq!(report.jobs.len(), 1);
        let job = &report.jobs[0];
        assert_eq!(job.state, JobState::Completed);
        assert_eq!(job.stats.executed, 4);

        // The merged log matches a single-threaded reference, line for
        // line, in submission order.
        let merged =
            std::fs::read_to_string(job.merged_log.as_ref().expect("written")).expect("read");
        let expected: String = spec
            .trial_specs()
            .expect("expands")
            .iter()
            .map(|t| {
                serde::to_string(&trial::outcome_record(&t.label, &trial::run_trial(t, None)))
                    + "\n"
            })
            .collect();
        assert_eq!(merged, expected, "merged log is bit-identical to the clean run");
    }

    #[test]
    fn interrupted_drain_resumes_to_the_identical_merged_log() {
        let dir = tmpdir("resume");
        let spec = small_job("resume", 6);

        // Clean reference merged log.
        let clean_dir = tmpdir("resume-clean");
        let clean = Server::new(config(&clean_dir));
        clean.submit(spec.clone()).expect("admitted");
        let clean_report = clean.run().expect("drains");
        let clean_log =
            std::fs::read_to_string(clean_report.jobs[0].merged_log.as_ref().expect("log"))
                .expect("read");

        // Interrupt after 2 records, then resume.
        let mut cfg = config(&dir);
        cfg.stop_after = Some(2);
        let server = Server::new(cfg);
        server.submit(spec.clone()).expect("admitted");
        let report = server.run().expect("drains");
        assert!(report.interrupted);
        assert_eq!(report.jobs[0].state, JobState::Interrupted);
        assert!(report.jobs[0].merged_log.is_none(), "no merged log until completion");

        let mut cfg = config(&dir);
        cfg.resume = true;
        let server = Server::new(cfg);
        server.submit(spec.clone()).expect("admitted");
        let report = server.run().expect("drains");
        let job = &report.jobs[0];
        assert_eq!(job.state, JobState::Completed);
        assert!(job.stats.reused >= 2, "journaled trials were reused, not rerun");
        assert_eq!(job.stats.reused + job.stats.executed, 6, "zero lost, zero duplicated");
        let resumed_log =
            std::fs::read_to_string(job.merged_log.as_ref().expect("log")).expect("read");
        assert_eq!(resumed_log, clean_log, "resume reproduces the clean run exactly");
    }

    #[test]
    fn failed_spec_is_a_typed_summary_not_a_crash() {
        let dir = tmpdir("failed");
        let server = Server::new(config(&dir));
        server
            .submit(JobSpec { workloads: vec!["doom".into()], ..JobSpec::default() })
            .expect("admission does not expand trials");
        let report = server.run().expect("drains");
        let JobState::Failed(detail) = &report.jobs[0].state else {
            panic!("expected failure, got {:?}", report.jobs[0].state);
        };
        assert!(detail.contains("doom"), "{detail}");
    }

    #[test]
    fn status_heartbeat_tracks_the_drain_live() {
        let dir = tmpdir("status");
        let mut cfg = config(&dir);
        cfg.status_path = Some(dir.join("status.json"));
        let server = Server::new(cfg);
        server.submit(small_job("status", 4)).expect("admitted");
        let report = server.run().expect("drains");
        assert_eq!(report.jobs[0].stats.executed, 4);

        let doc = serde::from_str(&std::fs::read_to_string(dir.join("status.json")).expect("read"))
            .expect("status.json parses");
        // Initial write + 4 per-record writes + final write.
        assert_eq!(doc.get("seq").and_then(Value::as_u64), Some(6));
        let m = doc.get("metrics").expect("metrics nested");
        assert_eq!(m.get("trials_total").and_then(Value::as_u64), Some(4));
        assert_eq!(m.get("trials_executed").and_then(Value::as_u64), Some(4));
        assert_eq!(m.get("trials_quarantined").and_then(Value::as_u64), Some(0));
        assert_eq!(m.get("queue_depth").and_then(Value::as_u64), Some(0), "drained");
        assert_eq!(m.get("busy_workers").and_then(Value::as_u64), Some(0), "pool idle");
        // Every appended record went through the instrumented write
        // path: header event + 4 trials + done event.
        let writes = m.get("journal_write_ns").expect("histogram");
        assert_eq!(writes.get("count").and_then(Value::as_u64), Some(6));
        assert!(
            m.get("journal_fsync_ns")
                .and_then(|h| h.get("count"))
                .and_then(Value::as_u64)
                .is_some_and(|n| n >= 1),
            "the end-of-job fsync was timed"
        );
    }

    #[test]
    fn trace_file_holds_worker_and_trial_spans() {
        let dir = tmpdir("trace");
        let mut cfg = config(&dir);
        cfg.trace_path = Some(dir.join("trace.json"));
        let server = Server::new(cfg);
        server.submit(small_job("trace", 3)).expect("admitted");
        server.run().expect("drains");
        let doc = serde::from_str(&std::fs::read_to_string(dir.join("trace.json")).expect("read"))
            .expect("valid JSON");
        let events = match doc.get("traceEvents") {
            Some(Value::Array(events)) => events,
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        // 1 process meta + 2 worker metas + 3 trial spans.
        assert_eq!(events.len(), 6);
        let span = events.iter().find(|e| e.get("ph").and_then(Value::as_str) == Some("X"));
        let span = span.expect("at least one trial span");
        assert!(span.get("dur").and_then(Value::as_u64).is_some());
    }
}
