//! Phase taxonomy and the zero-cost-when-disabled phase clock.
//!
//! The simulator is generic over [`PhaseClock`] exactly the way it is
//! generic over `flexcore::obs::TraceSink`: the default
//! [`NullPhaseClock`] carries `ENABLED = false` as an associated
//! constant, every instrumentation site guards on it, and the
//! optimizer deletes the whole hook — no `Instant::now()`, no store,
//! no branch at run time. [`PhaseProfiler`] is the enabled
//! implementation used by `flexprof`.

use std::time::Instant;

use serde::{Serialize, Value};

use crate::hist::Log2Histogram;

/// Where simulator host time can be attributed. One variant per
/// instrumented span; see DESIGN.md "Telemetry & profiling" for the
/// exact boundaries of each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Instruction fetch (icache lookup, bus refill) through decode.
    FetchDecode,
    /// Functional execution of the decoded instruction (ALU, branches,
    /// loads/stores against the dcache model).
    Execute,
    /// Monitoring-extension processing on the fabric model, *excluding*
    /// time spent inside metadata-cache accesses (counted separately
    /// under [`Phase::MetaCache`] so the two never double-book).
    FabricEval,
    /// Core→fabric FIFO traffic: packet push on commit, plus the
    /// forwarding-policy bookkeeping around it.
    Fifo,
    /// Metadata-cache reads/writes issued by extensions via `ExtEnv`.
    MetaCache,
    /// Architectural checkpoint capture (snapshot serialization).
    Checkpoint,
    /// Campaign-journal record appends (buffered write syscall).
    JournalWrite,
    /// Campaign-journal fsync epochs (durability barrier).
    JournalFsync,
}

impl Phase {
    /// Number of phases (array dimension for [`PhaseStats`]).
    pub const COUNT: usize = 8;

    /// Every phase, in fixed presentation order.
    pub fn all() -> [Phase; Phase::COUNT] {
        [
            Phase::FetchDecode,
            Phase::Execute,
            Phase::FabricEval,
            Phase::Fifo,
            Phase::MetaCache,
            Phase::Checkpoint,
            Phase::JournalWrite,
            Phase::JournalFsync,
        ]
    }

    /// Dense index, `0 .. COUNT`.
    pub fn index(self) -> usize {
        match self {
            Phase::FetchDecode => 0,
            Phase::Execute => 1,
            Phase::FabricEval => 2,
            Phase::Fifo => 3,
            Phase::MetaCache => 4,
            Phase::Checkpoint => 5,
            Phase::JournalWrite => 6,
            Phase::JournalFsync => 7,
        }
    }

    /// Stable snake_case name used in `BENCH_profile.json` and
    /// exposition output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::FetchDecode => "fetch_decode",
            Phase::Execute => "execute",
            Phase::FabricEval => "fabric_eval",
            Phase::Fifo => "fifo",
            Phase::MetaCache => "meta_cache",
            Phase::Checkpoint => "checkpoint",
            Phase::JournalWrite => "journal_write",
            Phase::JournalFsync => "journal_fsync",
        }
    }
}

/// Per-phase host-time accounting: span count, total nanoseconds, and
/// a log₂ latency histogram per phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    counts: [u64; Phase::COUNT],
    total_ns: [u64; Phase::COUNT],
    hists: [Log2Histogram; Phase::COUNT],
}

impl PhaseStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one span of `ns` nanoseconds against `phase`.
    #[inline]
    pub fn record(&mut self, phase: Phase, ns: u64) {
        let i = phase.index();
        self.counts[i] = self.counts[i].saturating_add(1);
        self.total_ns[i] = self.total_ns[i].saturating_add(ns);
        self.hists[i].record(ns);
    }

    /// Spans recorded against `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Total nanoseconds attributed to `phase`.
    pub fn total_ns(&self, phase: Phase) -> u64 {
        self.total_ns[phase.index()]
    }

    /// The latency histogram for `phase`.
    pub fn hist(&self, phase: Phase) -> &Log2Histogram {
        &self.hists[phase.index()]
    }

    /// Total nanoseconds attributed across all phases.
    pub fn grand_total_ns(&self) -> u64 {
        self.total_ns.iter().fold(0u64, |a, &n| a.saturating_add(n))
    }

    /// Folds another stats block into this one (shard merge).
    pub fn merge(&mut self, other: &PhaseStats) {
        for p in Phase::all() {
            let i = p.index();
            self.counts[i] = self.counts[i].saturating_add(other.counts[i]);
            self.total_ns[i] = self.total_ns[i].saturating_add(other.total_ns[i]);
            self.hists[i].merge(&other.hists[i]);
        }
    }
}

impl Serialize for PhaseStats {
    fn to_value(&self) -> Value {
        let mut obj = Value::object();
        for p in Phase::all() {
            if self.count(p) == 0 {
                continue;
            }
            obj = obj.raw(
                p.name(),
                Value::object()
                    .field("count", &self.count(p))
                    .field("total_ns", &self.total_ns(p))
                    .field("hist", self.hist(p))
                    .build(),
            );
        }
        obj.build()
    }
}

/// The phase-attribution hook the simulator is generic over.
///
/// Implementations are either [`NullPhaseClock`] (a ZST with
/// `ENABLED = false`; every hook folds away) or [`PhaseProfiler`]
/// (wall-clock attribution into a [`PhaseStats`]). Instrumentation
/// sites use the `begin`/`commit` pair, which performs clock reads
/// only when `ENABLED`.
pub trait PhaseClock {
    /// Compile-time switch; when `false` the call sites optimize out.
    const ENABLED: bool;

    /// Records a finished span. No-op on the null clock.
    fn record(&mut self, phase: Phase, ns: u64);

    /// Accumulated stats, when this clock keeps any.
    fn stats(&self) -> Option<&PhaseStats> {
        None
    }

    /// Mutable stats, for lending to nested components (e.g. `ExtEnv`
    /// timing metadata-cache accesses on the simulator's behalf).
    fn stats_mut(&mut self) -> Option<&mut PhaseStats> {
        None
    }

    /// Opens a span: a timestamp when enabled, `None` (free) when not.
    #[inline]
    fn begin(&self) -> Option<Instant> {
        if Self::ENABLED {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a span opened by [`PhaseClock::begin`].
    #[inline]
    fn commit(&mut self, phase: Phase, started: Option<Instant>) {
        if !Self::ENABLED {
            return;
        }
        if let Some(t) = started {
            self.record(phase, t.elapsed().as_nanos() as u64);
        }
    }
}

/// The telemetry-off clock: zero-sized, `ENABLED = false`, so the
/// compiler deletes every instrumentation site. This is the default
/// for every entry point except `flexprof`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullPhaseClock;

impl PhaseClock for NullPhaseClock {
    const ENABLED: bool = false;

    #[inline]
    fn record(&mut self, _phase: Phase, _ns: u64) {}
}

/// Wall-clock phase profiler: attributes real elapsed time into a
/// [`PhaseStats`]. Costs two monotonic clock reads per span.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfiler {
    stats: PhaseStats,
}

impl PhaseProfiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the profiler, yielding its stats.
    pub fn into_stats(self) -> PhaseStats {
        self.stats
    }
}

impl PhaseClock for PhaseProfiler {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, phase: Phase, ns: u64) {
        self.stats.record(phase, ns);
    }

    fn stats(&self) -> Option<&PhaseStats> {
        Some(&self.stats)
    }

    fn stats_mut(&mut self) -> Option<&mut PhaseStats> {
        Some(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_clock_is_disabled_and_zero_sized() {
        const _: () = assert!(!NullPhaseClock::ENABLED);
        assert_eq!(std::mem::size_of::<NullPhaseClock>(), 0);
        // begin() must not touch the clock when disabled.
        assert!(NullPhaseClock.begin().is_none());
    }

    #[test]
    fn phase_indices_are_dense_and_names_stable() {
        for (i, p) in Phase::all().iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Phase::all().len(), Phase::COUNT);
        assert_eq!(Phase::FabricEval.name(), "fabric_eval");
    }

    #[test]
    fn profiler_attributes_spans() {
        let mut prof = PhaseProfiler::new();
        let t = prof.begin();
        assert!(t.is_some());
        prof.commit(Phase::Fifo, t);
        prof.record(Phase::Fifo, 1_000);
        let stats = prof.stats().expect("profiler keeps stats");
        assert_eq!(stats.count(Phase::Fifo), 2);
        assert!(stats.total_ns(Phase::Fifo) >= 1_000);
        assert_eq!(stats.count(Phase::Execute), 0);
        assert_eq!(stats.hist(Phase::Fifo).count(), 2);
    }

    #[test]
    fn merge_accumulates_across_shards() {
        let mut a = PhaseStats::new();
        let mut b = PhaseStats::new();
        a.record(Phase::Execute, 10);
        b.record(Phase::Execute, 30);
        b.record(Phase::Checkpoint, 5);
        a.merge(&b);
        assert_eq!(a.count(Phase::Execute), 2);
        assert_eq!(a.total_ns(Phase::Execute), 40);
        assert_eq!(a.count(Phase::Checkpoint), 1);
        assert_eq!(a.grand_total_ns(), 45);
    }

    #[test]
    fn serialize_emits_only_touched_phases() {
        let mut s = PhaseStats::new();
        s.record(Phase::MetaCache, 128);
        let v = s.to_value();
        assert!(v.get("meta_cache").is_some());
        assert!(v.get("execute").is_none());
        let mc = v.get("meta_cache").unwrap();
        assert_eq!(mc.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(mc.get("total_ns").and_then(Value::as_u64), Some(128));
    }
}
