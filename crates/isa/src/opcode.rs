//! Opcode definitions and their SPARC V8 encodings.

use std::fmt;

/// Every instruction mnemonic the model implements.
///
/// The set is the SPARC V8 integer subset used by the workloads plus the
/// co-processor opcode spaces (`cpop1`/`cpop2`) that FlexCore uses for
/// software-visible monitor operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Opcode {
    // Format-3 ALU, op = 2 (no condition codes).
    Add,
    And,
    Or,
    Xor,
    Sub,
    Andn,
    Orn,
    Xnor,
    // Format-3 ALU, condition-code-setting variants.
    Addcc,
    Andcc,
    Orcc,
    Xorcc,
    Subcc,
    Andncc,
    Orncc,
    Xnorcc,
    // Multiply / divide (the `%y` register is not modeled; see crate
    // docs).
    Umul,
    Smul,
    Udiv,
    Sdiv,
    // Shifts.
    Sll,
    Srl,
    Sra,
    // Control transfer and window ops.
    Jmpl,
    Save,
    Restore,
    /// Trap on condition (`ta`, `te`, …). Workloads use `ta` to halt.
    Ticc,
    // Co-processor opcode spaces (FlexCore software-visible ops).
    Cpop1,
    Cpop2,
    // Format-3 memory, op = 3.
    Ld,
    Ldub,
    Lduh,
    Ldsb,
    Ldsh,
    St,
    Stb,
    Sth,
    /// Doubleword load into an even/odd register pair.
    Ldd,
    /// Doubleword store from an even/odd register pair.
    Std,
    /// Atomic swap of a register with a memory word.
    Swap,
    // Format 2.
    Sethi,
    /// Conditional branch family (`b<cond>`); the condition lives in the
    /// instruction, not the opcode.
    Bicc,
    // Format 1.
    Call,
}

impl Opcode {
    /// The `op3` field for format-3 opcodes, or `None` for format-1/2
    /// opcodes.
    pub fn op3(self) -> Option<u32> {
        use Opcode::*;
        let v = match self {
            Add => 0x00,
            And => 0x01,
            Or => 0x02,
            Xor => 0x03,
            Sub => 0x04,
            Andn => 0x05,
            Orn => 0x06,
            Xnor => 0x07,
            Addcc => 0x10,
            Andcc => 0x11,
            Orcc => 0x12,
            Xorcc => 0x13,
            Subcc => 0x14,
            Andncc => 0x15,
            Orncc => 0x16,
            Xnorcc => 0x17,
            Umul => 0x0a,
            Smul => 0x0b,
            Udiv => 0x0e,
            Sdiv => 0x0f,
            Sll => 0x25,
            Srl => 0x26,
            Sra => 0x27,
            Jmpl => 0x38,
            Ticc => 0x3a,
            Save => 0x3c,
            Restore => 0x3d,
            Cpop1 => 0x36,
            Cpop2 => 0x37,
            Ld => 0x00,
            Ldub => 0x01,
            Lduh => 0x02,
            Ldsb => 0x09,
            Ldsh => 0x0a,
            St => 0x04,
            Stb => 0x05,
            Sth => 0x06,
            Ldd => 0x03,
            Std => 0x07,
            Swap => 0x0f,
            Sethi | Bicc | Call => return None,
        };
        Some(v)
    }

    /// Whether this opcode is a memory access (format 3 with `op = 3`).
    pub fn is_mem(self) -> bool {
        use Opcode::*;
        matches!(self, Ld | Ldub | Lduh | Ldsb | Ldsh | St | Stb | Sth | Ldd | Std | Swap)
    }

    /// Whether this opcode is a load. `swap` both loads and stores and
    /// answers `false` here (callers treat it explicitly).
    pub fn is_load(self) -> bool {
        use Opcode::*;
        matches!(self, Ld | Ldub | Lduh | Ldsb | Ldsh | Ldd)
    }

    /// Whether this opcode is a store. `swap` both loads and stores and
    /// answers `false` here (callers treat it explicitly).
    pub fn is_store(self) -> bool {
        use Opcode::*;
        matches!(self, St | Stb | Sth | Std)
    }

    /// Whether this opcode updates the integer condition codes.
    pub fn sets_icc(self) -> bool {
        use Opcode::*;
        matches!(self, Addcc | Andcc | Orcc | Xorcc | Subcc | Andncc | Orncc | Xnorcc)
    }

    /// The access width in bytes for memory opcodes (word loads/stores
    /// are 4, halfword 2, byte 1); `None` for non-memory opcodes.
    pub fn access_bytes(self) -> Option<u32> {
        use Opcode::*;
        match self {
            Ld | St | Swap => Some(4),
            Ldd | Std => Some(8),
            Lduh | Ldsh | Sth => Some(2),
            Ldub | Ldsb | Stb => Some(1),
            _ => None,
        }
    }

    /// Assembly mnemonic. `Bicc` and `Ticc` return their family prefix
    /// (`"b"` / `"t"`) since the full mnemonic depends on the condition.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sub => "sub",
            Andn => "andn",
            Orn => "orn",
            Xnor => "xnor",
            Addcc => "addcc",
            Andcc => "andcc",
            Orcc => "orcc",
            Xorcc => "xorcc",
            Subcc => "subcc",
            Andncc => "andncc",
            Orncc => "orncc",
            Xnorcc => "xnorcc",
            Umul => "umul",
            Smul => "smul",
            Udiv => "udiv",
            Sdiv => "sdiv",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Jmpl => "jmpl",
            Save => "save",
            Restore => "restore",
            Ticc => "t",
            Cpop1 => "cpop1",
            Cpop2 => "cpop2",
            Ld => "ld",
            Ldub => "ldub",
            Lduh => "lduh",
            Ldsb => "ldsb",
            Ldsh => "ldsh",
            St => "st",
            Stb => "stb",
            Sth => "sth",
            Ldd => "ldd",
            Std => "std",
            Swap => "swap",
            Sethi => "sethi",
            Bicc => "b",
            Call => "call",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op3_values_are_unique_per_format() {
        use std::collections::HashSet;
        let alu: Vec<Opcode> = [
            Opcode::Add,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Sub,
            Opcode::Andn,
            Opcode::Orn,
            Opcode::Xnor,
            Opcode::Addcc,
            Opcode::Andcc,
            Opcode::Orcc,
            Opcode::Xorcc,
            Opcode::Subcc,
            Opcode::Andncc,
            Opcode::Orncc,
            Opcode::Xnorcc,
            Opcode::Umul,
            Opcode::Smul,
            Opcode::Udiv,
            Opcode::Sdiv,
            Opcode::Sll,
            Opcode::Srl,
            Opcode::Sra,
            Opcode::Jmpl,
            Opcode::Ticc,
            Opcode::Save,
            Opcode::Restore,
            Opcode::Cpop1,
            Opcode::Cpop2,
        ]
        .into();
        let mem = [
            Opcode::Ld,
            Opcode::Ldub,
            Opcode::Lduh,
            Opcode::Ldsb,
            Opcode::Ldsh,
            Opcode::St,
            Opcode::Stb,
            Opcode::Sth,
            Opcode::Ldd,
            Opcode::Std,
            Opcode::Swap,
        ];
        let alu_set: HashSet<u32> = alu.iter().map(|o| o.op3().unwrap()).collect();
        assert_eq!(alu_set.len(), alu.len());
        let mem_set: HashSet<u32> = mem.iter().map(|o| o.op3().unwrap()).collect();
        assert_eq!(mem_set.len(), mem.len());
    }

    #[test]
    fn classification_predicates() {
        assert!(Opcode::Ld.is_mem());
        assert!(Opcode::Ld.is_load());
        assert!(!Opcode::Ld.is_store());
        assert!(Opcode::Stb.is_store());
        assert!(Opcode::Subcc.sets_icc());
        assert!(!Opcode::Sub.sets_icc());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn access_widths() {
        assert_eq!(Opcode::Ld.access_bytes(), Some(4));
        assert_eq!(Opcode::Sth.access_bytes(), Some(2));
        assert_eq!(Opcode::Ldsb.access_bytes(), Some(1));
        assert_eq!(Opcode::Add.access_bytes(), None);
    }
}
