/root/repo/target/debug/deps/flexcore_mem-a7b85633336e291a.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

/root/repo/target/debug/deps/libflexcore_mem-a7b85633336e291a.rmeta: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/serde_impls.rs crates/mem/src/storebuf.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/mainmem.rs:
crates/mem/src/metacache.rs:
crates/mem/src/serde_impls.rs:
crates/mem/src/storebuf.rs:
