//! Reconfigurable-fabric and ASIC cost models.
//!
//! The paper evaluates each monitoring extension twice: synthesized to a
//! 65-nm ASIC flow (Synopsys DC, IBM library) and mapped to a Virtex-5
//! FPGA fabric (Synplify + ISE), then converts LUT counts to silicon
//! area with the Kuon–Rose CLB-tile model (≈ 807 µm² per 6-LUT at
//! 65 nm) and to power with the Virtex-5 power spreadsheet.
//!
//! None of those tools exist here, so this crate implements the same
//! pipeline from scratch:
//!
//! * [`Netlist`] / [`NetlistBuilder`] — a gate-level IR (AND/OR/XOR/
//!   NOT/MUX/DFF plus RAM and register-file macro blocks) with
//!   word-level construction helpers and a functional simulator,
//! * [`map_to_luts`] — a greedy 6-feasible-cone technology mapper that
//!   reports LUT count and LUT depth, with a property-tested guarantee
//!   that the mapped network computes the same function,
//! * [`FpgaCost`] — Kuon–Rose area, LUT-depth frequency, and
//!   spreadsheet-style dynamic power (fixed toggle rate 0.1, static
//!   probability 0.5, as in the paper §V.A),
//! * [`AsicCost`] — NAND2-equivalent standard-cell area/power and a
//!   logic-depth frequency estimate for the same netlist,
//! * [`calib`] — every constant, each documented with its source and
//!   the paper row it was calibrated against.
//!
//! The FlexCore extension datapaths (in the `flexcore` crate) emit
//! their logic as [`Netlist`]s, so the Table III reproduction is
//! *derived* from the same circuit description on both flows rather
//! than hard-coded.
//!
//! # Example
//!
//! ```
//! use flexcore_fabric::{map_to_luts, to_bitstream, AsicCost, FpgaCost, NetlistBuilder};
//!
//! // A 16-bit equality comparator.
//! let mut b = NetlistBuilder::new("eq16");
//! let x = b.input_bus(16);
//! let y = b.input_bus(16);
//! let eq = b.eq(&x, &y);
//! b.output("eq", eq);
//! let netlist = b.finish();
//!
//! let mapping = map_to_luts(&netlist, 6);
//! assert!(mapping.lut_count() >= 4);            // a handful of 6-LUTs
//! let fpga = FpgaCost::of(&netlist);
//! let asic = AsicCost::of(&netlist);
//! assert!(asic.area_um2() < fpga.area_um2());   // LUTs cost silicon
//! let bitstream = to_bitstream(&mapping);       // §III.F configuration
//! assert!(!bitstream.is_empty());
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod bitstream;
pub mod calib;
mod cost;
mod lutmap;
mod netlist;
pub mod reconfig;
mod vcd;

pub use bitstream::{from_bitstream, to_bitstream, BitstreamError, VERSION as BITSTREAM_VERSION};
pub use cost::{AsicCost, FpgaCost, MacroCost};
pub use lutmap::{map_to_luts, Lut, LutMapping};
pub use netlist::{Bus, Gate, MacroBlock, Net, Netlist, NetlistBuilder};
pub use reconfig::{
    segment_bitstream, verify_consistent, Frame, PartialRegion, ReconfigError, RegionState,
    FRAME_BYTES,
};
pub use vcd::{vcd_signal_count, write_vcd};
