/root/repo/target/debug/deps/fig5-0dbd14755570e806.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-0dbd14755570e806.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
