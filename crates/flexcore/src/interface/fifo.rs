//! The forward FIFO occupancy model.

use std::collections::VecDeque;

/// Timing model of the core→fabric forward FIFO.
///
/// The FIFO decouples the commit stage from the fabric: the core
/// enqueues a trace packet per monitored instruction; the fabric
/// dequeues one per fabric cycle (slower when a meta-data miss blocks
/// its pipeline). An entry occupies the FIFO from its enqueue until the
/// fabric *accepts* it, so what the model tracks per entry is its
/// scheduled dequeue time.
///
/// With an [`Always`](crate::ForwardPolicy::Always) policy a full FIFO
/// stalls the commit stage — exactly the paper's Figure 5 mechanism.
///
/// # Example
///
/// ```
/// use flexcore::ForwardFifo;
/// let mut fifo = ForwardFifo::new(2);
/// assert_eq!(fifo.push(0, 10), 0);   // dequeued by the fabric at 10
/// assert_eq!(fifo.push(1, 20), 1);   // second slot
/// assert_eq!(fifo.push(2, 30), 10);  // full: commit waits for slot
/// ```
#[derive(Clone, Debug)]
pub struct ForwardFifo {
    depth: usize,
    /// Scheduled dequeue time of each resident entry, oldest first.
    dequeues: VecDeque<u64>,
    stall_cycles: u64,
    peak_occupancy: usize,
}

/// Complete checkpointable state of a [`ForwardFifo`] (the depth is
/// construction state and is not included).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FifoSnapshot {
    /// Scheduled dequeue time of each resident entry, oldest first.
    pub dequeues: Vec<u64>,
    /// Total commit-stall cycles caused by a full FIFO.
    pub stall_cycles: u64,
    /// Highest occupancy observed.
    pub peak_occupancy: u64,
}

impl ForwardFifo {
    /// Creates a FIFO with `depth` entries (the paper's default is 64).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> ForwardFifo {
        assert!(depth > 0, "FIFO needs at least one entry");
        ForwardFifo {
            depth,
            dequeues: VecDeque::with_capacity(depth),
            stall_cycles: 0,
            peak_occupancy: 0,
        }
    }

    /// Configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    fn retire(&mut self, now: u64) {
        while self.dequeues.front().is_some_and(|&d| d <= now) {
            self.dequeues.pop_front();
        }
    }

    /// Occupancy at cycle `now`.
    pub fn occupancy(&mut self, now: u64) -> usize {
        self.retire(now);
        self.dequeues.len()
    }

    /// Whether the FIFO is full at cycle `now`.
    pub fn is_full(&mut self, now: u64) -> bool {
        self.occupancy(now) >= self.depth
    }

    /// Enqueues an entry at cycle `now` whose fabric dequeue is
    /// scheduled at `dequeue_at`; returns the cycle at which the commit
    /// stage may proceed (later than `now` only if the FIFO was full).
    pub fn push(&mut self, now: u64, dequeue_at: u64) -> u64 {
        self.retire(now);
        let proceed_at = if self.dequeues.len() < self.depth {
            now
        } else {
            let oldest = self.dequeues.pop_front().expect("full implies nonempty");
            self.stall_cycles += oldest - now;
            oldest
        };
        self.dequeues.push_back(dequeue_at.max(proceed_at));
        self.peak_occupancy = self.peak_occupancy.max(self.dequeues.len());
        proceed_at
    }

    /// The cycle at which a slot becomes available for a new entry:
    /// `now` when the FIFO has room, otherwise the oldest entry's
    /// dequeue time.
    pub fn empty_slot_at(&mut self, now: u64) -> u64 {
        self.retire(now);
        if self.dequeues.len() < self.depth {
            now
        } else {
            *self.dequeues.front().expect("full implies nonempty")
        }
    }

    /// Resident entries right now, *without* retiring anything —
    /// unlike [`occupancy`](ForwardFifo::occupancy), which advances
    /// the retire clock first. This is the value
    /// [`peak_occupancy`](ForwardFifo::peak_occupancy) tracks after
    /// each push, so occupancy samples taken here are exactly
    /// consistent with the peak.
    pub fn resident(&self) -> usize {
        self.dequeues.len()
    }

    /// Cycle at which the FIFO drains completely (the EMPTY signal;
    /// used before traps and at program end).
    pub fn empty_at(&self, now: u64) -> u64 {
        self.dequeues.back().copied().unwrap_or(now).max(now)
    }

    /// Total commit-stall cycles caused by a full FIFO.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Highest occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Captures the FIFO's complete run-time state.
    pub fn snapshot(&self) -> FifoSnapshot {
        FifoSnapshot {
            dequeues: self.dequeues.iter().copied().collect(),
            stall_cycles: self.stall_cycles,
            peak_occupancy: self.peak_occupancy as u64,
        }
    }

    /// Restores state captured by [`ForwardFifo::snapshot`] onto a FIFO
    /// of the same configured depth.
    pub fn restore(&mut self, snap: &FifoSnapshot) {
        self.dequeues = snap.dequeues.iter().copied().collect();
        self.stall_cycles = snap.stall_cycles;
        self.peak_occupancy = snap.peak_occupancy as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_leave_at_their_dequeue_time() {
        let mut f = ForwardFifo::new(4);
        f.push(0, 100);
        f.push(0, 110);
        assert_eq!(f.occupancy(50), 2);
        assert_eq!(f.occupancy(105), 1);
        assert_eq!(f.occupancy(200), 0);
    }

    #[test]
    fn full_fifo_stalls_until_oldest_dequeues() {
        let mut f = ForwardFifo::new(2);
        f.push(0, 40);
        f.push(0, 80);
        let proceed = f.push(10, 120);
        assert_eq!(proceed, 40);
        assert_eq!(f.stall_cycles(), 30);
    }

    #[test]
    fn deep_fifo_absorbs_bursts() {
        let mut deep = ForwardFifo::new(64);
        let mut shallow = ForwardFifo::new(4);
        // A burst of 20 packets at t=0..20, fabric drains 1 per 4
        // cycles.
        for i in 0..20u64 {
            deep.push(i, (i + 1) * 4);
            shallow.push(i, (i + 1) * 4);
        }
        assert_eq!(deep.stall_cycles(), 0);
        assert!(shallow.stall_cycles() > 0);
    }

    #[test]
    fn empty_at_reports_drain_time() {
        let mut f = ForwardFifo::new(4);
        assert_eq!(f.empty_at(7), 7);
        f.push(0, 30);
        f.push(0, 90);
        assert_eq!(f.empty_at(10), 90);
    }

    #[test]
    fn peak_occupancy_tracks_high_water_mark() {
        let mut f = ForwardFifo::new(8);
        for i in 0..5 {
            f.push(i, 1000);
        }
        assert_eq!(f.peak_occupancy(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_depth_rejected() {
        let _ = ForwardFifo::new(0);
    }
}
