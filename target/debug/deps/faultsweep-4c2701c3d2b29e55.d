/root/repo/target/debug/deps/faultsweep-4c2701c3d2b29e55.d: crates/bench/src/bin/faultsweep.rs

/root/repo/target/debug/deps/libfaultsweep-4c2701c3d2b29e55.rmeta: crates/bench/src/bin/faultsweep.rs

crates/bench/src/bin/faultsweep.rs:
