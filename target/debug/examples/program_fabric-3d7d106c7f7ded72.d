/root/repo/target/debug/examples/program_fabric-3d7d106c7f7ded72.d: examples/program_fabric.rs

/root/repo/target/debug/examples/program_fabric-3d7d106c7f7ded72: examples/program_fabric.rs

examples/program_fabric.rs:
