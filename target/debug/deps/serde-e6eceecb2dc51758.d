/root/repo/target/debug/deps/serde-e6eceecb2dc51758.d: crates/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-e6eceecb2dc51758.rmeta: crates/serde/src/lib.rs Cargo.toml

crates/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
