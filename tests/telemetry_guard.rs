//! The telemetry overhead contract, enforced:
//!
//! * the disabled path is *structurally* free — [`NullPhaseClock`] is a
//!   zero-sized type with `ENABLED = false`, so every hook in the step
//!   loop is compiled out (no clock reads, no stores, no allocation:
//!   there is no storage to allocate into);
//! * profiling is *transparent* — a profiled run produces the same
//!   architectural [`RunResult`] as an unprofiled one, bit for bit;
//! * (env-gated) the disabled path's throughput is not measurably
//!   slower than the live-profiler path, which it strictly
//!   under-works.
//!
//! [`NullPhaseClock`]: flexcore_suite::telemetry::NullPhaseClock
//! [`RunResult`]: flexcore_suite::flexcore::RunResult

use flexcore_suite::flexcore::ext::Umc;
use flexcore_suite::flexcore::obs::NullSink;
use flexcore_suite::flexcore::{RunResult, System, SystemConfig};
use flexcore_suite::telemetry::{NullPhaseClock, Phase, PhaseClock, PhaseProfiler};
use flexcore_suite::workloads::Workload;

const BUDGET: u64 = 200_000_000;

fn run_disabled(workload: &Workload) -> RunResult {
    let program = workload.program().expect("assembles");
    let mut sys = System::new(SystemConfig::fabric_half_speed(), Umc::new());
    sys.load_program(&program);
    sys.try_run(BUDGET).expect("clean run")
}

fn run_profiled(workload: &Workload) -> (RunResult, flexcore_suite::telemetry::PhaseStats) {
    let program = workload.program().expect("assembles");
    let mut sys = System::with_profiler(
        SystemConfig::fabric_half_speed(),
        Umc::new(),
        NullSink,
        PhaseProfiler::new(),
    );
    sys.load_program(&program);
    let r = sys.try_run(BUDGET).expect("clean run");
    (r, sys.into_profiler().into_stats())
}

#[test]
fn null_phase_clock_is_a_zst_with_every_hook_compiled_out() {
    // Compile-time facts, asserted so a refactor cannot silently turn
    // the disabled path into a real one.
    const _: () = assert!(!NullPhaseClock::ENABLED, "the null clock must stay disabled");
    assert_eq!(std::mem::size_of::<NullPhaseClock>(), 0, "no storage, so nothing to allocate");
    // `begin()` on a disabled clock never reads the OS clock.
    assert!(NullPhaseClock.begin().is_none());
    // And `record` through the trait is a no-op, not a panic.
    NullPhaseClock.record(Phase::Execute, 42);
}

#[test]
fn profiling_is_architecturally_transparent() {
    let workload = Workload::bitcount();
    let disabled = run_disabled(&workload);
    let (profiled, stats) = run_profiled(&workload);
    // `RunResult::eq` compares every architectural field and excludes
    // only `host_ns` — so this is the bit-exactness claim.
    assert_eq!(disabled, profiled, "the profiler observed the run without changing it");
    assert!(disabled.host_ns > 0 && profiled.host_ns > 0, "both runs kept wall-clock");
    // The profiler actually attributed time to the hot phases.
    assert_eq!(stats.count(Phase::FetchDecode), profiled.instret + 1);
    assert_eq!(stats.count(Phase::Execute), profiled.instret);
    assert!(stats.total_ns(Phase::Execute) > 0);
}

/// Env-gated (timing on shared runners is noisy): with
/// `FLEXPROF_GUARD=1`, assert the disabled path is not slower than the
/// live-profiler path — the disabled path does strictly less work, so
/// falling behind it means `NullPhaseClock` stopped being free.
#[test]
fn disabled_path_is_not_slower_than_the_profiled_path() {
    if std::env::var("FLEXPROF_GUARD").as_deref() != Ok("1") {
        eprintln!("skipping throughput guard (set FLEXPROF_GUARD=1 to enable)");
        return;
    }
    let workload = Workload::bitcount();
    // Warm-up, then best-of-3 each to shave scheduler noise.
    let _ = run_disabled(&workload);
    let disabled_ns = (0..3).map(|_| run_disabled(&workload).host_ns).min().expect("three runs");
    let profiled_ns = (0..3).map(|_| run_profiled(&workload).0.host_ns).min().expect("three runs");
    // 10% noise floor on top of "not slower".
    assert!(
        disabled_ns as f64 <= profiled_ns as f64 * 1.10,
        "disabled path ({disabled_ns} ns) slower than profiled path ({profiled_ns} ns): \
         the null clock has acquired real overhead"
    );
}
