//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds offline, so criterion is unavailable; the four
//! `cargo bench` targets instead use this harness: warm-up pass, N
//! timed samples, median/min/max report. Good enough to spot
//! order-of-magnitude regressions in the simulator hot loops.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs closures repeatedly and prints a median/min/max summary line.
pub struct Harness {
    samples: u32,
}

impl Default for Harness {
    fn default() -> Self {
        Harness { samples: 10 }
    }
}

impl Harness {
    /// Harness taking 10 samples per benchmark (criterion's old
    /// `sample_size(10)` setting).
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the sample count.
    pub fn with_samples(samples: u32) -> Self {
        Harness { samples: samples.max(1) }
    }

    /// Times `f` and prints one summary line tagged `name`. The return
    /// value is routed through [`black_box`] so the work is not
    /// optimized away.
    pub fn run<T, F: FnMut() -> T>(&self, name: &str, mut f: F) {
        black_box(f()); // warm-up (page in code + data)
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        let (min, max) = (times[0], times[times.len() - 1]);
        println!("{name:<36} median {median:>12.3?}   min {min:>12.3?}   max {max:>12.3?}");
    }
}
