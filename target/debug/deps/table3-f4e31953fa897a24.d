/root/repo/target/debug/deps/table3-f4e31953fa897a24.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-f4e31953fa897a24: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
