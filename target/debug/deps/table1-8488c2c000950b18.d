/root/repo/target/debug/deps/table1-8488c2c000950b18.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-8488c2c000950b18: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
