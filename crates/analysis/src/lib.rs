//! Static verification for both halves of the FlexCore artifact.
//!
//! The dynamic monitors (UMC, DIFT, BC, …) check one committed
//! instruction at a time; this crate is the complementary *static*
//! oracle. It proves properties of the artifacts before any cycle is
//! simulated, in two passes:
//!
//! * [`analyze_program`] — recovers a delay-slot-aware CFG from an
//!   assembled [`Program`](flexcore_asm::Program) and runs
//!   must-initialize, constant-propagation, liveness, and
//!   register-window dataflow over it. Its headline diagnostic,
//!   [`Rule::UninitRead`], is the static counterpart of the UMC
//!   extension's uninitialized-read trap; its
//!   [`proven_loads`](AnalysisReport::proven_loads) are loads that UMC
//!   must *never* trap on, which the `flexcheck --xcheck` mode turns
//!   into a soundness gate against the dynamic monitor.
//! * [`lint_netlist`] — structural lint of a
//!   [`Netlist`](flexcore_fabric::Netlist) plus LUT-mapping and
//!   bitstream consistency checks.
//!
//! Findings are typed [`Diagnostic`]s with a stable [`Rule`] id and a
//! [`Severity`]; only `Error` findings gate CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod cfi;
pub mod dataflow;
pub mod diag;
pub mod netlint;
pub mod taint;

use flexcore_asm::Program;

pub use cfg::{build_cfg, Block, Cfg, Edge, TermKind};
pub use cfi::{cfi_edges, CfiEdges};
pub use dataflow::{analyze_dataflow, DataflowReport, ProvenLoad, META_BASE};
pub use diag::{Diagnostic, Rule, Severity};
pub use netlint::lint_netlist;
pub use taint::{analyze_taint, analyze_taint_cfg, Taint, TaintReport};

/// Combined result of the software-side analysis.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// All findings, sorted by (address, rule id, severity) and
    /// deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// The recovered control-flow graph.
    pub cfg: Cfg,
    /// Loads statically proven initialized at program load (see
    /// [`ProvenLoad`]); the `--xcheck` soundness anchor.
    pub proven_loads: Vec<ProvenLoad>,
}

impl AnalysisReport {
    /// Findings at [`Severity::Error`](diag::Severity::Error).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    /// Whether the program passed (no error-severity findings).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }
}

/// Runs the full software-side pipeline: CFG recovery, then all
/// dataflow passes.
pub fn analyze_program(program: &Program) -> AnalysisReport {
    let (cfg, mut diagnostics) = build_cfg(program);
    let dataflow = analyze_dataflow(program, &cfg);
    diagnostics.extend(dataflow.diagnostics);
    diagnostics.sort_by_key(|d| (d.addr, d.rule.id(), d.severity));
    diagnostics.dedup();
    AnalysisReport { diagnostics, cfg, proven_loads: dataflow.proven_loads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_asm::assemble;

    #[test]
    fn report_aggregates_cfg_and_dataflow_findings() {
        // One CFG finding (dead code) and one dataflow finding
        // (uninitialized read).
        let p = assemble(
            "start: ba go
                    nop
                    add %g1, 1, %g1
                    add %g2, 1, %g2
             go:    add %l5, 1, %g3
                    ta 0",
        )
        .unwrap();
        let report = analyze_program(&p);
        assert!(report.diagnostics.iter().any(|d| d.rule == Rule::UnreachableCode));
        assert!(report.diagnostics.iter().any(|d| d.rule == Rule::UninitRead));
        assert!(!report.is_clean());
    }

    #[test]
    fn clean_kernel_is_clean() {
        let p = assemble(
            "start: mov 10, %l0
                    clr %l1
             loop:  add %l1, %l0, %l1
                    subcc %l0, 1, %l0
                    bne loop
                    nop
                    set out, %l2
                    st %l1, [%l2]
                    ta 0
             out:   .space 4",
        )
        .unwrap();
        let report = analyze_program(&p);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }
}
