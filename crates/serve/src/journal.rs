//! Crash-safe JSONL campaign journals, keyed by campaign hash.
//!
//! Write path: every record is appended in a **single write** to an
//! append-mode file and fsynced on an epoch cadence (every
//! `sync_every` records, and at close), so the journal on disk is
//! always a prefix of completed trials plus at most one partial line.
//!
//! Read path (resume): the journal is parsed with
//! [`parse_jsonl_tolerant`] — a tail line truncated by `kill -9`
//! mid-append is dropped, reported, and physically removed from the
//! file ([`TolerantLog::repair_file`]); the header is checked against
//! the job's canonical spec so a journal can never replay under the
//! wrong campaign parameters; and every intact trial record is
//! returned for reuse. Corruption anywhere before the final line
//! remains a hard [`JournalError::Corrupt`].
//!
//! Compaction ([`Journal::compact`]): a campaign that is interrupted
//! and resumed N times accretes lifecycle events, superseded
//! quarantine records, and crash debris — replaying all of it makes
//! resume O(everything ever appended). Compaction rewrites the file
//! down to the header plus **one record per trial label** (last state
//! wins), via the only crash-safe sequence available to a plain
//! filesystem: write `<journal>.compact.tmp` → fsync the temp →
//! atomically rename over the journal → fsync the directory. A crash
//! between ANY two of those syscalls leaves either the intact old
//! journal (plus ignorable temp debris, cleaned on the next open) or
//! the intact new one — never a torn file. The
//! [`CRASH_POINT_ENV`] hook injects a deterministic `exit(137)` at
//! each named point so CI can prove exactly that.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use flexcore_bench::trial::{self, TrialOutcome};
use flexcore_telemetry::Histogram;
use serde::Value;

use crate::worker::TrialFailure;

/// Why a journal could not be opened or replayed.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A record before the final line does not parse or decode — real
    /// corruption, not a crash artifact.
    Corrupt {
        /// The journal path.
        path: PathBuf,
        /// What failed to parse/decode.
        detail: String,
    },
    /// The journal was stamped by a campaign with different
    /// work-defining parameters; replaying under this job would
    /// mislabel every trial.
    SpecMismatch {
        /// The journal path.
        path: PathBuf,
        /// The canonical spec stamped in the file.
        stamped: String,
        /// The canonical spec this job requested.
        requested: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            JournalError::Corrupt { path, detail } => {
                write!(f, "{}: corrupt journal: {detail}", path.display())
            }
            JournalError::SpecMismatch { path, stamped, requested } => write!(
                f,
                "{}: journal belongs to a different campaign\n  stamped:   {stamped}\n  \
                 requested: {requested}\nsubmit with the stamped parameters or start fresh",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// A trial's last journaled state.
#[derive(Clone, Debug, PartialEq)]
pub enum LoggedOutcome {
    /// The trial completed with this outcome (reused on resume).
    Done(TrialOutcome),
    /// The trial was quarantined after repeated worker panics — a
    /// typed failure, retried on resume (a deterministic trial that
    /// panicked may have been a victim of chaos or an environment
    /// fault, and crash recovery owes it another chance).
    Quarantined {
        /// Attempts spent before quarantine.
        attempts: u32,
        /// The last panic message.
        detail: String,
    },
}

/// What resuming a journal recovered.
#[derive(Clone, Debug, Default)]
pub struct JournalRecovery {
    /// Last journaled state per trial label.
    pub outcomes: HashMap<String, LoggedOutcome>,
    /// The dropped crash-partial tail line, when there was one.
    pub dropped_partial: Option<String>,
    /// Non-trial event records seen (job lifecycle markers).
    pub events: u64,
}

impl JournalRecovery {
    /// Trials that completed and will be reused (not retried).
    pub fn completed(&self) -> u64 {
        self.outcomes.iter().filter(|(_, o)| matches!(o, LoggedOutcome::Done(_))).count() as u64
    }
}

/// Environment variable naming a compaction crash point; when set,
/// the process `exit(137)`s (the SIGKILL status) the moment compaction
/// reaches that point — the deterministic stand-in for `kill -9`
/// between two specific syscalls that CI uses to prove crash safety.
///
/// Recognized points, in syscall order:
/// `compact-before-temp-sync` (temp written, not yet durable),
/// `compact-before-rename` (temp durable, journal still the old file),
/// `compact-before-dir-sync` (renamed, directory entry not yet synced).
pub const CRASH_POINT_ENV: &str = "FLEXSERVE_CRASH_POINT";

fn crash_point(point: &str) {
    if std::env::var(CRASH_POINT_ENV).as_deref() == Ok(point) {
        eprintln!("flexserve: injected crash at `{point}`");
        std::process::exit(137);
    }
}

/// What one [`Journal::compact`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records in the file before compaction (header excluded).
    pub records_before: u64,
    /// Records after (header excluded) — one per trial label.
    pub records_after: u64,
    /// Lifecycle event records dropped.
    pub dropped_events: u64,
    /// Superseded per-label records dropped (e.g. a quarantine whose
    /// retry later succeeded).
    pub dropped_superseded: u64,
    /// A crash-truncated partial tail line was discarded.
    pub dropped_partial: bool,
    /// Whether the file was actually rewritten (`false` when the
    /// journal was already minimal, missing, or still unstamped).
    pub compacted: bool,
}

/// An append-only campaign journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
    sync_every: usize,
    since_sync: usize,
    /// Records appended by this process (excludes replayed ones).
    pub records_written: u64,
    write_ns: Option<Histogram>,
    fsync_ns: Option<Histogram>,
}

fn io_err(path: &Path, error: std::io::Error) -> JournalError {
    JournalError::Io { path: path.to_path_buf(), error }
}

impl Journal {
    /// Opens (or creates) the journal for a campaign.
    ///
    /// `header` is the [`JobSpec::header`](crate::JobSpec::header)
    /// record; `canonical` is the job's canonical spec string checked
    /// against an existing file's stamp. With `resume` false an
    /// existing journal is truncated and restamped; with `resume` true
    /// its intact records are recovered.
    pub fn open(
        path: &Path,
        header: &Value,
        canonical: &str,
        resume: bool,
        sync_every: usize,
    ) -> Result<(Journal, JournalRecovery), JournalError> {
        // A `<journal>.compact.tmp` left behind by a crash before the
        // compaction rename is debris — the rename never happened, so
        // the journal itself is intact; clear the temp so it can never
        // be mistaken for state.
        let _ = std::fs::remove_file(compact_temp_path(path));
        let mut recovery = JournalRecovery::default();
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err(path, e)),
        };
        let mut fresh = true;
        if let (true, Some(text)) = (resume, &existing) {
            let parsed = trial::parse_jsonl_tolerant(text)
                .map_err(|detail| JournalError::Corrupt { path: path.to_path_buf(), detail })?;
            if parsed.dropped_partial.is_some() {
                parsed.repair_file(path).map_err(|e| io_err(path, e))?;
                recovery.dropped_partial = parsed.dropped_partial;
            }
            let mut records = parsed.records.into_iter();
            match records.next() {
                Some(first) => {
                    let stamped = first.get("spec").and_then(Value::as_str).unwrap_or("");
                    if stamped != canonical {
                        return Err(JournalError::SpecMismatch {
                            path: path.to_path_buf(),
                            stamped: stamped.to_string(),
                            requested: canonical.to_string(),
                        });
                    }
                    fresh = false;
                }
                // Nothing intact survived (crash during the header
                // stamp); restamp from scratch.
                None => fresh = true,
            }
            if !fresh {
                for v in records {
                    if v.get("event").is_some() {
                        recovery.events += 1;
                        continue;
                    }
                    let label = v
                        .get("label")
                        .and_then(Value::as_str)
                        .ok_or_else(|| JournalError::Corrupt {
                            path: path.to_path_buf(),
                            detail: "trial record without a label".into(),
                        })?
                        .to_string();
                    let outcome = if matches!(v.get("quarantined"), Some(Value::Bool(true))) {
                        LoggedOutcome::Quarantined {
                            attempts: v.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32,
                            detail: v
                                .get("failure")
                                .and_then(Value::as_str)
                                .unwrap_or("")
                                .to_string(),
                        }
                    } else {
                        LoggedOutcome::Done(trial::decode_outcome(&v).map_err(|detail| {
                            JournalError::Corrupt { path: path.to_path_buf(), detail }
                        })?)
                    };
                    // Last record wins: a retried quarantine's success
                    // supersedes the quarantine record before it.
                    recovery.outcomes.insert(label, outcome);
                }
            }
        }
        if fresh {
            recovery = JournalRecovery::default();
            let mut text = serde::to_string(header);
            text.push('\n');
            std::fs::write(path, text).map_err(|e| io_err(path, e))?;
        }
        let mut file =
            std::fs::OpenOptions::new().append(true).open(path).map_err(|e| io_err(path, e))?;
        // A kill can land exactly between a record's bytes and its
        // newline: the tail then parses as a complete record (nothing
        // to drop) but the file has no trailing newline, and a blind
        // append would weld the next record onto the same line. Close
        // the line before appending anything.
        if let (false, Some(text)) = (fresh, &existing) {
            if !text.is_empty() && !text.ends_with('\n') && recovery.dropped_partial.is_none() {
                file.write_all(b"\n").map_err(|e| io_err(path, e))?;
            }
        }
        file.sync_all().map_err(|e| io_err(path, e))?;
        let journal = Journal {
            path: path.to_path_buf(),
            file,
            sync_every: sync_every.max(1),
            since_sync: 0,
            records_written: 0,
            write_ns: None,
            fsync_ns: None,
        };
        Ok((journal, recovery))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Installs latency histograms: `write_ns` times each record's
    /// single `write(2)`, `fsync_ns` times each `fsync`. Without this
    /// call the journal takes no clock readings at all.
    pub fn instrument(&mut self, write_ns: Histogram, fsync_ns: Histogram) {
        self.write_ns = Some(write_ns);
        self.fsync_ns = Some(fsync_ns);
    }

    fn append_value(&mut self, v: &Value) -> Result<(), JournalError> {
        let mut line = serde::to_string(v);
        line.push('\n');
        // One write per record: a crash can truncate at most the tail
        // line, which resume drops and re-runs.
        let span = self.write_ns.as_ref().map(|_| std::time::Instant::now());
        let wrote = self.file.write_all(line.as_bytes()).map_err(|e| io_err(&self.path, e));
        if let (Some(h), Some(t)) = (&self.write_ns, span) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        wrote?;
        self.records_written += 1;
        self.since_sync += 1;
        if self.since_sync >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends one completed trial (the shared `faultsweep`-shaped
    /// record).
    pub fn append_trial(&mut self, label: &str, o: &TrialOutcome) -> Result<(), JournalError> {
        self.append_value(&trial::outcome_record(label, o))
    }

    /// Appends a typed quarantine record for a trial that exhausted its
    /// attempt budget.
    pub fn append_quarantine(
        &mut self,
        label: &str,
        failure: &TrialFailure,
    ) -> Result<(), JournalError> {
        let TrialFailure::Panicked { attempts, last_message } = failure;
        self.append_value(
            &Value::object()
                .field("label", &label)
                .field("quarantined", &true)
                .field("attempts", &u64::from(*attempts))
                .field("failure", &last_message.as_str())
                .build(),
        )
    }

    /// Appends a job-lifecycle event record (`event` field set, so
    /// trial replay skips it).
    pub fn append_event(&mut self, event: &str, fields: Value) -> Result<(), JournalError> {
        let mut obj = Value::object().field("event", &event);
        if let Value::Object(pairs) = fields {
            for (k, v) in pairs {
                obj = obj.raw(&k, v);
            }
        }
        self.append_value(&obj.build())
    }

    /// Forces buffered appends to disk (fsync) — called automatically
    /// every `sync_every` records and at the end of a job.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        self.since_sync = 0;
        let span = self.fsync_ns.as_ref().map(|_| std::time::Instant::now());
        let synced = self.file.sync_all().map_err(|e| io_err(&self.path, e));
        if let (Some(h), Some(t)) = (&self.fsync_ns, span) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        synced
    }

    /// Compacts a **closed** journal down to its header plus one record
    /// per trial label (last state wins; first-seen label order, so the
    /// output is deterministic). Lifecycle events, superseded records,
    /// and a crash-truncated tail are dropped — after compaction a
    /// resume replays O(trial labels), not O(records ever appended).
    ///
    /// Crash safety: the rewrite goes to `<journal>.compact.tmp`,
    /// which is fsynced, atomically renamed over the journal, and the
    /// directory fsynced. Killing the process between any two of those
    /// syscalls (see [`CRASH_POINT_ENV`]) leaves a journal that opens
    /// and resumes exactly like either the pre- or post-compaction
    /// file — never anything in between.
    ///
    /// A missing file, an unstamped file (crash during the header
    /// write), or an already-minimal journal is a no-op with
    /// `compacted: false`.
    pub fn compact(path: &Path, canonical: &str) -> Result<CompactionReport, JournalError> {
        let mut report = CompactionReport::default();
        let temp = compact_temp_path(path);
        match std::fs::remove_file(&temp) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err(&temp, e)),
        }
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
            Err(e) => return Err(io_err(path, e)),
        };
        let parsed = trial::parse_jsonl_tolerant(&text)
            .map_err(|detail| JournalError::Corrupt { path: path.to_path_buf(), detail })?;
        report.dropped_partial = parsed.dropped_partial.is_some();
        let mut records = parsed.records.into_iter();
        let Some(header) = records.next() else {
            // Nothing intact (crash during the header stamp): the next
            // open restamps from scratch; nothing to compact.
            return Ok(report);
        };
        let stamped = header.get("spec").and_then(Value::as_str).unwrap_or("");
        if stamped != canonical {
            return Err(JournalError::SpecMismatch {
                path: path.to_path_buf(),
                stamped: stamped.to_string(),
                requested: canonical.to_string(),
            });
        }
        let mut order: Vec<String> = Vec::new();
        let mut latest: HashMap<String, Value> = HashMap::new();
        for v in records {
            report.records_before += 1;
            if v.get("event").is_some() {
                report.dropped_events += 1;
                continue;
            }
            let label = v
                .get("label")
                .and_then(Value::as_str)
                .ok_or_else(|| JournalError::Corrupt {
                    path: path.to_path_buf(),
                    detail: "trial record without a label".into(),
                })?
                .to_string();
            if latest.insert(label.clone(), v).is_some() {
                report.dropped_superseded += 1;
            } else {
                order.push(label);
            }
        }
        report.records_after = order.len() as u64;
        if report.dropped_events == 0 && report.dropped_superseded == 0 && !report.dropped_partial {
            return Ok(report);
        }

        let mut out = serde::to_string(&header);
        out.push('\n');
        for label in &order {
            if let Some(v) = latest.get(label) {
                out.push_str(&serde::to_string(v));
                out.push('\n');
            }
        }
        // write temp → fsync temp → rename → fsync dir. Each arrow is
        // a named crash point; the matrix in DESIGN.md walks what the
        // next open sees after a kill at each one.
        let mut file = std::fs::File::create(&temp).map_err(|e| io_err(&temp, e))?;
        file.write_all(out.as_bytes()).map_err(|e| io_err(&temp, e))?;
        crash_point("compact-before-temp-sync");
        file.sync_all().map_err(|e| io_err(&temp, e))?;
        drop(file);
        crash_point("compact-before-rename");
        std::fs::rename(&temp, path).map_err(|e| io_err(path, e))?;
        crash_point("compact-before-dir-sync");
        // The rename is not durable until the directory entry is — a
        // power cut could otherwise resurrect the old inode. `rename`
        // guarantees one of the two files is seen either way.
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
            std::fs::File::open(dir).and_then(|d| d.sync_all()).map_err(|e| io_err(dir, e))?;
        }
        report.compacted = true;
        Ok(report)
    }
}

/// The sibling temp file compaction stages its rewrite in.
fn compact_temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(std::ffi::OsStr::to_os_string).unwrap_or_default();
    name.push(".compact.tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("flexserve-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmpdir");
        dir
    }

    fn outcome(n: u64) -> TrialOutcome {
        TrialOutcome { trapped: true, faults_injected: n, ..TrialOutcome::default() }
    }

    #[test]
    fn journal_roundtrips_trials_events_and_quarantines() {
        let spec = JobSpec::default();
        let path = tmpdir("roundtrip").join(format!("{}.jsonl", spec.id()));
        let (mut j, rec) =
            Journal::open(&path, &spec.header(), &spec.canonical(), false, 2).expect("create");
        assert_eq!(rec.completed(), 0);
        j.append_trial("sha trial 0", &outcome(1)).expect("append");
        j.append_event("job-started", Value::object().field("total", &4u64).build())
            .expect("append");
        j.append_quarantine(
            "sha trial 1",
            &TrialFailure::Panicked { attempts: 3, last_message: "boom".into() },
        )
        .expect("append");
        j.append_trial("sha trial 2", &outcome(2)).expect("append");
        j.sync().expect("sync");
        drop(j);

        let (_, rec) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 2).expect("resume");
        assert_eq!(rec.events, 1);
        assert_eq!(rec.completed(), 2);
        assert_eq!(rec.outcomes.get("sha trial 0"), Some(&LoggedOutcome::Done(outcome(1))));
        assert_eq!(
            rec.outcomes.get("sha trial 1"),
            Some(&LoggedOutcome::Quarantined { attempts: 3, detail: "boom".into() })
        );
        assert!(rec.dropped_partial.is_none());
    }

    #[test]
    fn truncated_tail_is_dropped_repaired_and_the_rest_reused() {
        let spec = JobSpec::default();
        let path = tmpdir("tail").join(format!("{}.jsonl", spec.id()));
        let (mut j, _) =
            Journal::open(&path, &spec.header(), &spec.canonical(), false, 1).expect("create");
        j.append_trial("sha trial 0", &outcome(1)).expect("append");
        j.append_trial("sha trial 1", &outcome(2)).expect("append");
        drop(j);
        // Simulate kill -9 mid-append: chop the last record in half.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() - 25]).expect("truncate");

        let (mut j, rec) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("resume");
        assert!(rec.dropped_partial.is_some(), "partial tail reported");
        assert_eq!(rec.completed(), 1, "only the intact record is reused");
        // The file was repaired: appending continues on a fresh line.
        j.append_trial("sha trial 1", &outcome(2)).expect("append after repair");
        drop(j);
        let (_, rec) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("reopen");
        assert_eq!(rec.completed(), 2);
        assert!(rec.dropped_partial.is_none(), "repair removed the debris");
    }

    #[test]
    fn spec_mismatch_is_refused_with_both_specs() {
        let spec = JobSpec::default();
        let path = tmpdir("mismatch").join(format!("{}.jsonl", spec.id()));
        let (_, _) =
            Journal::open(&path, &spec.header(), &spec.canonical(), false, 1).expect("create");
        let other = JobSpec { seed: 99, ..JobSpec::default() };
        let err = Journal::open(&path, &other.header(), &other.canonical(), true, 1)
            .expect_err("wrong campaign");
        let msg = err.to_string();
        assert!(msg.contains("different campaign"), "{msg}");
        assert!(msg.contains("\"seed\":99"), "shows the requested spec: {msg}");
    }

    /// A journal with history worth compacting: events, a quarantine
    /// superseded by its retry's success, and completed trials.
    fn bloated_journal(tag: &str) -> (JobSpec, PathBuf) {
        let spec = JobSpec::default();
        let path = tmpdir(tag).join(format!("{}.jsonl", spec.id()));
        let (mut j, _) =
            Journal::open(&path, &spec.header(), &spec.canonical(), false, 1).expect("create");
        j.append_event("job-started", Value::object().field("total", &3u64).build()).expect("ev");
        j.append_trial("sha trial 0", &outcome(1)).expect("append");
        j.append_quarantine(
            "sha trial 1",
            &TrialFailure::Panicked { attempts: 3, last_message: "boom".into() },
        )
        .expect("append");
        j.append_event("job-interrupted", Value::object().field("executed", &1u64).build())
            .expect("ev");
        // The resumed run retries the quarantine and succeeds: the
        // success supersedes the quarantine record.
        j.append_trial("sha trial 1", &outcome(2)).expect("append");
        j.append_trial("sha trial 2", &outcome(3)).expect("append");
        j.append_event("job-done", Value::object().field("executed", &3u64).build()).expect("ev");
        j.sync().expect("sync");
        (spec, path)
    }

    #[test]
    fn compaction_shrinks_to_one_record_per_label_and_resume_agrees() {
        let (spec, path) = bloated_journal("compact");
        let (_, before) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("resume");

        let report = Journal::compact(&path, &spec.canonical()).expect("compacts");
        assert!(report.compacted);
        assert_eq!(report.records_before, 7, "3 events + 4 trial records");
        assert_eq!(report.records_after, 3, "one per label");
        assert_eq!(report.dropped_events, 3);
        assert_eq!(report.dropped_superseded, 1, "the quarantine its retry superseded");

        // The record-count contract: header + one line per label.
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 4);

        // Resume sees the identical recovered state, minus the events.
        let (_, after) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("resume");
        assert_eq!(after.outcomes, before.outcomes, "compaction loses no trial state");
        assert_eq!(after.events, 0);

        // Idempotent: a second pass finds nothing dead.
        let again = Journal::compact(&path, &spec.canonical()).expect("noop");
        assert!(!again.compacted);
        assert_eq!(again.records_before, again.records_after);
    }

    #[test]
    fn compaction_noops_on_missing_or_unstamped_journals() {
        let dir = tmpdir("compact-noop");
        let report = Journal::compact(&dir.join("absent.jsonl"), "spec").expect("missing file ok");
        assert!(!report.compacted);
        // Crash during the header stamp: a lone partial line.
        let path = dir.join("unstamped.jsonl");
        std::fs::write(&path, "{\"spec\":\"tru").expect("write");
        let report = Journal::compact(&path, "spec").expect("unstamped ok");
        assert!(!report.compacted, "nothing intact to compact; open restamps");
    }

    #[test]
    fn compaction_refuses_a_foreign_campaign() {
        let (_, path) = bloated_journal("compact-foreign");
        let err = Journal::compact(&path, "someone else's spec").expect_err("mismatch");
        assert!(matches!(err, JournalError::SpecMismatch { .. }));
    }

    #[test]
    fn crash_debris_between_compaction_syscalls_never_corrupts_state() {
        // Simulate the on-disk state a kill -9 leaves at each point of
        // the write-temp → fsync → rename → dir-sync sequence, and
        // assert the next open recovers a consistent journal each time.
        let (spec, path) = bloated_journal("compact-crash");
        let temp = super::compact_temp_path(&path);
        let original = std::fs::read_to_string(&path).expect("read");

        // (a) killed mid-temp-write: partial temp, journal untouched.
        std::fs::write(&temp, &original[..original.len() / 2]).expect("debris");
        let (_, rec) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("open");
        assert_eq!(rec.completed(), 3, "old journal intact");
        assert!(!temp.exists(), "debris cleaned on open");

        // (b) killed after temp fsync, before rename: complete temp,
        // journal untouched — the temp is still just debris.
        std::fs::write(&temp, "{\"complete\":\"temp\"}\n").expect("debris");
        let report = Journal::compact(&path, &spec.canonical()).expect("compacts over debris");
        assert!(report.compacted, "a stale temp never blocks compaction");
        assert!(!temp.exists(), "temp consumed by the rename");

        // (c) killed after rename, before dir sync: the journal IS the
        // compacted file; resume replays the compacted records.
        let (_, rec) =
            Journal::open(&path, &spec.header(), &spec.canonical(), true, 1).expect("open");
        assert_eq!(rec.completed(), 3, "compacted journal resumes identically");
        assert_eq!(rec.events, 0);
    }

    #[test]
    fn non_resume_open_truncates_an_existing_journal() {
        let spec = JobSpec::default();
        let path = tmpdir("truncate").join(format!("{}.jsonl", spec.id()));
        let (mut j, _) =
            Journal::open(&path, &spec.header(), &spec.canonical(), false, 1).expect("create");
        j.append_trial("sha trial 0", &outcome(1)).expect("append");
        drop(j);
        let (_, rec) =
            Journal::open(&path, &spec.header(), &spec.canonical(), false, 1).expect("recreate");
        assert_eq!(rec.completed(), 0, "fresh open discards history");
    }
}
