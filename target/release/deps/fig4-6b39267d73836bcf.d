/root/repo/target/release/deps/fig4-6b39267d73836bcf.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-6b39267d73836bcf: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
