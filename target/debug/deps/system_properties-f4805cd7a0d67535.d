/root/repo/target/debug/deps/system_properties-f4805cd7a0d67535.d: tests/system_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsystem_properties-f4805cd7a0d67535.rmeta: tests/system_properties.rs Cargo.toml

tests/system_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
