//! Robustness: the assembler returns `Ok` or `Err` on *any* input —
//! it never panics, loops, or produces an image it can't account for.

use flexcore_asm::assemble;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary UTF-8 never panics the assembler.
    #[test]
    fn arbitrary_text_never_panics(src in ".{0,400}") {
        let _ = assemble(&src);
    }

    /// Near-miss assembly (valid tokens, shuffled) never panics, and
    /// successful assemblies produce self-consistent programs.
    #[test]
    fn token_soup_never_panics(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "add", "ld", "st", "set", "%g1", "%o0", "%sp", "[", "]", ",",
                "+", "-", "0x10", "42", "label:", "label", ".word", ".space",
                ".align", "nop", "ba", "cmp", "!", "sethi", "%hi(x)", "ta",
            ]),
            0..30,
        )
    ) {
        let src = words.join(" ");
        if let Ok(p) = assemble(&src) {
            prop_assert!(p.base() % 4 == 0);
            prop_assert!(p.entry() >= p.base() || p.is_empty() || p.symbol("start").is_some());
        }
    }

    /// Raw random bytes — lossily decoded, as a file read off disk would
    /// be — never panic the lexer, parser, or layout passes.
    #[test]
    fn random_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = assemble(&src);
    }

    /// Directives with hostile sizes fail cleanly instead of overflowing
    /// the program counter or allocating multi-gigabyte images.
    #[test]
    fn hostile_layout_directives_never_panic(
        org in any::<u32>(),
        space in any::<u32>(),
        align in any::<u32>(),
    ) {
        let src = format!(".org {org}\n.space {space}\n.align {align}\nnop\n");
        let _ = assemble(&src);
    }

    /// Multi-line soup exercises the layout passes.
    #[test]
    fn multiline_soup_never_panics(
        lines in prop::collection::vec(
            prop::sample::select(vec![
                "x: nop",
                "nop",
                ".align 8",
                ".space 3",
                ".byte 1, 2",
                ".half 9",
                "y: .word x",
                "ba x",
                "bne,a x",
                "add %g1, 1, %g1",
                "! comment",
                "",
            ]),
            0..20,
        )
    ) {
        let src = lines.join("\n");
        let _ = assemble(&src);
    }
}
