/root/repo/target/debug/deps/no_panic-86d5b5aeb9c3c710.d: crates/asm/tests/no_panic.rs

/root/repo/target/debug/deps/no_panic-86d5b5aeb9c3c710: crates/asm/tests/no_panic.rs

crates/asm/tests/no_panic.rs:
