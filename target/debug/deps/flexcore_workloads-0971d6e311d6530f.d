/root/repo/target/debug/deps/flexcore_workloads-0971d6e311d6530f.d: crates/workloads/src/lib.rs crates/workloads/src/basicmath.rs crates/workloads/src/bitcount.rs crates/workloads/src/crc32.rs crates/workloads/src/dijkstra.rs crates/workloads/src/fft.rs crates/workloads/src/gmac.rs crates/workloads/src/qsort.rs crates/workloads/src/sha.rs crates/workloads/src/stringsearch.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_workloads-0971d6e311d6530f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/basicmath.rs crates/workloads/src/bitcount.rs crates/workloads/src/crc32.rs crates/workloads/src/dijkstra.rs crates/workloads/src/fft.rs crates/workloads/src/gmac.rs crates/workloads/src/qsort.rs crates/workloads/src/sha.rs crates/workloads/src/stringsearch.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/basicmath.rs:
crates/workloads/src/bitcount.rs:
crates/workloads/src/crc32.rs:
crates/workloads/src/dijkstra.rs:
crates/workloads/src/fft.rs:
crates/workloads/src/gmac.rs:
crates/workloads/src/qsort.rs:
crates/workloads/src/sha.rs:
crates/workloads/src/stringsearch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
