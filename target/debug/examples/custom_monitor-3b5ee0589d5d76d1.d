/root/repo/target/debug/examples/custom_monitor-3b5ee0589d5d76d1.d: examples/custom_monitor.rs

/root/repo/target/debug/examples/custom_monitor-3b5ee0589d5d76d1: examples/custom_monitor.rs

examples/custom_monitor.rs:
