/root/repo/target/debug/deps/flexcore_pipeline-7949705e7a3a0bfc.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/libflexcore_pipeline-7949705e7a3a0bfc.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
