/root/repo/target/debug/deps/superscalar-7ebeaadc164b9e84.d: crates/bench/src/bin/superscalar.rs

/root/repo/target/debug/deps/libsuperscalar-7ebeaadc164b9e84.rmeta: crates/bench/src/bin/superscalar.rs

crates/bench/src/bin/superscalar.rs:
