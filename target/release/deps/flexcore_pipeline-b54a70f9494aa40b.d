/root/repo/target/release/deps/flexcore_pipeline-b54a70f9494aa40b.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/release/deps/libflexcore_pipeline-b54a70f9494aa40b.rlib: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/release/deps/libflexcore_pipeline-b54a70f9494aa40b.rmeta: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/serde_impls.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/serde_impls.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
