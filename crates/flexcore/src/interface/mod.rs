//! The core–fabric interface (the paper's Table II).
//!
//! The interface has four parts:
//!
//! * **CFGR** — the forwarding configuration register: 2 bits per
//!   instruction class × 32 classes = 64 bits, selecting how the
//!   forward FIFO treats each class ([`Cfgr`], [`ForwardPolicy`]).
//! * **FFIFO** — the forward FIFO carrying 293-bit trace packets from
//!   the commit stage to the fabric ([`ForwardFifo`]); the packet
//!   itself is [`TracePacket`](flexcore_pipeline::TracePacket).
//! * **CTRL** — control signals: CACK (per-instruction
//!   acknowledgment), EMPTY (no pending instructions in the
//!   co-processor), TRAP (monitor exception), PACK (trap
//!   acknowledgment from the core).
//! * **BFIFO** — the 32-bit return path for "read from co-processor"
//!   instructions.
//!
//! [`FIELDS`] describes the exact bit layout for documentation and the
//! Table II regeneration binary.

mod cfgr;
mod fifo;

pub use cfgr::{Cfgr, ForwardPolicy};
pub use fifo::{FifoSnapshot, ForwardFifo};

/// Which direction a Table II field travels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldDirection {
    /// Configuration, written by the core at setup.
    Config,
    /// Core → fabric (FFIFO payload or CTRL).
    CoreToFabric,
    /// Fabric → core (CTRL or BFIFO).
    FabricToCore,
}

/// One row of the paper's Table II.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InterfaceField {
    /// Direction group.
    pub direction: FieldDirection,
    /// Module the field belongs to (CFGR/CTRL/FFIFO/BFIFO).
    pub module: &'static str,
    /// Field name.
    pub name: &'static str,
    /// Description from the paper.
    pub description: &'static str,
    /// Width in bits.
    pub bits: u32,
}

/// The complete Table II field list.
pub const FIELDS: &[InterfaceField] = &[
    InterfaceField {
        direction: FieldDirection::Config,
        module: "CFGR",
        name: "FFIFO",
        description: "2-bit forward policy for each of the 32 instruction types",
        bits: 64,
    },
    InterfaceField {
        direction: FieldDirection::Config,
        module: "CTRL",
        name: "PACK",
        description: "Acknowledgement for a trap signal from the co-processor",
        bits: 1,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "PC",
        description: "Program counter",
        bits: 32,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "INST",
        description: "Undecoded instruction",
        bits: 32,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "ADDR",
        description: "Address for a load/store",
        bits: 32,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "RES",
        description: "Result of an instruction",
        bits: 32,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "SRCV1",
        description: "Source operand 1 value",
        bits: 32,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "SRCV2",
        description: "Source operand 2 value",
        bits: 32,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "COND",
        description: "Condition codes that affect instruction processing",
        bits: 4,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "BRANCH",
        description: "Computed branch direction information",
        bits: 1,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "OPCODE",
        description: "Decoded instruction opcode",
        bits: 5,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "DECODE",
        description: "Miscellaneous decoded signals",
        bits: 32,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "EXTRA",
        description: "Extra processor control signals",
        bits: 32,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "SRC1",
        description: "Decoded Source1 register number",
        bits: 9,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "SRC2",
        description: "Decoded Source2 register number",
        bits: 9,
    },
    InterfaceField {
        direction: FieldDirection::CoreToFabric,
        module: "FFIFO",
        name: "DEST",
        description: "Decoded Destination register number",
        bits: 9,
    },
    InterfaceField {
        direction: FieldDirection::FabricToCore,
        module: "CTRL",
        name: "CACK",
        description: "Acknowledgement for FFIFO",
        bits: 1,
    },
    InterfaceField {
        direction: FieldDirection::FabricToCore,
        module: "CTRL",
        name: "EMPTY",
        description: "No pending instruction in the co-processor",
        bits: 1,
    },
    InterfaceField {
        direction: FieldDirection::FabricToCore,
        module: "CTRL",
        name: "TRAP",
        description: "Raise an exception",
        bits: 1,
    },
    InterfaceField {
        direction: FieldDirection::FabricToCore,
        module: "BFIFO",
        name: "VAL",
        description: "Return value on a 'read from co-processor' instruction",
        bits: 32,
    },
];

/// Width of one FFIFO payload entry in bits (the per-instruction
/// fields, i.e. everything the commit stage pushes per packet).
pub fn ffifo_entry_bits() -> u32 {
    FIELDS
        .iter()
        .filter(|f| f.direction == FieldDirection::CoreToFabric && f.module == "FFIFO")
        .map(|f| f.bits)
        .sum()
}

/// The dedicated interface hardware as a gate-level netlist, used by
/// the Table III cost model for the "dedicated FlexCore modules" row:
///
/// * the 293-bit packet capture register at the commit stage,
/// * the 64-bit CFGR and its 32:1 2-bit policy mux (indexed by the
///   5-bit instruction class),
/// * the forwarding decision logic (ignore / if-room / always / ack),
/// * double-flop clock-domain synchronizers for the CTRL signals,
/// * and the FFIFO / BFIFO / shadow-register-file storage macros.
pub fn interface_netlist() -> flexcore_fabric::Netlist {
    use flexcore_fabric::{MacroBlock, NetlistBuilder};

    let mut b = NetlistBuilder::new("flexcore-interface");
    let entry_bits = ffifo_entry_bits() as usize;

    // Commit-stage packet capture register.
    let packet = b.input_bus(entry_bits);
    let packet_r = b.register_bus(&packet);
    b.output_bus("packet", &packet_r);

    // CFGR: 64 config flops, policy selected by the 5-bit class.
    let class = b.input_bus(5);
    let cfgr: Vec<_> = (0..64).map(|_| b.dff()).collect();
    let onehot = b.decoder(&class);
    let mut policy0 = Vec::new();
    let mut policy1 = Vec::new();
    for (i, &oh) in onehot.iter().enumerate() {
        policy0.push(b.and(oh, cfgr[2 * i]));
        policy1.push(b.and(oh, cfgr[2 * i + 1]));
    }
    let p0 = b.reduce_or(&policy0);
    let p1 = b.reduce_or(&policy1);

    // Forwarding decision: push = policy != 0; stall = (policy >= 2)
    // and fifo full; wait-for-ack = policy == 3.
    let fifo_full = b.input();
    let ack = b.input();
    let push = b.or(p0, p1);
    let always_or_ack = p1;
    let stall_full = b.and(always_or_ack, fifo_full);
    let n_ack = b.not(ack);
    let wait = b.and(p0, p1);
    let stall_ack = b.and(wait, n_ack);
    let stall = b.or(stall_full, stall_ack);
    let push_r = b.register(push);
    let stall_r = b.register(stall);
    b.output("push", push_r);
    b.output("stall", stall_r);

    // CTRL clock-domain synchronizers (CACK, EMPTY, TRAP, PACK x2
    // flops each).
    for name in ["cack", "empty", "trap", "pack"] {
        let sig = b.input();
        let s1 = b.register(sig);
        let s2 = b.register(s1);
        b.output(name, s2);
    }

    // Storage macros.
    b.add_macro(MacroBlock::Fifo { depth: 64, width: ffifo_entry_bits() });
    b.add_macro(MacroBlock::Fifo { depth: 16, width: 32 });
    b.add_macro(MacroBlock::RegFile {
        entries: crate::ShadowRegFile::ENTRIES,
        width: crate::ShadowRegFile::WIDTH,
    });
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_fabric::AsicCost;
    use flexcore_pipeline::TracePacket;

    #[test]
    fn interface_netlist_has_the_expected_structure() {
        let n = interface_netlist();
        // Packet register + CFGR + synchronizers + decision flops.
        assert!(n.flops() >= 293 + 64 + 8, "{} flops", n.flops());
        // FFIFO + BFIFO + shadow register file.
        assert_eq!(n.macros().len(), 3);
        let a = AsicCost::of(&n);
        // The interface logic is a few thousand NAND2-equivalents —
        // small next to its SRAM macros.
        assert!(
            a.gate_equivalents() > 1500.0 && a.gate_equivalents() < 10_000.0,
            "{} GE",
            a.gate_equivalents()
        );
        assert!(a.macros().area_um2 > a.area_um2());
    }

    #[test]
    fn ffifo_entry_is_293_bits_and_matches_trace_packet() {
        assert_eq!(ffifo_entry_bits(), 293);
        assert_eq!(ffifo_entry_bits(), TracePacket::WIDTH_BITS);
    }

    #[test]
    fn table_ii_has_all_twenty_rows() {
        assert_eq!(FIELDS.len(), 20);
        assert_eq!(FIELDS.iter().filter(|f| f.module == "CTRL").count(), 4);
        assert_eq!(FIELDS.iter().filter(|f| f.module == "BFIFO").count(), 1);
    }

    #[test]
    fn cfgr_row_is_64_bits() {
        let cfgr = FIELDS.iter().find(|f| f.module == "CFGR").unwrap();
        assert_eq!(cfgr.bits, 64);
    }
}
