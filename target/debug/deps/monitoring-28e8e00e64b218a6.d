/root/repo/target/debug/deps/monitoring-28e8e00e64b218a6.d: tests/monitoring.rs

/root/repo/target/debug/deps/libmonitoring-28e8e00e64b218a6.rmeta: tests/monitoring.rs

tests/monitoring.rs:
