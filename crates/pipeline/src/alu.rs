//! Integer ALU semantics (results and condition codes).

use flexcore_isa::{IccFlags, Opcode};

/// Result of an ALU operation: the value and, for `cc` variants, the
/// new condition codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct AluOut {
    pub value: u32,
    pub icc: Option<IccFlags>,
}

/// Executes an integer ALU opcode per SPARC V8 semantics.
///
/// Divide-by-zero is reported as `None` (the core turns it into a
/// trap). The `%y` register is not modeled: multiplies return the low
/// 32 bits and divides treat the dividend as 32 bits (documented crate
/// deviation — the workloads only need 32-bit results).
pub(crate) fn alu(op: Opcode, a: u32, b: u32) -> Option<AluOut> {
    use Opcode::*;
    let out = match op {
        Add | Save | Restore => AluOut { value: a.wrapping_add(b), icc: None },
        Addcc => {
            let (value, carry) = a.overflowing_add(b);
            let v = ((a ^ !b) & (a ^ value)) >> 31 != 0;
            AluOut { value, icc: Some(flags(value, v, carry)) }
        }
        Sub => AluOut { value: a.wrapping_sub(b), icc: None },
        Subcc => {
            let (value, borrow) = a.overflowing_sub(b);
            let v = ((a ^ b) & (a ^ value)) >> 31 != 0;
            AluOut { value, icc: Some(flags(value, v, borrow)) }
        }
        And => logic(a & b, false),
        Andcc => logic(a & b, true),
        Or => logic(a | b, false),
        Orcc => logic(a | b, true),
        Xor => logic(a ^ b, false),
        Xorcc => logic(a ^ b, true),
        Andn => logic(a & !b, false),
        Andncc => logic(a & !b, true),
        Orn => logic(a | !b, false),
        Orncc => logic(a | !b, true),
        Xnor => logic(!(a ^ b), false),
        Xnorcc => logic(!(a ^ b), true),
        Sll => logic(a.wrapping_shl(b & 31), false),
        Srl => logic(a.wrapping_shr(b & 31), false),
        Sra => logic(((a as i32).wrapping_shr(b & 31)) as u32, false),
        Umul => logic(a.wrapping_mul(b), false),
        Smul => logic((a as i32).wrapping_mul(b as i32) as u32, false),
        Udiv => {
            if b == 0 {
                return None;
            }
            logic(a / b, false)
        }
        Sdiv => {
            if b == 0 {
                return None;
            }
            logic((a as i32).wrapping_div(b as i32) as u32, false)
        }
        other => unreachable!("{other:?} is not an ALU opcode"),
    };
    Some(out)
}

fn flags(value: u32, v: bool, c: bool) -> IccFlags {
    IccFlags { n: (value as i32) < 0, z: value == 0, v, c }
}

fn logic(value: u32, set_cc: bool) -> AluOut {
    AluOut { value, icc: set_cc.then(|| IccFlags::from_result(value)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(op: Opcode, a: u32, b: u32) -> AluOut {
        alu(op, a, b).unwrap()
    }

    #[test]
    fn add_carry_and_overflow() {
        let r = run(Opcode::Addcc, 0xffff_ffff, 1);
        let icc = r.icc.unwrap();
        assert_eq!(r.value, 0);
        assert!(icc.z && icc.c && !icc.v);

        let r = run(Opcode::Addcc, 0x7fff_ffff, 1);
        let icc = r.icc.unwrap();
        assert_eq!(r.value, 0x8000_0000);
        assert!(icc.n && icc.v && !icc.c);
    }

    #[test]
    fn sub_borrow_and_overflow() {
        // 1 - 2: borrow set, negative result.
        let r = run(Opcode::Subcc, 1, 2);
        let icc = r.icc.unwrap();
        assert_eq!(r.value, 0xffff_ffff);
        assert!(icc.n && icc.c && !icc.v && !icc.z);

        // INT_MIN - 1 overflows.
        let r = run(Opcode::Subcc, 0x8000_0000, 1);
        assert!(r.icc.unwrap().v);
    }

    #[test]
    fn logic_ops_clear_v_and_c() {
        let r = run(Opcode::Andcc, 0xf0, 0x0f);
        let icc = r.icc.unwrap();
        assert!(icc.z && !icc.v && !icc.c && !icc.n);
        assert_eq!(run(Opcode::Xnor, 0xffff_ffff, 0).value, 0);
        assert_eq!(run(Opcode::Andn, 0xff, 0x0f).value, 0xf0);
        assert_eq!(run(Opcode::Orn, 0, 0xffff_fffe).value, 1);
    }

    #[test]
    fn shifts_mask_count_to_five_bits() {
        assert_eq!(run(Opcode::Sll, 1, 33).value, 2);
        assert_eq!(run(Opcode::Srl, 0x8000_0000, 31).value, 1);
        assert_eq!(run(Opcode::Sra, 0x8000_0000, 31).value, 0xffff_ffff);
    }

    #[test]
    fn mul_div_semantics() {
        assert_eq!(run(Opcode::Umul, 7, 6).value, 42);
        assert_eq!(run(Opcode::Smul, (-4i32) as u32, 3).value, (-12i32) as u32);
        assert_eq!(run(Opcode::Udiv, 42, 5).value, 8);
        assert_eq!(run(Opcode::Sdiv, (-42i32) as u32, 5).value, (-8i32) as u32);
    }

    #[test]
    fn divide_by_zero_is_reported() {
        assert!(alu(Opcode::Udiv, 1, 0).is_none());
        assert!(alu(Opcode::Sdiv, 1, 0).is_none());
    }

    #[test]
    fn plain_ops_leave_flags_alone() {
        assert!(run(Opcode::Add, 1, 1).icc.is_none());
        assert!(run(Opcode::Sub, 1, 1).icc.is_none());
        assert!(run(Opcode::Sll, 1, 1).icc.is_none());
    }
}
