//! VCD waveform dumps for netlist simulation.
//!
//! Debugging a monitoring extension's datapath is a hardware activity;
//! this module dumps a [`Netlist`] simulation as a standard Value
//! Change Dump, viewable in GTKWave or any waveform viewer. Primary
//! inputs, named outputs, and every flip-flop are traced; values are
//! emitted only when they change, as the format intends.

use std::io::{self, Write};

use crate::Netlist;

/// Short printable-ASCII identifier for signal `n` (VCD id codes).
fn id_code(mut n: usize) -> String {
    const ALPHABET: &[u8] = b"!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";
    let mut s = String::new();
    loop {
        s.push(ALPHABET[n % ALPHABET.len()] as char);
        n /= ALPHABET.len();
        if n == 0 {
            break;
        }
    }
    s
}

/// Writes a VCD trace of `netlist` driven by `stimulus` (one input
/// vector per clock cycle) into `out`.
///
/// `out` may be any [`Write`] — pass `&mut Vec<u8>` or `&mut file`
/// if you need the writer back afterwards.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
///
/// # Panics
///
/// Panics if a stimulus vector's length does not match the netlist's
/// input count (same contract as [`Netlist::eval`]).
///
/// # Example
///
/// ```
/// use flexcore_fabric::{write_vcd, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("toggle");
/// let d = b.input();
/// let q = b.register(d);
/// b.output("q", q);
/// let n = b.finish();
///
/// let mut vcd = Vec::new();
/// write_vcd(&n, &[vec![true], vec![false], vec![true]], &mut vcd)?;
/// let text = String::from_utf8(vcd).unwrap();
/// assert!(text.contains("$enddefinitions"));
/// assert!(text.contains("#2"));
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_vcd<W: Write>(
    netlist: &Netlist,
    stimulus: &[Vec<bool>],
    mut out: W,
) -> io::Result<()> {
    // Signal table: (vcd id, display name, fetch index into the
    // combined value vector [inputs..., outputs..., flops...]).
    let n_in = netlist.inputs().len();
    let n_out = netlist.outputs().len();
    let n_ff = netlist.flops();
    let mut names: Vec<String> = Vec::with_capacity(n_in + n_out + n_ff);
    for i in 0..n_in {
        names.push(format!("in{i}"));
    }
    for (name, _) in netlist.outputs() {
        // VCD identifiers may not contain spaces; bus bits like
        // "sum[3]" are legal.
        names.push(name.replace(' ', "_"));
    }
    for f in 0..n_ff {
        names.push(format!("ff{f}"));
    }

    writeln!(out, "$date reproduced-flexcore $end")?;
    writeln!(out, "$version flexcore-fabric vcd $end")?;
    writeln!(out, "$timescale 1ns $end")?;
    writeln!(out, "$scope module {} $end", netlist.name().replace(' ', "_"))?;
    for (i, name) in names.iter().enumerate() {
        writeln!(out, "$var wire 1 {} {} $end", id_code(i), name)?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    let mut state = netlist.initial_state();
    let mut last: Vec<Option<bool>> = vec![None; names.len()];
    for (t, inputs) in stimulus.iter().enumerate() {
        let flops_before = state.clone();
        let outputs = netlist.eval(inputs, &mut state);
        writeln!(out, "#{t}")?;
        let mut emit = |idx: usize, v: bool, out: &mut W| -> io::Result<()> {
            if last[idx] != Some(v) {
                writeln!(out, "{}{}", u8::from(v), id_code(idx))?;
                last[idx] = Some(v);
            }
            Ok(())
        };
        for (i, &v) in inputs.iter().enumerate() {
            emit(i, v, &mut out)?;
        }
        for (i, &v) in outputs.iter().enumerate() {
            emit(n_in + i, v, &mut out)?;
        }
        for (i, &v) in flops_before.iter().enumerate() {
            emit(n_in + n_out + i, v, &mut out)?;
        }
    }
    writeln!(out, "#{}", stimulus.len())?;
    Ok(())
}

/// Number of traceable signals a VCD of this netlist will contain.
pub fn vcd_signal_count(netlist: &Netlist) -> usize {
    netlist.inputs().len() + netlist.outputs().len() + netlist.flops()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn counter2() -> Netlist {
        // A 2-bit counter with enable: exercises inputs, flops, and
        // outputs together.
        let mut b = NetlistBuilder::new("counter2");
        let en = b.input();
        let q0 = b.dff();
        let q1 = b.dff();
        let t0 = b.xor(q0, en);
        let carry = b.and(q0, en);
        let t1 = b.xor(q1, carry);
        b.connect_dff(q0, t0);
        b.connect_dff(q1, t1);
        b.output("q0", q0);
        b.output("q1", q1);
        b.finish()
    }

    #[test]
    fn header_lists_every_signal_once() {
        let n = counter2();
        let mut vcd = Vec::new();
        write_vcd(&n, &vec![vec![true]; 4], &mut vcd).unwrap();
        let text = String::from_utf8(vcd).unwrap();
        assert_eq!(text.matches("$var wire 1 ").count(), vcd_signal_count(&n));
        assert!(text.contains("$scope module counter2 $end"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn values_are_emitted_only_on_change() {
        let n = counter2();
        let mut vcd = Vec::new();
        // Enable held high for 4 cycles: the input line must appear
        // exactly once (at #0), q0 toggles every cycle.
        write_vcd(&n, &vec![vec![true]; 4], &mut vcd).unwrap();
        let text = String::from_utf8(vcd).unwrap();
        let in_id = id_code(0);
        let changes = text
            .lines()
            .filter(|l| (l.starts_with('0') || l.starts_with('1')) && l[1..] == *in_id)
            .count();
        assert_eq!(changes, 1, "constant input dumped once:\n{text}");
    }

    #[test]
    fn counter_waveform_matches_semantics() {
        let n = counter2();
        let mut vcd = Vec::new();
        write_vcd(&n, &vec![vec![true]; 5], &mut vcd).unwrap();
        let text = String::from_utf8(vcd).unwrap();
        // q0 (output index n_in+0 = signal 1) toggles at every step:
        // transitions at #0(0), #1(1), #2(0), #3(1), #4(0).
        let q0_id = id_code(1);
        let toggles: Vec<&str> = text
            .lines()
            .filter(|l| {
                l.len() > 1 && l[1..] == q0_id && (l.starts_with('0') || l.starts_with('1'))
            })
            .collect();
        assert_eq!(toggles.len(), 5, "{text}");
    }

    #[test]
    fn id_codes_are_unique_for_many_signals() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(id_code(i)), "collision at {i}");
        }
    }

    #[test]
    fn extension_scale_netlists_dump() {
        // A big netlist dumps without trouble and stays proportional.
        let mut b = NetlistBuilder::new("wide");
        let x = b.input_bus(32);
        let y = b.input_bus(32);
        let (s, _) = b.add(&x, &y);
        let r = b.register_bus(&s);
        b.output_bus("s", &r);
        let n = b.finish();
        let mut vcd = Vec::new();
        write_vcd(&n, &[vec![false; 64], vec![true; 64]], &mut vcd).unwrap();
        assert!(vcd.len() > 500);
    }
}
