/root/repo/target/debug/examples/soft_error-a0455094497008ee.d: examples/soft_error.rs Cargo.toml

/root/repo/target/debug/examples/libsoft_error-a0455094497008ee.rmeta: examples/soft_error.rs Cargo.toml

examples/soft_error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
