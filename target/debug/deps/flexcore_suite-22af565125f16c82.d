/root/repo/target/debug/deps/flexcore_suite-22af565125f16c82.d: src/lib.rs

/root/repo/target/debug/deps/libflexcore_suite-22af565125f16c82.rlib: src/lib.rs

/root/repo/target/debug/deps/libflexcore_suite-22af565125f16c82.rmeta: src/lib.rs

src/lib.rs:
