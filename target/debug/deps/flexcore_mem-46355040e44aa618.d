/root/repo/target/debug/deps/flexcore_mem-46355040e44aa618.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

/root/repo/target/debug/deps/flexcore_mem-46355040e44aa618: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/mainmem.rs crates/mem/src/metacache.rs crates/mem/src/storebuf.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/mainmem.rs:
crates/mem/src/metacache.rs:
crates/mem/src/storebuf.rs:
