/root/repo/target/debug/deps/ablations-504d822586894f5a.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-504d822586894f5a: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
