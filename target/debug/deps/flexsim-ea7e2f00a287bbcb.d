/root/repo/target/debug/deps/flexsim-ea7e2f00a287bbcb.d: crates/bench/src/bin/flexsim.rs Cargo.toml

/root/repo/target/debug/deps/libflexsim-ea7e2f00a287bbcb.rmeta: crates/bench/src/bin/flexsim.rs Cargo.toml

crates/bench/src/bin/flexsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
