//! `flexprof` — phase-attributed host-time profiler for the simulator
//! itself.
//!
//! Runs every workload under every monitoring extension (fabric at the
//! paper's clock divisor) with the
//! [`PhaseProfiler`](flexcore_telemetry::PhaseProfiler) attached and
//! writes two artifacts that seed the repo's performance trajectory:
//!
//! * `BENCH_profile.json` — per-run host-time breakdown across the
//!   phase taxonomy (fetch/decode, execute, fabric eval, FIFO
//!   accounting, meta-cache, checkpoint, journal write/fsync), with
//!   per-phase shares of attributed time plus totals across the sweep.
//! * `BENCH_sim_throughput.json` — per-run simulated instructions and
//!   cycles per host second, with the sweep geomean.
//!
//! ```text
//! flexprof [--profile FILE] [--throughput FILE] [--workloads a,b] [--quick]
//! flexprof check BASELINE CURRENT [--tolerance PCT]
//! ```
//!
//! `check` compares per-phase **shares** (percentage points of
//! attributed time), not absolute nanoseconds: wall-clock shifts with
//! the machine, but the *shape* of where simulation time goes should
//! not. A phase whose share moved more than the tolerance (default 20
//! points) is a regression; exit code 1. Absolute throughput is
//! reported but never gated — CI machines differ too much for that to
//! be a stable signal.

use std::collections::BTreeMap;

use flexcore_bench::{geomean, paper_config, run_extension_profiled, ExtKind};
use flexcore_telemetry::{Phase, PhaseStats};
use flexcore_workloads::Workload;
use serde::Value;

fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == name)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => {
            eprintln!("flexprof: {name} requires a value");
            std::process::exit(2);
        }
    }
}

fn arg_f64(name: &str) -> Option<f64> {
    arg_string(name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("flexprof: invalid value for {name}: {v}");
            std::process::exit(2);
        })
    })
}

struct ProfiledRun {
    workload: String,
    extension: &'static str,
    instret: u64,
    cycles: u64,
    host_ns: u64,
    insns_per_sec: f64,
    cycles_per_sec: f64,
    stats: PhaseStats,
}

fn phase_breakdown(stats: &PhaseStats) -> (Value, u64) {
    let attributed = stats.grand_total_ns();
    let mut obj = Value::object();
    for phase in Phase::all() {
        let total = stats.total_ns(phase);
        let share = if attributed == 0 { 0.0 } else { total as f64 / attributed as f64 };
        obj = obj.raw(
            phase.name(),
            Value::object()
                .field("count", &stats.count(phase))
                .field("total_ns", &total)
                .field("share", &share)
                .build(),
        );
    }
    (obj.build(), attributed)
}

fn run_sweep(workloads: &[Workload]) -> Vec<ProfiledRun> {
    let mut runs = Vec::new();
    for workload in workloads {
        for ext in ExtKind::ALL {
            let (r, stats) = run_extension_profiled(workload, ext, paper_config(ext));
            eprintln!(
                "flexprof: {:>12} x {:<4} {:>9} insns in {:>7.3}s  ({:.0} sim insns/s)",
                workload.name(),
                ext.name(),
                r.instret,
                r.host_secs(),
                r.sim_insns_per_sec(),
            );
            runs.push(ProfiledRun {
                workload: workload.name().to_string(),
                extension: ext.name(),
                instret: r.instret,
                cycles: r.cycles,
                host_ns: r.host_ns,
                insns_per_sec: r.sim_insns_per_sec(),
                cycles_per_sec: r.sim_cycles_per_sec(),
                stats,
            });
        }
    }
    runs
}

fn profile_doc(runs: &[ProfiledRun]) -> Value {
    let mut out = Vec::new();
    let mut totals = PhaseStats::new();
    let mut total_host_ns = 0u64;
    for run in runs {
        let (phases, attributed) = phase_breakdown(&run.stats);
        let unattributed =
            if run.host_ns == 0 { 0.0 } else { 1.0 - attributed as f64 / run.host_ns as f64 };
        out.push(
            Value::object()
                .field("workload", &run.workload)
                .field("extension", &run.extension)
                .field("instret", &run.instret)
                .field("cycles", &run.cycles)
                .field("host_ns", &run.host_ns)
                .field("host_sim_insns_per_sec", &run.insns_per_sec)
                .raw("phases", phases)
                .field("attributed_ns", &attributed)
                .field("unattributed_share", &unattributed.max(0.0))
                .build(),
        );
        totals.merge(&run.stats);
        total_host_ns = total_host_ns.saturating_add(run.host_ns);
    }
    let (total_phases, total_attributed) = phase_breakdown(&totals);
    Value::object()
        .field("bench", &"flexprof")
        .field("runs_count", &(runs.len() as u64))
        .raw("runs", Value::Array(out))
        .raw(
            "totals",
            Value::object()
                .field("host_ns", &total_host_ns)
                .field("attributed_ns", &total_attributed)
                .raw("phases", total_phases)
                .build(),
        )
        .build()
}

fn throughput_doc(runs: &[ProfiledRun]) -> Value {
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    for run in runs {
        rows.push(
            Value::object()
                .field("workload", &run.workload)
                .field("extension", &run.extension)
                .field("instret", &run.instret)
                .field("cycles", &run.cycles)
                .field("host_ns", &run.host_ns)
                .field("host_sim_insns_per_sec", &run.insns_per_sec)
                .field("host_sim_cycles_per_sec", &run.cycles_per_sec)
                .build(),
        );
        if run.insns_per_sec > 0.0 {
            rates.push(run.insns_per_sec);
        }
    }
    let gm = if rates.is_empty() { 0.0 } else { geomean(&rates) };
    Value::object()
        .field("bench", &"sim_throughput")
        .raw("rows", Value::Array(rows))
        .field("geomean_sim_insns_per_sec", &gm)
        .build()
}

fn cmd_run() -> i32 {
    let profile_path = arg_string("--profile").unwrap_or_else(|| "BENCH_profile.json".into());
    let throughput_path =
        arg_string("--throughput").unwrap_or_else(|| "BENCH_sim_throughput.json".into());
    let all = Workload::all();
    let workloads: Vec<Workload> = match arg_string("--workloads") {
        Some(list) => list
            .split(',')
            .map(|name| {
                *all.iter().find(|w| w.name() == name).unwrap_or_else(|| {
                    eprintln!("flexprof: unknown workload `{name}`");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => all.to_vec(),
    };
    eprintln!(
        "flexprof: profiling {} workload(s) x {} extensions",
        workloads.len(),
        ExtKind::ALL.len()
    );
    let runs = run_sweep(&workloads);
    for (path, doc) in
        [(&profile_path, profile_doc(&runs)), (&throughput_path, throughput_doc(&runs))]
    {
        let mut text = serde::to_string_pretty(&doc);
        text.push('\n');
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("flexprof: {path}: {e}");
            return 2;
        }
        println!("flexprof: wrote {path}");
    }
    0
}

/// `(workload, extension) -> phase -> share` from a profile document.
fn shares_by_run(doc: &Value) -> BTreeMap<(String, String), BTreeMap<String, f64>> {
    let mut out = BTreeMap::new();
    let Some(runs) = doc.get("runs").and_then(Value::as_array) else { return out };
    for run in runs {
        let (Some(w), Some(e)) = (
            run.get("workload").and_then(Value::as_str),
            run.get("extension").and_then(Value::as_str),
        ) else {
            continue;
        };
        let mut shares = BTreeMap::new();
        if let Some(Value::Object(phases)) = run.get("phases") {
            for (name, p) in phases {
                if let Some(s) = p.get("share").and_then(Value::as_f64) {
                    shares.insert(name.clone(), s);
                }
            }
        }
        out.insert((w.to_string(), e.to_string()), shares);
    }
    out
}

fn cmd_check(baseline_path: &str, current_path: &str) -> i32 {
    let tolerance_points = arg_f64("--tolerance").unwrap_or(20.0);
    let read = |path: &str| -> Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("flexprof: {path}: {e}");
            std::process::exit(2);
        });
        serde::from_str(&text).unwrap_or_else(|e| {
            eprintln!("flexprof: {path}: invalid JSON: {e:?}");
            std::process::exit(2);
        })
    };
    let baseline = shares_by_run(&read(baseline_path));
    let current = shares_by_run(&read(current_path));
    let mut regressions = 0u32;
    let mut compared = 0u32;
    for (key, base_shares) in &baseline {
        let Some(cur_shares) = current.get(key) else {
            eprintln!("flexprof: {}/{} missing from {current_path}", key.0, key.1);
            regressions += 1;
            continue;
        };
        for (phase, base) in base_shares {
            let cur = cur_shares.get(phase).copied().unwrap_or(0.0);
            compared += 1;
            let delta_points = (cur - base).abs() * 100.0;
            if delta_points > tolerance_points {
                eprintln!(
                    "flexprof: REGRESSION {}/{} phase `{phase}`: share {:.1}% -> {:.1}% \
                     (moved {delta_points:.1} points, tolerance {tolerance_points:.1})",
                    key.0,
                    key.1,
                    base * 100.0,
                    cur * 100.0,
                );
                regressions += 1;
            }
        }
    }
    println!(
        "flexprof check: {compared} phase shares compared across {} runs, {regressions} \
         regression(s) at {tolerance_points:.1}-point tolerance",
        baseline.len()
    );
    i32::from(regressions > 0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code = match args.get(1).map(String::as_str) {
        Some("check") => match (args.get(2), args.get(3)) {
            (Some(b), Some(c)) if !b.starts_with("--") && !c.starts_with("--") => cmd_check(b, c),
            _ => {
                eprintln!("usage: flexprof check BASELINE CURRENT [--tolerance PCT]");
                2
            }
        },
        Some("--help") | Some("-h") => {
            eprintln!(
                "usage: flexprof [--profile FILE] [--throughput FILE] [--workloads a,b]\n       \
                 flexprof check BASELINE CURRENT [--tolerance PCT]"
            );
            2
        }
        _ => cmd_run(),
    };
    std::process::exit(code);
}
