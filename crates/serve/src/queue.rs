//! The bounded, priority-ordered job queue.
//!
//! Thread-safe (clients submit while the scheduler drains), bounded
//! (admission applies backpressure instead of growing without limit),
//! and accountable (shed jobs leave a [`ShedRecord`] trail). The
//! daemon's scheduler blocks on [`JobQueue::pop_timeout`] so a socket
//! submission wakes it immediately instead of being polled for.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::admission::{AdmissionStats, AdmitError, ShedRecord};
use crate::job::{JobId, JobSpec};

/// Per-queued-job backpressure hint: each job ahead of a resubmission
/// is assumed to cost at least this long, so the hint scales with
/// depth.
const RETRY_HINT_MS_PER_JOB: u64 = 500;

/// Escalation step under sustained saturation: every *consecutive*
/// rejection (no admission or pop in between) adds this much to the
/// hint, so a client hammering a full queue is pushed back
/// progressively harder instead of retrying on a fixed cadence.
const RETRY_HINT_MS_PER_STREAK: u64 = 250;

/// Ceiling on the rejection-streak escalation (the depth term still
/// applies on top).
const RETRY_HINT_STREAK_CAP: u64 = 20;

#[derive(Debug)]
struct Queued {
    spec: JobSpec,
    id: JobId,
    seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    jobs: Vec<Queued>,
    stats: AdmissionStats,
    shed: Vec<ShedRecord>,
    seq: u64,
    /// Consecutive `Rejected` outcomes since the last admission or
    /// pop — drives the monotone escalation of `retry_after_ms`.
    reject_streak: u64,
}

impl Inner {
    fn retry_hint_ms(&self) -> u64 {
        self.jobs.len() as u64 * RETRY_HINT_MS_PER_JOB
            + self.reject_streak.min(RETRY_HINT_STREAK_CAP) * RETRY_HINT_MS_PER_STREAK
    }
}

/// Bounded priority queue of campaign jobs.
#[derive(Debug)]
pub struct JobQueue {
    max_depth: usize,
    inner: Mutex<Inner>,
    /// Signalled on every submission (and on [`JobQueue::kick`]), so a
    /// scheduler blocked in [`JobQueue::pop_timeout`] wakes promptly.
    arrived: Condvar,
}

impl JobQueue {
    /// An empty queue admitting at most `max_depth` queued jobs
    /// (clamped to ≥ 1).
    pub fn new(max_depth: usize) -> JobQueue {
        JobQueue {
            max_depth: max_depth.max(1),
            inner: Mutex::new(Inner::default()),
            arrived: Condvar::new(),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned queue mutex means a panic while holding the lock;
        // the queue state itself is just Vec bookkeeping, so recover it
        // rather than cascading the panic into every other client.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Submits a job, applying admission control:
    ///
    /// * duplicate campaign hash → typed [`AdmitError::Duplicate`];
    /// * full queue, but the new job outranks the lowest-priority
    ///   queued job → that job is shed (recorded) and the new one
    ///   admitted — graceful degradation under overload;
    /// * full queue otherwise → typed [`AdmitError::Rejected`] with a
    ///   `retry_after_ms` backpressure hint that grows monotonically
    ///   with queue depth *and* with the run of consecutive rejections.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, AdmitError> {
        let id = spec.id();
        let mut inner = self.locked();
        if inner.jobs.iter().any(|q| q.id == id) {
            inner.stats.duplicates += 1;
            return Err(AdmitError::Duplicate { id });
        }
        if inner.jobs.len() >= self.max_depth {
            // Shed the lowest-priority queued job iff strictly below
            // the newcomer; among equals the newest submission goes
            // (oldest work has waited longest and keeps its slot).
            let victim = inner
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, q)| q.spec.priority < spec.priority)
                .min_by_key(|(_, q)| (q.spec.priority, std::cmp::Reverse(q.seq)))
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let gone = inner.jobs.remove(i);
                    inner.stats.shed += 1;
                    inner.shed.push(ShedRecord {
                        id: gone.id,
                        name: gone.spec.name,
                        priority: gone.spec.priority,
                        displaced_by: id,
                    });
                }
                None => {
                    inner.stats.rejected += 1;
                    inner.reject_streak += 1;
                    let depth = inner.jobs.len();
                    return Err(AdmitError::Rejected {
                        depth,
                        max_depth: self.max_depth,
                        retry_after_ms: inner.retry_hint_ms(),
                    });
                }
            }
        }
        inner.seq += 1;
        let seq = inner.seq;
        inner.jobs.push(Queued { spec, id, seq });
        inner.stats.admitted += 1;
        inner.reject_streak = 0;
        drop(inner);
        self.arrived.notify_all();
        Ok(id)
    }

    /// Removes and returns the next job: highest priority first, FIFO
    /// within a priority.
    pub fn pop(&self) -> Option<JobSpec> {
        Self::pop_locked(&mut self.locked())
    }

    fn pop_locked(inner: &mut Inner) -> Option<JobSpec> {
        let best = inner
            .jobs
            .iter()
            .enumerate()
            .max_by_key(|(_, q)| (q.spec.priority, std::cmp::Reverse(q.seq)))
            .map(|(i, _)| i)?;
        inner.reject_streak = 0;
        Some(inner.jobs.remove(best).spec)
    }

    /// [`JobQueue::pop`], but blocks up to `timeout` for a submission
    /// to arrive. Returns as soon as anything wakes it — a submission
    /// (with the job), a [`JobQueue::kick`] or the timeout (with
    /// `None`) — so the caller re-checks its own state on every wake;
    /// the daemon uses the empty-handed beats for its idle heartbeat
    /// and drain-state checks.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<JobSpec> {
        let mut inner = self.locked();
        if let Some(spec) = Self::pop_locked(&mut inner) {
            return Some(spec);
        }
        let (mut inner, _) = self
            .arrived
            .wait_timeout(inner, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::pop_locked(&mut inner)
    }

    /// Wakes every thread blocked in [`JobQueue::pop_timeout`] without
    /// submitting anything — the daemon kicks the scheduler when the
    /// lifecycle state changes (e.g. drain requested) so it re-checks
    /// its exit condition immediately.
    pub fn kick(&self) {
        self.arrived.notify_all();
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.locked().jobs.len()
    }

    /// Admission counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.locked().stats
    }

    /// The accounting trail of every shed job, in shedding order.
    pub fn shed_log(&self) -> Vec<ShedRecord> {
        self.locked().shed.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, seed: u64, priority: u8) -> JobSpec {
        JobSpec { name: name.into(), seed, priority, ..JobSpec::default() }
    }

    fn rejected_hint(q: &JobQueue, spec: JobSpec) -> u64 {
        match q.submit(spec) {
            Err(AdmitError::Rejected { retry_after_ms, .. }) => retry_after_ms,
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        q.submit(job("low-a", 1, 1)).expect("admitted");
        q.submit(job("high", 2, 5)).expect("admitted");
        q.submit(job("low-b", 3, 1)).expect("admitted");
        assert_eq!(q.pop().expect("job").name, "high");
        assert_eq!(q.pop().expect("job").name, "low-a");
        assert_eq!(q.pop().expect("job").name, "low-b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn duplicates_are_typed() {
        let q = JobQueue::new(8);
        let id = q.submit(job("a", 1, 1)).expect("admitted");
        // Same work-defining fields, different name: same campaign.
        let err = q.submit(job("a-again", 1, 3)).expect_err("duplicate");
        assert_eq!(err, AdmitError::Duplicate { id });
        assert_eq!(q.stats().duplicates, 1);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn full_queue_rejects_with_backpressure_hint() {
        let q = JobQueue::new(2);
        q.submit(job("a", 1, 2)).expect("admitted");
        q.submit(job("b", 2, 2)).expect("admitted");
        let err = q.submit(job("c", 3, 2)).expect_err("equal priority cannot displace");
        let AdmitError::Rejected { depth, max_depth, retry_after_ms } = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert_eq!((depth, max_depth), (2, 2));
        assert!(retry_after_ms > 0, "the hint tells the client when to retry");
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn overload_sheds_the_lowest_priority_with_accounting() {
        let q = JobQueue::new(2);
        let low = q.submit(job("low", 1, 1)).expect("admitted");
        q.submit(job("mid", 2, 3)).expect("admitted");
        let high = q.submit(job("high", 3, 5)).expect("displaces the low job");
        assert_eq!(q.depth(), 2);
        let shed = q.shed_log();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, low);
        assert_eq!(shed[0].name, "low");
        assert_eq!(shed[0].displaced_by, high);
        assert_eq!(q.stats(), AdmissionStats { admitted: 3, rejected: 0, duplicates: 0, shed: 1 });
        // The shed job is really gone; the survivors drain by priority.
        assert_eq!(q.pop().expect("job").name, "high");
        assert_eq!(q.pop().expect("job").name, "mid");
        assert!(q.pop().is_none());
    }

    /// Satellite: under sustained saturation the shed order is always
    /// "current lowest priority, newest first among equals" — never an
    /// arbitrary victim — across a whole ladder of displacements.
    #[test]
    fn sustained_saturation_sheds_in_strict_priority_order() {
        let q = JobQueue::new(3);
        q.submit(job("p1-old", 1, 1)).expect("admitted");
        q.submit(job("p1-new", 2, 1)).expect("admitted");
        q.submit(job("p3", 3, 3)).expect("admitted");
        // Each arrival at the full queue must displace the *current*
        // lowest-priority job; among the two p1 jobs the newer one
        // (p1-new) goes first, then p1-old, then p3.
        q.submit(job("p4-a", 4, 4)).expect("displaces p1-new");
        q.submit(job("p4-b", 5, 4)).expect("displaces p1-old");
        q.submit(job("p5", 6, 5)).expect("displaces p3");
        let shed: Vec<(String, u8)> =
            q.shed_log().into_iter().map(|s| (s.name, s.priority)).collect();
        assert_eq!(
            shed,
            vec![("p1-new".to_string(), 1), ("p1-old".to_string(), 1), ("p3".to_string(), 3)],
            "victims leave in ascending priority, newest-first among equals"
        );
        // An arrival that outranks nothing still cannot displace.
        let err = q.submit(job("p4-c", 7, 4)).expect_err("no strictly-lower victim");
        assert!(matches!(err, AdmitError::Rejected { .. }));
        assert_eq!(q.depth(), 3);
    }

    /// Satellite: `retry_after_ms` never decreases while the queue
    /// stays saturated — consecutive rejections escalate the hint —
    /// and the escalation resets once the queue makes progress.
    #[test]
    fn retry_hint_is_monotone_under_sustained_saturation() {
        let q = JobQueue::new(2);
        q.submit(job("a", 1, 2)).expect("admitted");
        q.submit(job("b", 2, 2)).expect("admitted");
        let mut last = 0u64;
        for i in 0..30 {
            let hint = rejected_hint(&q, job("burst", 100 + i, 2));
            assert!(
                hint >= last,
                "hint regressed under sustained saturation: {last} -> {hint} at rejection {i}"
            );
            last = hint;
        }
        // The streak escalates beyond the pure depth term, and is
        // capped (the hint cannot run away to hours).
        assert!(last > 2 * 500, "streak term escalated the hint: {last}");
        assert!(last <= 2 * 500 + RETRY_HINT_STREAK_CAP * RETRY_HINT_MS_PER_STREAK);

        // Progress (a pop) resets the streak: the next hint reflects
        // the shallower queue, not the stale streak.
        q.pop().expect("job");
        q.submit(job("refill", 200, 2)).expect("admitted");
        let after_progress = rejected_hint(&q, job("burst-2", 300, 2));
        assert!(
            after_progress < last,
            "hint must relax after the queue made progress ({last} -> {after_progress})"
        );
    }

    #[test]
    fn pop_timeout_wakes_on_submission_and_times_out_idle() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        // Idle: times out empty-handed (the daemon's heartbeat beat).
        assert!(q.pop_timeout(Duration::from_millis(10)).is_none());
        // A submission from another thread wakes the blocked pop.
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.submit(job("wake", 1, 1)).expect("admitted");
        });
        // Waking is edge-triggered (spurious wakes return early by
        // design), so poll in pop_timeout-sized beats up to a deadline.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut got = None;
        while got.is_none() && std::time::Instant::now() < deadline {
            got = q.pop_timeout(Duration::from_secs(1));
        }
        t.join().expect("submitter");
        assert_eq!(got.expect("woken with a job").name, "wake");
        // kick() wakes without a job.
        let q3 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q3.kick();
        });
        let started = std::time::Instant::now();
        assert!(q.pop_timeout(Duration::from_secs(30)).is_none(), "kick returns empty-handed");
        assert!(started.elapsed() < Duration::from_secs(29), "kick cut the wait short");
        t.join().expect("kicker");
    }
}
