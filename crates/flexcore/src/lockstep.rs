//! Lockstep golden-model divergence detection.
//!
//! The cycle-level [`System`](crate::System) models *timing*; the
//! ISA-level interpreter in [`flexcore_isa::interp`] models only
//! *architecture*. When lockstep checking is enabled
//! ([`System::enable_lockstep`](crate::System::enable_lockstep)), the
//! system steps the interpreter commit-for-commit alongside the
//! pipeline and diffs architectural state at every commit: PC, the
//! fetched instruction word, the full register file, and the condition
//! codes. Memory effects are checked transitively — the golden model
//! executes loads and stores against its own private memory image, so
//! a corrupted store or a flipped data word surfaces as a register
//! mismatch at the next load that observes it.
//!
//! On the first mismatch the system freezes the installed
//! [`FlightRecorder`](crate::obs::FlightRecorder) ring into a minimized
//! [`DivergenceReport`] (the last commits of both models plus the state
//! delta) and [`System::try_run`](crate::System::try_run) returns
//! [`SimError::Divergence`](crate::SimError::Divergence).
//!
//! Faults confined to the monitoring path — corrupted FFIFO packets,
//! poisoned meta-data, a wedged fabric — do **not** diverge: the golden
//! model checks the main core's architectural state, which those
//! faults leave intact. Faults that strike architectural state (ALU
//! results, registers, data or text memory) do.

use std::collections::VecDeque;
use std::fmt;

use flexcore_isa::interp::{Memory32, RefCore, RefStep};
use flexcore_isa::{Reg, NUM_REGS};
use flexcore_mem::MainMemory;
use flexcore_pipeline::{Core, TracePacket};

use crate::obs::FlightEntry;

/// Adapter implementing the ISA-level [`Memory32`] byte interface on
/// the system's [`MainMemory`] (the two crates are independent, so
/// neither can implement the other's trait directly).
#[derive(Clone, Debug)]
struct RefMem(MainMemory);

impl Memory32 for RefMem {
    fn read_u8(&self, addr: u32) -> u8 {
        self.0.read_u8(addr)
    }

    fn write_u8(&mut self, addr: u32, value: u8) {
        self.0.write_u8(addr, value);
    }
}

/// One commit as remembered in the divergence rings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockstepCommit {
    /// 1-based commit index (matching `ForwardStats::committed`).
    pub index: u64,
    /// Program counter.
    pub pc: u32,
    /// The fetched instruction word.
    pub inst_word: u32,
}

impl fmt::Display for LockstepCommit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:#010x} {:#010x}", self.index, self.pc, self.inst_word)
    }
}

/// One architectural register on which the two models disagree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegMismatch {
    /// Register index (1..=31; `%g0` cannot mismatch).
    pub reg: u8,
    /// The cycle-level core's value.
    pub dut: u32,
    /// The golden model's value.
    pub golden: u32,
}

/// Everything captured at the first lockstep mismatch: where the two
/// models disagree, the last commits of both, and the frozen
/// flight-recorder ring (empty unless a
/// [`FlightRecorder`](crate::obs::FlightRecorder) sink is installed).
#[derive(Clone, Debug, PartialEq)]
pub struct DivergenceReport {
    /// 1-based commit index at which the divergence was detected.
    pub commit_index: u64,
    /// Core-clock cycle of that commit.
    pub cycle: u64,
    /// Human-readable classification of the first observed mismatch.
    pub reason: String,
    /// The cycle-level core's PC at the divergent commit.
    pub dut_pc: u32,
    /// The golden model's PC at the divergent commit.
    pub golden_pc: u32,
    /// The instruction word the cycle-level core committed.
    pub dut_inst_word: u32,
    /// The instruction word the golden model fetched.
    pub golden_inst_word: u32,
    /// Registers on which the two models disagree, ascending by index.
    pub reg_mismatches: Vec<RegMismatch>,
    /// Condition-code mismatch as `(dut, golden)` NZVC bits, if any.
    pub icc_mismatch: Option<(u8, u8)>,
    /// The cycle-level core's last commits, oldest first (the divergent
    /// commit is last).
    pub dut_recent: Vec<LockstepCommit>,
    /// The golden model's last commits, oldest first.
    pub golden_recent: Vec<LockstepCommit>,
    /// The flight-recorder ring frozen at detection (disassembled
    /// commit history; empty without a flight-recorder sink).
    pub flight: Vec<FlightEntry>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "at commit {} (cycle {}): {}; dut pc {:#010x} golden pc {:#010x}",
            self.commit_index, self.cycle, self.reason, self.dut_pc, self.golden_pc,
        )?;
        if !self.reg_mismatches.is_empty() {
            write!(f, "; {} register mismatch(es):", self.reg_mismatches.len())?;
            for m in &self.reg_mismatches {
                write!(f, " r{}={:#010x}/{:#010x}", m.reg, m.dut, m.golden)?;
            }
        }
        if let Some((dut, golden)) = self.icc_mismatch {
            write!(f, "; icc {dut:#06b}/{golden:#06b}")?;
        }
        Ok(())
    }
}

/// How many consecutive annulled delay slots the golden model may
/// consume while catching up to one pipeline commit. SPARC annuls at
/// most the single delay slot of each branch, so anything past a small
/// bound means the models have lost alignment.
const MAX_CATCHUP_ANNULS: u32 = 4;

/// Steps an ISA-level [`RefCore`] commit-for-commit against the
/// cycle-level pipeline and reports the first architectural
/// disagreement.
#[derive(Clone, Debug)]
pub struct LockstepChecker {
    golden: RefCore,
    mem: RefMem,
    window: usize,
    dut_recent: VecDeque<LockstepCommit>,
    golden_recent: VecDeque<LockstepCommit>,
    commits_checked: u64,
}

impl LockstepChecker {
    /// Ring depth of the per-model recent-commit logs in a
    /// [`DivergenceReport`].
    pub const DEFAULT_WINDOW: usize = 16;

    /// Builds a checker synchronized to the core's current
    /// architectural state, with a private copy of `mem` for the golden
    /// model. `window` bounds the recent-commit rings (clamped to ≥ 1).
    pub fn new(core: &Core, mem: &MainMemory, window: usize) -> LockstepChecker {
        let mut regs = [0u32; NUM_REGS];
        for r in Reg::all() {
            regs[r.index()] = core.reg(r);
        }
        LockstepChecker {
            golden: RefCore::synced(regs, core.icc(), core.pc(), core.npc(), core.annul_pending()),
            mem: RefMem(mem.clone()),
            window: window.max(1),
            dut_recent: VecDeque::new(),
            golden_recent: VecDeque::new(),
            commits_checked: 0,
        }
    }

    /// Commits compared so far without divergence.
    pub fn commits_checked(&self) -> u64 {
        self.commits_checked
    }

    /// The golden model (e.g. to inspect its state in tests).
    pub fn golden(&self) -> &RefCore {
        &self.golden
    }

    /// Reconciliation hook for platform-defined register writes the ISA
    /// does not model: the BFIFO return value a `WaitForAck` forward
    /// writes into the destination register. The system mirrors that
    /// write into the golden model so the device-defined value does not
    /// read as a divergence.
    pub fn adopt_reg(&mut self, r: Reg, value: u32) {
        self.golden.set_reg(r, value);
    }

    fn push_recent(&mut self, dut: LockstepCommit, golden: LockstepCommit) {
        if self.dut_recent.len() == self.window {
            self.dut_recent.pop_front();
            self.golden_recent.pop_front();
        }
        self.dut_recent.push_back(dut);
        self.golden_recent.push_back(golden);
    }

    fn report(&self, pkt: &TracePacket, commit_index: u64, reason: String) -> DivergenceReport {
        DivergenceReport {
            commit_index,
            cycle: pkt.commit_cycle,
            reason,
            dut_pc: pkt.pc,
            golden_pc: self.golden.pc(),
            dut_inst_word: pkt.inst_word,
            golden_inst_word: 0,
            reg_mismatches: Vec::new(),
            icc_mismatch: None,
            dut_recent: self.dut_recent.iter().copied().collect(),
            golden_recent: self.golden_recent.iter().copied().collect(),
            flight: Vec::new(),
        }
    }

    /// Steps the golden model past the commit described by `pkt` and
    /// diffs architectural state against `core`.
    ///
    /// # Errors
    ///
    /// Returns the [`DivergenceReport`] for the first mismatch. The
    /// report's `flight` field is filled in by the system, which owns
    /// the trace sink.
    pub fn check_commit(
        &mut self,
        pkt: &TracePacket,
        core: &Core,
        commit_index: u64,
    ) -> Result<(), Box<DivergenceReport>> {
        let mut annuls = 0;
        let rc = loop {
            match self.golden.step(&mut self.mem) {
                RefStep::Committed(rc) => break rc,
                RefStep::Annulled => {
                    annuls += 1;
                    if annuls > MAX_CATCHUP_ANNULS {
                        return Err(Box::new(self.report(
                            pkt,
                            commit_index,
                            format!(
                                "golden model annulled {annuls} consecutive slots \
                                 without committing (models lost alignment)"
                            ),
                        )));
                    }
                }
                RefStep::Exited(e) => {
                    return Err(Box::new(self.report(
                        pkt,
                        commit_index,
                        format!("golden model exited ({e:?}) but the core committed"),
                    )));
                }
            }
        };
        let dut = LockstepCommit { index: commit_index, pc: pkt.pc, inst_word: pkt.inst_word };
        let golden = LockstepCommit { index: commit_index, pc: rc.pc, inst_word: rc.inst_word };
        self.push_recent(dut, golden);

        let mut reg_mismatches = Vec::new();
        for r in Reg::all() {
            let (d, g) = (core.reg(r), self.golden.reg(r));
            if d != g {
                reg_mismatches.push(RegMismatch { reg: r.index() as u8, dut: d, golden: g });
            }
        }
        let icc_mismatch = (core.icc() != self.golden.icc())
            .then(|| (core.icc().to_bits(), self.golden.icc().to_bits()));
        if pkt.pc != rc.pc
            || pkt.inst_word != rc.inst_word
            || !reg_mismatches.is_empty()
            || icc_mismatch.is_some()
        {
            let reason = if pkt.pc != rc.pc {
                "program counters diverged".to_string()
            } else if pkt.inst_word != rc.inst_word {
                "instruction words diverged (text image differs)".to_string()
            } else if let Some(m) = reg_mismatches.first() {
                format!("register file diverged (first at r{})", m.reg)
            } else {
                "condition codes diverged".to_string()
            };
            let mut rep = self.report(pkt, commit_index, reason);
            rep.golden_inst_word = rc.inst_word;
            rep.reg_mismatches = reg_mismatches;
            rep.icc_mismatch = icc_mismatch;
            return Err(Box::new(rep));
        }
        self.commits_checked += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_asm::assemble;
    use flexcore_mem::SystemBus;
    use flexcore_pipeline::{CoreConfig, StepResult};

    fn run_lockstep(src: &str) -> (Core, LockstepChecker) {
        let program = assemble(src).expect("assembles");
        let mut mem = MainMemory::new();
        let mut bus = SystemBus::default();
        let mut core = Core::new(CoreConfig::leon3());
        core.load_program(&program, &mut mem);
        let mut ck = LockstepChecker::new(&core, &mem, 8);
        let mut commits = 0;
        loop {
            match core.step(&mut mem, &mut bus) {
                StepResult::Committed(pkt) => {
                    commits += 1;
                    ck.check_commit(&pkt, &core, commits).expect("no divergence");
                }
                StepResult::Annulled => {}
                StepResult::Exited(_) => break,
            }
        }
        (core, ck)
    }

    #[test]
    fn clean_run_never_diverges() {
        let (_, ck) = run_lockstep(
            "start:  mov 10, %o0
                     mov 0, %o1
             loop:   add %o1, %o0, %o1
                     subcc %o0, 1, %o0
                     bne loop
                     nop
                     ta 0",
        );
        assert!(ck.commits_checked() >= 32);
    }

    #[test]
    fn loads_and_stores_stay_in_sync() {
        let (_, ck) = run_lockstep(
            "start:  set 0x8000, %o0
                     mov 7, %o1
                     st %o1, [%o0]
                     ld [%o0], %o2
                     stb %o1, [%o0 + 9]
                     ldsb [%o0 + 9], %o3
                     ta 0",
        );
        assert!(ck.commits_checked() >= 7);
    }

    #[test]
    fn corrupted_register_is_detected_at_that_commit() {
        let program = assemble(
            "start:  mov 1, %o0
                     add %o0, 2, %o1
                     add %o1, 3, %o2
                     ta 0",
        )
        .expect("assembles");
        let mut mem = MainMemory::new();
        let mut bus = SystemBus::default();
        let mut core = Core::new(CoreConfig::leon3());
        core.load_program(&program, &mut mem);
        let mut ck = LockstepChecker::new(&core, &mem, 8);
        let mut commits = 0;
        let mut diverged = None;
        loop {
            match core.step(&mut mem, &mut bus) {
                StepResult::Committed(pkt) => {
                    commits += 1;
                    if commits == 2 {
                        // A soft error lands in %o1 right at commit.
                        let v = core.reg(Reg::O1);
                        core.set_reg(Reg::O1, v ^ 0x10);
                    }
                    if let Err(rep) = ck.check_commit(&pkt, &core, commits) {
                        diverged = Some(rep);
                        break;
                    }
                }
                StepResult::Annulled => {}
                StepResult::Exited(_) => break,
            }
        }
        let rep = diverged.expect("divergence detected");
        assert_eq!(rep.commit_index, 2);
        assert_eq!(rep.reg_mismatches.len(), 1);
        assert_eq!(rep.reg_mismatches[0].reg, Reg::O1.index() as u8);
        assert_eq!(rep.reg_mismatches[0].dut ^ rep.reg_mismatches[0].golden, 0x10);
        assert_eq!(rep.dut_recent.len(), 2, "divergent commit is in the ring");
        assert!(rep.to_string().contains("register file diverged"));
    }
}
