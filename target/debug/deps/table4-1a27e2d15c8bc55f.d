/root/repo/target/debug/deps/table4-1a27e2d15c8bc55f.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-1a27e2d15c8bc55f.rmeta: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
