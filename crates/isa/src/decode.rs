//! 32-bit machine word → instruction.

use std::fmt;

use crate::{Cond, Instruction, Opcode, Operand2, Reg};

/// Error returned by [`decode`] for words outside the implemented
/// subset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    word: u32,
}

impl DecodeError {
    /// The machine word that failed to decode.
    pub fn word(self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn operand2(word: u32) -> Operand2 {
    if word & (1 << 13) != 0 {
        Operand2::Imm(sign_extend(word & 0x1fff, 13))
    } else {
        Operand2::Reg(Reg::from_field(word))
    }
}

fn alu_op3(op3: u32) -> Option<Opcode> {
    use Opcode::*;
    let op = match op3 {
        0x00 => Add,
        0x01 => And,
        0x02 => Or,
        0x03 => Xor,
        0x04 => Sub,
        0x05 => Andn,
        0x06 => Orn,
        0x07 => Xnor,
        0x10 => Addcc,
        0x11 => Andcc,
        0x12 => Orcc,
        0x13 => Xorcc,
        0x14 => Subcc,
        0x15 => Andncc,
        0x16 => Orncc,
        0x17 => Xnorcc,
        0x0a => Umul,
        0x0b => Smul,
        0x0e => Udiv,
        0x0f => Sdiv,
        0x25 => Sll,
        0x26 => Srl,
        0x27 => Sra,
        0x3c => Save,
        0x3d => Restore,
        _ => return None,
    };
    Some(op)
}

fn mem_op3(op3: u32) -> Option<Opcode> {
    use Opcode::*;
    let op = match op3 {
        0x00 => Ld,
        0x01 => Ldub,
        0x02 => Lduh,
        0x09 => Ldsb,
        0x0a => Ldsh,
        0x04 => St,
        0x05 => Stb,
        0x06 => Sth,
        0x03 => Ldd,
        0x07 => Std,
        0x0f => Swap,
        _ => return None,
    };
    Some(op)
}

/// Decodes a 32-bit SPARC machine word into an [`Instruction`].
///
/// # Errors
///
/// Returns [`DecodeError`] for any word outside the implemented subset
/// (unknown `op3` values, reserved format-2 `op2` values, etc.). The
/// core raises an illegal-instruction trap on such words.
///
/// # Example
///
/// ```
/// use flexcore_isa::{decode, Instruction};
/// assert_eq!(decode(0x0100_0000)?, Instruction::nop());
/// assert!(decode(0xffff_ffff).is_err());
/// # Ok::<(), flexcore_isa::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    let err = DecodeError { word };
    let op = word >> 30;
    match op {
        1 => Ok(Instruction::Call { disp30: sign_extend(word & 0x3fff_ffff, 30) }),
        0 => {
            let op2 = (word >> 22) & 0x7;
            match op2 {
                0b100 => Ok(Instruction::Sethi {
                    rd: Reg::from_field(word >> 25),
                    imm22: word & 0x3f_ffff,
                }),
                0b010 => Ok(Instruction::Branch {
                    cond: Cond::from_bits(((word >> 25) & 0xf) as u8),
                    annul: word & (1 << 29) != 0,
                    disp22: sign_extend(word & 0x3f_ffff, 22),
                }),
                _ => Err(err),
            }
        }
        2 => {
            let op3 = (word >> 19) & 0x3f;
            let rd = Reg::from_field(word >> 25);
            let rs1 = Reg::from_field(word >> 14);
            match op3 {
                0x38 => Ok(Instruction::Jmpl { rd, rs1, op2: operand2(word) }),
                0x3a => Ok(Instruction::Trap {
                    cond: Cond::from_bits(((word >> 25) & 0xf) as u8),
                    rs1,
                    op2: operand2(word),
                }),
                0x36 | 0x37 => Ok(Instruction::Cpop {
                    space: if op3 == 0x36 { 1 } else { 2 },
                    opc: ((word >> 5) & 0x1ff) as u16,
                    rd,
                    rs1,
                    rs2: Reg::from_field(word),
                }),
                _ => {
                    let op = alu_op3(op3).ok_or(err)?;
                    Ok(Instruction::Alu { op, rd, rs1, op2: operand2(word) })
                }
            }
        }
        _ => {
            let op3 = (word >> 19) & 0x3f;
            let op = mem_op3(op3).ok_or(err)?;
            Ok(Instruction::Mem {
                op,
                rd: Reg::from_field(word >> 25),
                rs1: Reg::from_field(word >> 14),
                op2: operand2(word),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    #[test]
    fn rejects_reserved_format2() {
        // op=0, op2=0b000 (UNIMP) is outside the subset.
        assert!(decode(0x0000_0000).is_err());
    }

    #[test]
    fn rejects_unknown_op3() {
        // op=2, op3=0x3f is reserved.
        assert!(decode(0x81f8_0000).is_err());
        // op=3, op3=0x3f.
        assert!(decode(0xc1f8_0000).is_err());
    }

    #[test]
    fn decode_error_reports_word() {
        let e = decode(0xffff_ffff).unwrap_err();
        assert_eq!(e.word(), 0xffff_ffff);
        assert!(e.to_string().contains("0xffffffff"));
    }

    #[test]
    fn trap_round_trips_condition() {
        let i = Instruction::Trap { cond: Cond::E, rs1: Reg::G0, op2: Operand2::Imm(3) };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn cpop_round_trips_all_fields() {
        let i = Instruction::Cpop { space: 2, opc: 0x1ab, rd: Reg::O1, rs1: Reg::L3, rs2: Reg::I5 };
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn sign_extension_of_simm13() {
        // or %g0, -4096, %g1
        let i = Instruction::alu(Opcode::Or, Reg::G0, Reg::G1, Operand2::Imm(-4096));
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use crate::encode;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(|i| Reg::new(i).unwrap())
    }

    fn arb_operand2() -> impl Strategy<Value = Operand2> {
        prop_oneof![arb_reg().prop_map(Operand2::Reg), (-4096i32..=4095).prop_map(Operand2::Imm),]
    }

    fn arb_alu_opcode() -> impl Strategy<Value = Opcode> {
        use Opcode::*;
        prop::sample::select(vec![
            Add, And, Or, Xor, Sub, Andn, Orn, Xnor, Addcc, Andcc, Orcc, Xorcc, Subcc, Andncc,
            Orncc, Xnorcc, Umul, Smul, Udiv, Sdiv, Sll, Srl, Sra, Save, Restore,
        ])
    }

    fn arb_mem_opcode() -> impl Strategy<Value = Opcode> {
        use Opcode::*;
        prop::sample::select(vec![Ld, Ldub, Lduh, Ldsb, Ldsh, St, Stb, Sth, Ldd, Std, Swap])
    }

    fn arb_instruction() -> impl Strategy<Value = Instruction> {
        prop_oneof![
            (arb_alu_opcode(), arb_reg(), arb_reg(), arb_operand2())
                .prop_map(|(op, rd, rs1, op2)| Instruction::Alu { op, rd, rs1, op2 }),
            (arb_mem_opcode(), arb_reg(), arb_reg(), arb_operand2())
                .prop_map(|(op, rd, rs1, op2)| Instruction::Mem { op, rd, rs1, op2 }),
            (arb_reg(), 0u32..(1 << 22)).prop_map(|(rd, imm22)| Instruction::Sethi { rd, imm22 }),
            (0u8..16, any::<bool>(), -(1i32 << 21)..(1 << 21)).prop_map(|(c, annul, disp22)| {
                Instruction::Branch { cond: Cond::from_bits(c), annul, disp22 }
            }),
            (-(1i32 << 29)..(1 << 29)).prop_map(|disp30| Instruction::Call { disp30 }),
            (arb_reg(), arb_reg(), arb_operand2()).prop_map(|(rd, rs1, op2)| Instruction::Jmpl {
                rd,
                rs1,
                op2
            }),
            (0u8..16, arb_reg(), arb_operand2()).prop_map(|(c, rs1, op2)| Instruction::Trap {
                cond: Cond::from_bits(c),
                rs1,
                op2,
            }),
            (1u8..=2, 0u16..512, arb_reg(), arb_reg(), arb_reg()).prop_map(
                |(space, opc, rd, rs1, rs2)| Instruction::Cpop { space, opc, rd, rs1, rs2 }
            ),
        ]
    }

    proptest! {
        /// Every representable instruction survives an encode/decode
        /// round-trip unchanged.
        #[test]
        fn encode_decode_round_trip(inst in arb_instruction()) {
            let word = encode(&inst);
            prop_assert_eq!(decode(word).unwrap(), inst);
        }

        /// Decoding is a function of the word: re-encoding a decoded
        /// word reproduces it exactly (for words that decode at all).
        #[test]
        fn decode_encode_fixpoint(word in any::<u32>()) {
            if let Ok(inst) = decode(word) {
                let reencoded = encode(&inst);
                // Don't-care bits in the subset: Ticc's reserved bit 29,
                // and bits 12:5 (the `asi` field) when the second
                // operand is a register (`i = 0`).
                let mut mask = !0u32;
                if matches!(inst, Instruction::Trap { .. }) {
                    mask &= !(1 << 29);
                }
                let op2 = match inst {
                    Instruction::Alu { op2, .. }
                    | Instruction::Mem { op2, .. }
                    | Instruction::Jmpl { op2, .. }
                    | Instruction::Trap { op2, .. } => Some(op2),
                    _ => None,
                };
                if let Some(Operand2::Reg(_)) = op2 {
                    mask &= !0x1fe0;
                }
                prop_assert_eq!(reencoded & mask, word & mask);
            }
        }
    }
}
