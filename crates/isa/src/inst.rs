//! The decoded instruction representation.

use crate::{Cond, Opcode, Reg};

/// The second ALU/memory operand: a register or a 13-bit signed
/// immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand2 {
    /// Register operand (`i = 0` encoding).
    Reg(Reg),
    /// Sign-extended 13-bit immediate (`i = 1` encoding).
    ///
    /// Valid range is `-4096..=4095`; the [`encode`](crate::encode)
    /// function panics outside it.
    Imm(i32),
}

impl Operand2 {
    /// The register, if this operand is a register.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand2::Reg(r) => Some(r),
            Operand2::Imm(_) => None,
        }
    }

    /// Whether an immediate fits the 13-bit signed field.
    pub fn imm_fits(imm: i32) -> bool {
        (-4096..=4095).contains(&imm)
    }
}

impl From<Reg> for Operand2 {
    fn from(r: Reg) -> Operand2 {
        Operand2::Reg(r)
    }
}

/// A decoded instruction.
///
/// Variants correspond to the SPARC V8 instruction formats the model
/// implements. The `disp` fields hold *word* displacements exactly as
/// encoded (PC-relative, counted in instructions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instruction {
    /// Format-3 ALU operation: `op rd = rs1 <op> op2`.
    ///
    /// `save`/`restore` also decode here (modeled as adds on the flat
    /// register file).
    Alu {
        /// Which ALU operation.
        op: Opcode,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second operand.
        op2: Operand2,
    },
    /// Format-3 memory access. Effective address is `rs1 + op2`; `rd` is
    /// the data register (destination for loads, source for stores).
    Mem {
        /// Which memory operation.
        op: Opcode,
        /// Data register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Address offset operand.
        op2: Operand2,
    },
    /// `sethi imm22, rd`: sets `rd` to `imm22 << 10`.
    ///
    /// `sethi 0, %g0` is the canonical `nop`.
    Sethi {
        /// Destination register.
        rd: Reg,
        /// The 22-bit immediate (stored unshifted).
        imm22: u32,
    },
    /// Conditional branch (`b<cond>`), with the SPARC annul bit.
    Branch {
        /// Branch condition.
        cond: Cond,
        /// Annul bit: if set and the branch is untaken (or for `ba,a`
        /// always), the delay-slot instruction is annulled.
        annul: bool,
        /// Signed word displacement from the branch.
        disp22: i32,
    },
    /// `call`: PC-relative call, writes return address to `%o7`.
    Call {
        /// Signed 30-bit word displacement.
        disp30: i32,
    },
    /// `jmpl rs1 + op2, rd`: indirect jump-and-link (`ret` is
    /// `jmpl %i7 + 8, %g0`).
    Jmpl {
        /// Link register (receives the `jmpl`'s own address).
        rd: Reg,
        /// Base register of the target.
        rs1: Reg,
        /// Offset operand of the target.
        op2: Operand2,
    },
    /// Trap on condition (`t<cond> rs1 + op2`). The workloads use
    /// `ta 0` to halt the simulation.
    Trap {
        /// Trap condition.
        cond: Cond,
        /// First component of the software trap number.
        rs1: Reg,
        /// Second component of the software trap number.
        op2: Operand2,
    },
    /// Co-processor operation (`cpop1`/`cpop2`), the hook FlexCore uses
    /// for software-visible monitor instructions. `opc` is the 9-bit
    /// sub-opcode; its meaning is defined by the loaded extension.
    Cpop {
        /// Which co-processor opcode space (1 or 2).
        space: u8,
        /// 9-bit extension-defined sub-opcode.
        opc: u16,
        /// Destination register (used by "read from co-processor").
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
}

impl Instruction {
    /// Convenience constructor for a format-3 ALU instruction.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an ALU opcode (i.e. `op.op3()` is `None`,
    /// or it is a memory/control opcode).
    pub fn alu(op: Opcode, rs1: Reg, rd: Reg, op2: Operand2) -> Instruction {
        assert!(
            op.op3().is_some()
                && !op.is_mem()
                && !matches!(op, Opcode::Jmpl | Opcode::Ticc | Opcode::Cpop1 | Opcode::Cpop2),
            "{op:?} is not an ALU opcode"
        );
        Instruction::Alu { op, rd, rs1, op2 }
    }

    /// Convenience constructor for a load or store.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a memory opcode.
    pub fn mem(op: Opcode, rd: Reg, rs1: Reg, op2: Operand2) -> Instruction {
        assert!(op.is_mem(), "{op:?} is not a memory opcode");
        Instruction::Mem { op, rd, rs1, op2 }
    }

    /// The canonical `nop` (`sethi 0, %g0`).
    pub fn nop() -> Instruction {
        Instruction::Sethi { rd: Reg::G0, imm22: 0 }
    }

    /// Whether this instruction is the canonical `nop`.
    pub fn is_nop(&self) -> bool {
        matches!(self, Instruction::Sethi { rd, imm22: 0 } if rd.is_zero())
    }

    /// The instruction family opcode (for classification and display).
    pub fn opcode(&self) -> Opcode {
        match *self {
            Instruction::Alu { op, .. } | Instruction::Mem { op, .. } => op,
            Instruction::Sethi { .. } => Opcode::Sethi,
            Instruction::Branch { .. } => Opcode::Bicc,
            Instruction::Call { .. } => Opcode::Call,
            Instruction::Jmpl { .. } => Opcode::Jmpl,
            Instruction::Trap { .. } => Opcode::Ticc,
            Instruction::Cpop { space: 1, .. } => Opcode::Cpop1,
            Instruction::Cpop { .. } => Opcode::Cpop2,
        }
    }

    /// Whether this is a control-transfer instruction (has a delay
    /// slot).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instruction::Branch { .. } | Instruction::Call { .. } | Instruction::Jmpl { .. }
        )
    }

    /// Source register numbers `(rs1, rs2)` as the decode logic reports
    /// them to the fabric. A missing register reads as `None`.
    pub fn source_regs(&self) -> (Option<Reg>, Option<Reg>) {
        match *self {
            Instruction::Alu { rs1, op2, .. } | Instruction::Jmpl { rs1, op2, .. } => {
                (Some(rs1), op2.reg())
            }
            // Stores (and swap) read both the address base and the data
            // register; the data register is reported as a source.
            Instruction::Mem { op, rd, rs1, op2 } => {
                if op.is_store() || op == Opcode::Swap {
                    (Some(rs1), op2.reg().or(Some(rd)))
                } else {
                    (Some(rs1), op2.reg())
                }
            }
            Instruction::Trap { rs1, op2, .. } => (Some(rs1), op2.reg()),
            Instruction::Cpop { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Instruction::Sethi { .. } | Instruction::Branch { .. } | Instruction::Call { .. } => {
                (None, None)
            }
        }
    }

    /// Destination register, if the instruction writes one.
    pub fn dest_reg(&self) -> Option<Reg> {
        match *self {
            Instruction::Alu { rd, .. }
            | Instruction::Sethi { rd, .. }
            | Instruction::Jmpl { rd, .. } => (!rd.is_zero()).then_some(rd),
            Instruction::Mem { op, rd, .. } => {
                ((op.is_load() || op == Opcode::Swap) && !rd.is_zero()).then_some(rd)
            }
            Instruction::Call { .. } => Some(Reg::O7),
            Instruction::Cpop { rd, .. } => (!rd.is_zero()).then_some(rd),
            Instruction::Branch { .. } | Instruction::Trap { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_sethi_zero_g0() {
        assert!(Instruction::nop().is_nop());
        assert!(!Instruction::Sethi { rd: Reg::G1, imm22: 0 }.is_nop());
        assert!(!Instruction::Sethi { rd: Reg::G0, imm22: 1 }.is_nop());
    }

    #[test]
    fn store_reports_data_register_as_source() {
        let st = Instruction::mem(Opcode::St, Reg::L1, Reg::SP, Operand2::Imm(8));
        assert_eq!(st.source_regs(), (Some(Reg::SP), Some(Reg::L1)));
        // With a register offset, the offset wins the rs2 slot.
        let st2 = Instruction::mem(Opcode::St, Reg::L1, Reg::SP, Operand2::Reg(Reg::L2));
        assert_eq!(st2.source_regs(), (Some(Reg::SP), Some(Reg::L2)));
    }

    #[test]
    fn load_has_destination_store_does_not() {
        let ld = Instruction::mem(Opcode::Ld, Reg::L1, Reg::SP, Operand2::Imm(0));
        assert_eq!(ld.dest_reg(), Some(Reg::L1));
        let st = Instruction::mem(Opcode::St, Reg::L1, Reg::SP, Operand2::Imm(0));
        assert_eq!(st.dest_reg(), None);
    }

    #[test]
    fn writes_to_g0_are_discarded() {
        let i = Instruction::alu(Opcode::Add, Reg::G1, Reg::G0, Operand2::Imm(1));
        assert_eq!(i.dest_reg(), None);
    }

    #[test]
    fn call_links_o7() {
        assert_eq!(Instruction::Call { disp30: 4 }.dest_reg(), Some(Reg::O7));
    }

    #[test]
    fn control_transfer_detection() {
        assert!(Instruction::Call { disp30: 0 }.is_control());
        assert!(Instruction::Branch { cond: Cond::A, annul: false, disp22: 0 }.is_control());
        assert!(!Instruction::nop().is_control());
    }

    #[test]
    #[should_panic(expected = "not an ALU opcode")]
    fn alu_constructor_rejects_memory_ops() {
        let _ = Instruction::alu(Opcode::Ld, Reg::G1, Reg::G2, Operand2::Imm(0));
    }

    #[test]
    #[should_panic(expected = "not a memory opcode")]
    fn mem_constructor_rejects_alu_ops() {
        let _ = Instruction::mem(Opcode::Add, Reg::G1, Reg::G2, Operand2::Imm(0));
    }
}
