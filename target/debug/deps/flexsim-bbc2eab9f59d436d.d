/root/repo/target/debug/deps/flexsim-bbc2eab9f59d436d.d: crates/bench/src/bin/flexsim.rs Cargo.toml

/root/repo/target/debug/deps/libflexsim-bbc2eab9f59d436d.rmeta: crates/bench/src/bin/flexsim.rs Cargo.toml

crates/bench/src/bin/flexsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
