//! The long-lived `flexserve serve` daemon: socket admission while the
//! scheduler drains.
//!
//! `Server::run` is a batch drain — submit first, then run to empty.
//! The daemon inverts the lifecycle: it binds a Unix-domain socket,
//! accepts newline-delimited JSON requests (`submit`, `status`,
//! `subscribe`, `drain`, `ping`) **concurrently** with the scheduler
//! loop draining the queue onto the one global
//! [`WorkerPool`](crate::pool::WorkerPool), and keeps doing so until
//! told to drain. Every answer is a single JSON line; every failure is
//! a typed error object, never a dropped connection with no diagnosis.
//!
//! ## Lifecycle state machine
//!
//! ```text
//! accepting ──drain request──▶ draining ──queue empty──▶ stopped
//! ```
//!
//! * **accepting** — submissions admitted (subject to backpressure:
//!   a full queue answers `rejected` with `retry_after_ms`, a known
//!   campaign answers `duplicate`).
//! * **draining** — admission refuses every `submit` with a typed
//!   `draining` error; queued and in-flight jobs run to completion and
//!   are journaled; `status`/`subscribe`/`ping` still answered.
//! * **stopped** — a final heartbeat is written, the socket file is
//!   removed, and [`Daemon::run`] returns so the process can exit 0.
//!
//! The drain trigger is a **socket request**, not a signal handler:
//! this workspace forbids `unsafe` everywhere (and vendors no libc),
//! so `SIGTERM` cannot be intercepted in-process. `flexserve client
//! drain` is the graceful path; an actual `SIGTERM`/`SIGKILL` at any
//! point is the crash path, which the crash-safe journals already
//! cover — the next `serve`/`run --resume` replays to the identical
//! state. That trade is deliberate and tested, not an accident.
//!
//! ## Robustness contracts
//!
//! * A malformed, oversized, or torn-off request affects only its own
//!   connection: the handler thread answers (or gives up) and dies;
//!   in-flight trials never notice.
//! * Subscription feeds are fed from the scheduler's record observer;
//!   a subscriber that vanishes mid-stream just drops its channel.
//! * All wall-clock fields in responses are `host_`-prefixed so CI
//!   byte-diffs can strip them with the existing `grep -v '"host_'`.

use std::collections::HashMap;
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use flexcore_bench::trial;
use flexcore_telemetry::RateMeter;
use serde::Value;

use crate::admission::AdmitError;
use crate::health::{HealthMetrics, Heartbeat};
use crate::job::{JobId, JobSpec};
use crate::journal::JournalError;
use crate::scheduler::{JobSummary, Server, ServerConfig};
use crate::worker::{TrialFailure, TrialRecord};

/// Where the daemon is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DaemonPhase {
    /// Admitting submissions and draining the queue.
    Accepting,
    /// Admission closed; finishing queued and in-flight work.
    Draining,
    /// Drained and shut down; the socket is gone.
    Stopped,
}

impl DaemonPhase {
    fn from_u8(v: u8) -> DaemonPhase {
        match v {
            0 => DaemonPhase::Accepting,
            1 => DaemonPhase::Draining,
            _ => DaemonPhase::Stopped,
        }
    }

    /// The wire name (`accepting`/`draining`/`stopped`).
    pub fn as_str(&self) -> &'static str {
        match self {
            DaemonPhase::Accepting => "accepting",
            DaemonPhase::Draining => "draining",
            DaemonPhase::Stopped => "stopped",
        }
    }
}

impl std::fmt::Display for DaemonPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Daemon knobs on top of the scheduler's [`ServerConfig`].
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// The Unix-domain socket to listen on (created on start, removed
    /// on clean shutdown; a stale file from a crash is replaced).
    pub socket_path: PathBuf,
    /// Scheduler/journal/pool configuration. The daemon forces
    /// `resume` on: a restarted daemon must pick campaigns up where
    /// the previous incarnation was killed.
    pub server: ServerConfig,
    /// Hard cap on one request line; longer requests are answered
    /// with a typed `oversized` error and the connection is closed.
    pub max_request_bytes: usize,
    /// Per-connection read timeout — a client that connects and goes
    /// silent cannot pin a handler thread forever.
    pub read_timeout: Duration,
    /// How long the scheduler waits for work before writing an idle
    /// heartbeat and re-checking the drain flag.
    pub idle_heartbeat: Duration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            socket_path: PathBuf::from("flexserve.sock"),
            server: ServerConfig::default(),
            max_request_bytes: 64 * 1024,
            read_timeout: Duration::from_secs(10),
            idle_heartbeat: Duration::from_millis(500),
        }
    }
}

/// Why the daemon could not run.
#[derive(Debug)]
pub enum DaemonError {
    /// Socket setup/teardown failure.
    Socket {
        /// The socket path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A journal failure in the scheduler loop (journals are the
    /// durability story — the daemon refuses to run without them).
    Journal(JournalError),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Socket { path, error } => write!(f, "{}: {error}", path.display()),
            DaemonError::Journal(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<JournalError> for DaemonError {
    fn from(e: JournalError) -> DaemonError {
        DaemonError::Journal(e)
    }
}

/// What a full daemon lifetime (start → drain → stop) did.
#[derive(Debug, Default)]
pub struct DaemonReport {
    /// Per-job summaries in the order they were drained.
    pub jobs: Vec<JobSummary>,
}

/// Per-job bookkeeping for `status`/`subscribe`.
enum JobTrack {
    Queued,
    Running,
    Done(Value),
}

struct Shared {
    server: Server,
    config: DaemonConfig,
    phase: AtomicU8,
    metrics: HealthMetrics,
    uptime: RateMeter,
    jobs: Mutex<HashMap<JobId, JobTrack>>,
    subs: Mutex<HashMap<JobId, Vec<Sender<String>>>>,
}

impl Shared {
    fn phase(&self) -> DaemonPhase {
        DaemonPhase::from_u8(self.phase.load(Ordering::Acquire))
    }

    fn set_phase(&self, phase: DaemonPhase) {
        self.phase.store(phase as u8, Ordering::Release);
    }

    fn track(&self, id: JobId, state: JobTrack) {
        self.jobs.lock().unwrap_or_else(std::sync::PoisonError::into_inner).insert(id, state);
    }

    /// Sends one line to every live subscriber of `id`, dropping the
    /// ones whose client has disconnected.
    fn feed(&self, id: JobId, line: &str) {
        let mut subs = self.subs.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(senders) = subs.get_mut(&id) {
            senders.retain(|tx| tx.send(line.to_string()).is_ok());
        }
    }

    /// Sends the terminal line and closes every feed for `id`.
    fn finish_feeds(&self, id: JobId, line: &str) {
        let mut subs = self.subs.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(senders) = subs.remove(&id) {
            for tx in senders {
                let _ = tx.send(line.to_string());
            }
        }
    }
}

/// The long-lived campaign daemon. [`Daemon::run`] blocks until a
/// drain request completes the lifecycle.
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
}

impl Daemon {
    /// A daemon with the given configuration.
    pub fn new(mut config: DaemonConfig) -> Daemon {
        // Crash-safe resume is the daemon's durability contract, not
        // an option.
        config.server.resume = true;
        Daemon { config }
    }

    /// Binds the socket, serves until drained, and returns the report.
    ///
    /// Blocks the calling thread (it becomes the scheduler loop); the
    /// listener and each connection get their own threads.
    pub fn run(self) -> Result<DaemonReport, DaemonError> {
        let socket_path = self.config.socket_path.clone();
        std::fs::create_dir_all(&self.config.server.journal_dir).map_err(|error| {
            DaemonError::Journal(JournalError::Io {
                path: self.config.server.journal_dir.clone(),
                error,
            })
        })?;
        // A stale socket file from a SIGKILLed incarnation would make
        // bind fail with AddrInUse; nothing can be listening on it
        // (we're the daemon), so replace it.
        match std::fs::remove_file(&socket_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(error) => return Err(DaemonError::Socket { path: socket_path, error }),
        }
        let listener = UnixListener::bind(&socket_path)
            .map_err(|error| DaemonError::Socket { path: socket_path.clone(), error })?;

        let status_path = self.config.server.status_path.clone();
        let shared = Arc::new(Shared {
            server: Server::new(self.config.server.clone()),
            config: self.config,
            phase: AtomicU8::new(DaemonPhase::Accepting as u8),
            metrics: HealthMetrics::new(),
            uptime: RateMeter::start(),
            jobs: Mutex::new(HashMap::new()),
            subs: Mutex::new(HashMap::new()),
        });

        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("flexserve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(|error| DaemonError::Socket { path: socket_path.clone(), error })?;

        let mut heartbeat = status_path.map(|p| Heartbeat::new(&p));
        let report = scheduler_loop(&shared, heartbeat.as_mut());

        // Stopped: wake the acceptor with a throwaway connection so
        // its blocking accept() returns and sees the phase change.
        shared.set_phase(DaemonPhase::Stopped);
        if let Ok(stream) = UnixStream::connect(&socket_path) {
            drop(stream);
        }
        let _ = acceptor.join();
        let _ = std::fs::remove_file(&socket_path);

        // The final heartbeat of the graceful-drain contract.
        if let Some(hb) = heartbeat.as_mut() {
            shared.metrics.queue_depth.set(shared.server.queue().depth() as u64);
            shared.metrics.sync_admission(&shared.server.queue().stats());
            let _ = hb.write(&shared.metrics);
        }
        report.map_err(DaemonError::from)
    }
}

/// The scheduler half: pop → run on the global pool → journal → feed
/// subscribers, with idle heartbeats in between, until drained.
fn scheduler_loop(
    shared: &Arc<Shared>,
    mut heartbeat: Option<&mut Heartbeat>,
) -> Result<DaemonReport, JournalError> {
    let mut report = DaemonReport::default();
    let mut spans: Vec<(String, TrialRecord)> = Vec::new();
    let mut trace_base_us = 0u64;
    if let Some(hb) = heartbeat.as_deref_mut() {
        let _ = hb.write(&shared.metrics);
    }
    loop {
        match shared.server.queue().pop_timeout(shared.config.idle_heartbeat) {
            Some(spec) => {
                let id = spec.id();
                shared.track(id, JobTrack::Running);
                shared.metrics.queue_depth.set(shared.server.queue().depth() as u64);
                let mut hooks = crate::scheduler::RunHooks {
                    spans: &mut spans,
                    trace_base_us,
                    metrics: Some(&shared.metrics),
                    heartbeat: heartbeat.as_deref_mut(),
                    observer: &mut |record| {
                        shared.feed(id, &serde::to_string(&trial_line(id, record)))
                    },
                };
                let summary = shared.server.run_one(&spec, None, &mut hooks)?;
                trace_base_us += summary.stats.elapsed_us;
                let done = done_line(&summary);
                shared.metrics.jobs_completed.inc();
                shared.track(id, JobTrack::Done(done.clone()));
                shared.finish_feeds(id, &serde::to_string(&done));
                report.jobs.push(summary);
            }
            None => {
                shared.metrics.queue_depth.set(shared.server.queue().depth() as u64);
                shared.metrics.sync_admission(&shared.server.queue().stats());
                if let Some(hb) = heartbeat.as_deref_mut() {
                    let _ = hb.write(&shared.metrics);
                }
                if shared.phase() == DaemonPhase::Draining && shared.server.queue().depth() == 0 {
                    return Ok(report);
                }
            }
        }
    }
}

fn accept_loop(listener: &UnixListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.phase() == DaemonPhase::Stopped {
            return;
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("flexserve-conn".into())
            .spawn(move || handle_connection(&conn_shared, &stream));
        // Thread exhaustion degrades to a dropped connection, not a
        // dead daemon.
        drop(spawned);
    }
}

/// What reading one request line produced.
enum Request {
    Line(String),
    Oversized,
    /// EOF before a newline — the client vanished mid-request.
    Disconnected,
    Failed,
}

fn read_request(stream: &UnixStream, max_bytes: usize, timeout: Duration) -> Request {
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return Request::Failed;
    }
    let mut limited = BufReader::new(stream.take(max_bytes as u64 + 1));
    let mut buf = Vec::new();
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => Request::Disconnected,
        Ok(_) if buf.len() > max_bytes => Request::Oversized,
        Ok(_) if !buf.ends_with(b"\n") => Request::Disconnected,
        Ok(_) => match String::from_utf8(buf) {
            Ok(line) => Request::Line(line),
            Err(_) => Request::Failed,
        },
        Err(_) => Request::Failed,
    }
}

fn respond(mut stream: &UnixStream, v: &Value) {
    let mut line = serde::to_string(v);
    line.push('\n');
    // A write failure means the client is gone; its problem, not ours.
    let _ = stream.write_all(line.as_bytes());
}

fn error_value(error: &str) -> serde::ObjectBuilder {
    Value::object().field("ok", &false).field("error", &error)
}

fn handle_connection(shared: &Arc<Shared>, stream: &UnixStream) {
    let line =
        match read_request(stream, shared.config.max_request_bytes, shared.config.read_timeout) {
            Request::Line(line) => line,
            Request::Oversized => {
                shared.metrics.requests_refused.inc();
                respond(
                    stream,
                    &error_value("oversized")
                        .field("limit_bytes", &(shared.config.max_request_bytes as u64))
                        .build(),
                );
                return;
            }
            // Mid-request disconnects and read failures get no response
            // (there is nobody to answer) and disturb nothing else.
            Request::Disconnected | Request::Failed => {
                shared.metrics.requests_refused.inc();
                return;
            }
        };
    let parsed = match serde::from_str(line.trim()) {
        Ok(v) => v,
        Err(e) => {
            shared.metrics.requests_refused.inc();
            respond(stream, &error_value("malformed").field("detail", &e.to_string()).build());
            return;
        }
    };
    shared.metrics.requests_total.inc();
    match parsed.get("op").and_then(Value::as_str) {
        Some("ping") => respond(
            stream,
            &Value::object()
                .field("ok", &true)
                .field("op", &"ping")
                .field("service", &"flexserve")
                .field("phase", &shared.phase().as_str())
                .build(),
        ),
        Some("status") => respond(stream, &status_value(shared)),
        Some("submit") => handle_submit(shared, stream, &parsed),
        Some("subscribe") => handle_subscribe(shared, stream, &parsed),
        Some("drain") => {
            // Ack FIRST: once the phase flips, an idle scheduler can
            // finish the whole shutdown before this detached handler
            // thread gets another time slice, and the process would
            // exit with the ack unsent.
            respond(
                stream,
                &Value::object()
                    .field("ok", &true)
                    .field("op", &"drain")
                    .field("phase", &"draining")
                    .build(),
            );
            if shared.phase() == DaemonPhase::Accepting {
                shared.set_phase(DaemonPhase::Draining);
            }
            // Wake the scheduler so an idle daemon notices now, not at
            // the next heartbeat tick.
            shared.server.queue().kick();
        }
        Some(op) => {
            shared.metrics.requests_refused.inc();
            respond(stream, &error_value("unknown-op").field("detail", &op).build());
        }
        None => {
            shared.metrics.requests_refused.inc();
            respond(
                stream,
                &error_value("malformed").field("detail", &"request has no `op` field").build(),
            );
        }
    }
}

fn handle_submit(shared: &Arc<Shared>, stream: &UnixStream, parsed: &Value) {
    if shared.phase() != DaemonPhase::Accepting {
        shared.metrics.requests_refused.inc();
        respond(
            stream,
            &error_value("draining")
                .field("detail", &"admission is closed; the daemon is draining")
                .build(),
        );
        return;
    }
    let Some(job) = parsed.get("job") else {
        shared.metrics.requests_refused.inc();
        respond(
            stream,
            &error_value("malformed").field("detail", &"submit request has no `job` field").build(),
        );
        return;
    };
    let spec = match JobSpec::from_value(job) {
        Ok(spec) => spec,
        Err(e) => {
            shared.metrics.requests_refused.inc();
            respond(stream, &error_value("bad-job").field("detail", &e.to_string()).build());
            return;
        }
    };
    match shared.server.submit(spec) {
        Ok(id) => {
            shared.metrics.jobs_admitted.inc();
            shared.metrics.queue_depth.set(shared.server.queue().depth() as u64);
            shared.track(id, JobTrack::Queued);
            respond(
                stream,
                &Value::object()
                    .field("ok", &true)
                    .field("op", &"submit")
                    .field("id", &id.to_string())
                    .build(),
            );
        }
        Err(AdmitError::Rejected { depth, max_depth, retry_after_ms }) => {
            shared.metrics.sync_admission(&shared.server.queue().stats());
            respond(
                stream,
                &error_value("rejected")
                    .field("depth", &(depth as u64))
                    .field("max_depth", &(max_depth as u64))
                    .field("retry_after_ms", &retry_after_ms)
                    .build(),
            );
        }
        Err(AdmitError::Duplicate { id }) => {
            respond(stream, &error_value("duplicate").field("id", &id.to_string()).build());
        }
    }
}

fn handle_subscribe(shared: &Arc<Shared>, stream: &UnixStream, parsed: &Value) {
    let id = parsed
        .get("id")
        .and_then(Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .map(JobId);
    let Some(id) = id else {
        shared.metrics.requests_refused.inc();
        respond(
            stream,
            &error_value("malformed")
                .field("detail", &"subscribe needs an `id` field (16-hex-digit campaign hash)")
                .build(),
        );
        return;
    };
    let rx = {
        let jobs = shared.jobs.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match jobs.get(&id) {
            // Already terminal: replay the terminal line and be done.
            Some(JobTrack::Done(done)) => {
                respond(stream, done);
                return;
            }
            Some(_) => {
                let (tx, rx) = std::sync::mpsc::channel();
                shared
                    .subs
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .entry(id)
                    .or_default()
                    .push(tx);
                rx
            }
            None => {
                shared.metrics.requests_refused.inc();
                respond(stream, &error_value("unknown-job").field("id", &id.to_string()).build());
                return;
            }
        }
    };
    // Stream the feed. Subscription lines can be minutes apart on a
    // long campaign, so lift the read-side timeout semantics: we only
    // write. A dead client surfaces as a failed write and ends the
    // feed without touching the job.
    shared.metrics.subscribers.inc();
    let mut writer = stream;
    for line in rx {
        let mut out = line;
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            break;
        }
    }
    shared.metrics.subscribers.dec();
}

/// One streamed trial-record line: the deterministic outcome record
/// (shared with `faultsweep`'s JSONL) wrapped with job identity;
/// wall-clock spans are `host_`-prefixed.
fn trial_line(id: JobId, record: &TrialRecord) -> Value {
    let base = Value::object()
        .field("stream", &"trial")
        .field("id", &id.to_string())
        .field("index", &(record.index as u64))
        .field("attempts", &u64::from(record.attempts));
    let base = match &record.outcome {
        Ok(outcome) => base.raw("record", trial::outcome_record(&record.label, outcome)),
        Err(TrialFailure::Panicked { attempts, last_message }) => base
            .field("label", &record.label)
            .field("quarantined", &true)
            .field("failed_attempts", &u64::from(*attempts))
            .field("failure", &last_message.as_str()),
    };
    base.field("host_dur_us", &record.dur_us).build()
}

/// The terminal subscription line for a drained job.
fn done_line(summary: &JobSummary) -> Value {
    Value::object()
        .field("stream", &"done")
        .field("id", &summary.id.to_string())
        .field("name", &summary.name)
        .field("state", &summary.state.to_string())
        .field("trials", &summary.trials)
        .field("executed", &summary.stats.executed)
        .field("reused", &summary.stats.reused)
        .field("retried", &summary.stats.retried)
        .field("quarantined", &summary.stats.quarantined)
        .build()
}

/// The `status` response: phase + deterministic counters, with the
/// only wall-clock scalar `host_`-prefixed.
fn status_value(shared: &Shared) -> Value {
    shared.metrics.sync_admission(&shared.server.queue().stats());
    let m = &shared.metrics;
    Value::object()
        .field("ok", &true)
        .field("op", &"status")
        .field("service", &"flexserve")
        .field("phase", &shared.phase().as_str())
        .field("queue_depth", &(shared.server.queue().depth() as u64))
        .field("workers", &(shared.server.pool().width() as u64))
        .field("busy_workers", &m.busy_workers.get())
        .field("jobs_admitted", &m.jobs_admitted.get())
        .field("jobs_completed", &m.jobs_completed.get())
        .field("trials_executed", &m.trials_executed.get())
        .field("trials_quarantined", &m.trials_quarantined.get())
        .field("backpressure_rejections", &m.backpressure_rejections.get())
        .field("jobs_shed", &m.jobs_shed.get())
        .field("subscribers", &m.subscribers.get())
        .field("journal_compactions", &m.journal_compactions.get())
        .field("requests_total", &m.requests_total.get())
        .field("requests_refused", &m.requests_refused.get())
        .field("host_uptime_secs", &shared.uptime.elapsed_secs())
        .build()
}
