/root/repo/target/debug/deps/sim_throughput-7c8308a2f1ad6fba.d: crates/bench/benches/sim_throughput.rs

/root/repo/target/debug/deps/libsim_throughput-7c8308a2f1ad6fba.rmeta: crates/bench/benches/sim_throughput.rs

crates/bench/benches/sim_throughput.rs:
