/root/repo/target/debug/deps/flexcore_isa-8297fa579bb5831c.d: crates/isa/src/lib.rs crates/isa/src/class.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libflexcore_isa-8297fa579bb5831c.rmeta: crates/isa/src/lib.rs crates/isa/src/class.rs crates/isa/src/cond.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/opcode.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/class.rs:
crates/isa/src/cond.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/opcode.rs:
crates/isa/src/reg.rs:
