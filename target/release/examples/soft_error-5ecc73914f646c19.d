/root/repo/target/release/examples/soft_error-5ecc73914f646c19.d: examples/soft_error.rs

/root/repo/target/release/examples/soft_error-5ecc73914f646c19: examples/soft_error.rs

examples/soft_error.rs:
