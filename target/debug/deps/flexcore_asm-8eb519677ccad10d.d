/root/repo/target/debug/deps/flexcore_asm-8eb519677ccad10d.d: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

/root/repo/target/debug/deps/flexcore_asm-8eb519677ccad10d: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs

crates/asm/src/lib.rs:
crates/asm/src/emit.rs:
crates/asm/src/error.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
