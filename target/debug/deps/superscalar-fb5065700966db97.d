/root/repo/target/debug/deps/superscalar-fb5065700966db97.d: crates/bench/src/bin/superscalar.rs Cargo.toml

/root/repo/target/debug/deps/libsuperscalar-fb5065700966db97.rmeta: crates/bench/src/bin/superscalar.rs Cargo.toml

crates/bench/src/bin/superscalar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
