//! Regenerates the paper's **Table IV**: execution time of every
//! benchmark under every extension, normalized to the unmonitored
//! baseline, with the fabric at 1X (the ASIC configuration), 0.5X, and
//! 0.25X of the core clock. The paper's published cells are printed
//! alongside.
//!
//! `--software` additionally runs the §V.C software-instrumentation
//! baselines on each benchmark.
//!
//! `--series <dir>` additionally writes each monitored run's
//! cycle-resolved epoch metrics as
//! `<dir>/table4_<workload>_<ext>_<clock>.jsonl`.

use flexcore::software::{run_software_monitored, SoftwareMonitor};
use flexcore::SystemConfig;
use flexcore_bench::{
    baseline_cycles, geomean, paper, run_extension, run_extension_series, run_panic_tolerant,
    series_dir_from_args, ExtKind, MAX_INSTRUCTIONS,
};
use flexcore_workloads::Workload;

fn main() {
    let software = std::env::args().any(|a| a == "--software");
    let series = series_dir_from_args();
    let configs = [
        ("1X", SystemConfig::fabric_full_speed()),
        ("0.5X", SystemConfig::fabric_half_speed()),
        ("0.25X", SystemConfig::fabric_quarter_speed()),
    ];

    // All simulations run up front on worker threads; a panicking
    // benchmark × extension combination is reported at the end instead
    // of killing the whole table.
    let workloads = Workload::all();
    let baselines = run_panic_tolerant(
        workloads
            .iter()
            .map(|w| {
                let w = *w;
                (format!("{} baseline", w.name()), move || baseline_cycles(&w))
            })
            .collect(),
    );
    let mut jobs = Vec::new();
    for w in &workloads {
        for ext in ExtKind::ALL {
            for (cname, cfg) in configs {
                let w = *w;
                let series = series.clone();
                jobs.push((format!("{} under {} at {cname}", w.name(), ext.name()), move || {
                    match &series {
                        Some(dir) => {
                            let stem = format!(
                                "table4_{}_{}_{}",
                                w.name(),
                                ext.name().to_lowercase(),
                                cname.to_lowercase()
                            );
                            run_extension_series(&w, ext, cfg, dir, &stem)
                        }
                        None => run_extension(&w, ext, cfg),
                    }
                }));
            }
        }
    }
    let runs = run_panic_tolerant(jobs);

    println!("Table IV: normalized execution time (measured, with paper values in parentheses)");
    println!("{}", "=".repeat(118));
    print!("{:<14}", "Benchmark");
    for ext in ExtKind::ALL {
        print!("| {:<24}", format!("{} 1X/0.5X/0.25X", ext.name()));
    }
    println!();
    println!("{}", "-".repeat(118));

    // geomean accumulators: [ext][clock]
    let mut ratios: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 3]; 4];
    let mut failures: Vec<String> = Vec::new();

    for (wi, workload) in workloads.iter().enumerate() {
        let base = match &baselines[wi].outcome {
            Ok(cycles) => Some(*cycles),
            Err(msg) => {
                failures.push(format!("{}: {msg}", baselines[wi].label));
                None
            }
        };
        print!("{:<14}", workload.name());
        let prow = &paper::TABLE_IV[wi];
        for (ei, ext) in ExtKind::ALL.into_iter().enumerate() {
            let paper_cells = match ext {
                ExtKind::Umc => prow.umc,
                ExtKind::Dift => prow.dift,
                ExtKind::Bc => prow.bc,
                ExtKind::Sec => prow.sec,
            };
            let mut cells = String::new();
            for ci in 0..3 {
                let report = &runs[(wi * ExtKind::ALL.len() + ei) * configs.len() + ci];
                match (&report.outcome, base) {
                    (Ok(run), Some(base)) => {
                        let ratio = run.cycles as f64 / base as f64;
                        ratios[ei][ci].push(ratio);
                        cells.push_str(&format!("{:.2}({:.2}) ", ratio, paper_cells[ci]));
                    }
                    (Err(msg), _) => {
                        failures.push(format!("{}: {msg}", report.label));
                        cells.push_str("died ");
                    }
                    (Ok(_), None) => cells.push_str("n/a "),
                }
            }
            print!("| {cells:<24}");
        }
        println!();
    }

    println!("{}", "-".repeat(118));
    print!("{:<14}", "geomean");
    let pg = &paper::TABLE_IV[6];
    for (ei, ext) in ExtKind::ALL.into_iter().enumerate() {
        let paper_cells = match ext {
            ExtKind::Umc => pg.umc,
            ExtKind::Dift => pg.dift,
            ExtKind::Bc => pg.bc,
            ExtKind::Sec => pg.sec,
        };
        let mut cells = String::new();
        for ci in 0..3 {
            if ratios[ei][ci].is_empty() {
                cells.push_str("n/a ");
            } else {
                cells.push_str(&format!(
                    "{:.2}({:.2}) ",
                    geomean(&ratios[ei][ci]),
                    paper_cells[ci]
                ));
            }
        }
        print!("| {cells:<24}");
    }
    println!();
    if !failures.is_empty() {
        println!("\n{} run(s) died (panic caught; other rows unaffected):", failures.len());
        for f in &failures {
            println!("  {f}");
        }
    }
    println!(
        "\nPaper's operating points: UMC/DIFT/BC run the fabric at 0.5X, SEC at 0.25X.\n\
         The 1X column corresponds to the full-ASIC implementations."
    );

    if software {
        println!("\nSoftware monitoring baselines (same core, instrumented; §V.C):");
        println!("{}", "-".repeat(84));
        print!("{:<14}", "Benchmark");
        for m in ["UMC sw", "DIFT sw", "BC sw", "SEC sw"] {
            print!("{m:>12}");
        }
        println!();
        let monitors = [
            SoftwareMonitor::umc(),
            SoftwareMonitor::dift(),
            SoftwareMonitor::bc(),
            SoftwareMonitor::sec(),
        ];
        let mut sw_ratios: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for workload in Workload::all() {
            let base = baseline_cycles(&workload);
            let program = workload.program().expect("assembles");
            print!("{:<14}", workload.name());
            for (mi, monitor) in monitors.iter().enumerate() {
                let sw = run_software_monitored(monitor, &program, MAX_INSTRUCTIONS);
                let ratio = sw.cycles as f64 / base as f64;
                sw_ratios[mi].push(ratio);
                print!("{:>11.2}x", ratio);
            }
            println!();
        }
        print!("{:<14}", "geomean");
        for r in &sw_ratios {
            print!("{:>11.2}x", geomean(r));
        }
        println!();
        println!("\nPaper's quoted software comparison points:");
        for (name, quote) in paper::SOFTWARE_QUOTES {
            println!("  {name}: {quote}");
        }
    }
}
