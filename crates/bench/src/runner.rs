//! Shared simulation runners for the table/figure binaries.

use std::path::{Path, PathBuf};

use flexcore::ext::{Bc, Dift, Sec, Umc};
use flexcore::obs::{MetricsRecorder, NullSink, TraceSink};
use flexcore::{RunResult, System, SystemConfig};
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig, ExitReason};
use flexcore_telemetry::{PhaseProfiler, PhaseStats};
use flexcore_workloads::Workload;

/// Instruction budget per simulation (well above any workload's need;
/// hitting it is treated as a failed run).
pub const MAX_INSTRUCTIONS: u64 = 200_000_000;

/// Which extension to instantiate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExtKind {
    /// Uninitialized memory check.
    Umc,
    /// Dynamic information flow tracking.
    Dift,
    /// Array bound check.
    Bc,
    /// Soft error check.
    Sec,
}

impl ExtKind {
    /// The four extensions in the paper's column order.
    pub const ALL: [ExtKind; 4] = [ExtKind::Umc, ExtKind::Dift, ExtKind::Bc, ExtKind::Sec];

    /// Paper column name.
    pub fn name(self) -> &'static str {
        match self {
            ExtKind::Umc => "UMC",
            ExtKind::Dift => "DIFT",
            ExtKind::Bc => "BC",
            ExtKind::Sec => "SEC",
        }
    }

    /// The fabric clock divisor the paper uses for this extension
    /// (§V.C: UMC/DIFT/BC at 0.5X, SEC at 0.25X).
    pub fn paper_divisor(self) -> u32 {
        match self {
            ExtKind::Sec => 4,
            _ => 2,
        }
    }
}

/// Condensed result of one monitored run.
#[derive(Clone, Copy, Debug)]
pub struct RunSummary {
    /// Total cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instret: u64,
    /// Fraction of committed instructions forwarded to the fabric.
    pub forwarded_fraction: f64,
    /// Meta-data cache miss ratio.
    pub meta_miss_ratio: f64,
    /// Commit-stall cycles from FIFO back-pressure.
    pub fifo_stall_cycles: u64,
}

/// Runs `workload` on the bare Leon3 model and returns its cycle count.
///
/// # Panics
///
/// Panics if the workload fails its self-check (a reproduction bug).
pub fn baseline_cycles(workload: &Workload) -> u64 {
    let program = workload.program().expect("workload assembles");
    let mut mem = MainMemory::new();
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    core.load_program(&program, &mut mem);
    let exit = core.run(&mut mem, &mut bus, MAX_INSTRUCTIONS);
    assert_eq!(exit, ExitReason::Halt(0), "{} baseline failed", workload.name());
    core.quiesced_at()
}

fn monitored<E: flexcore::Extension, S: TraceSink>(
    workload: &Workload,
    config: SystemConfig,
    ext: E,
    sink: S,
) -> (RunResult, S) {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::with_sink(config, ext, sink);
    sys.load_program(&program);
    let r = sys.try_run(MAX_INSTRUCTIONS).expect("simulation error");
    assert_eq!(
        r.exit,
        ExitReason::Halt(0),
        "{} under monitoring failed: {:?} / {:?}",
        workload.name(),
        r.exit,
        r.monitor_trap
    );
    (r, sys.into_sink())
}

fn condense(r: &RunResult) -> RunSummary {
    RunSummary {
        cycles: r.cycles,
        instret: r.instret,
        forwarded_fraction: r.forward.forwarded_fraction(),
        meta_miss_ratio: r.meta_cache.miss_ratio(),
        fifo_stall_cycles: r.forward.fifo_stall_cycles,
    }
}

/// Runs `workload` under `ext` with the given system configuration.
///
/// # Panics
///
/// Panics if the workload fails its self-check or the monitor raises a
/// spurious trap (either is a reproduction bug — the workloads are
/// benign).
pub fn run_extension(workload: &Workload, ext: ExtKind, config: SystemConfig) -> RunSummary {
    let (r, NullSink) = match ext {
        ExtKind::Umc => monitored(workload, config, Umc::new(), NullSink),
        ExtKind::Dift => monitored(workload, config, Dift::new(), NullSink),
        ExtKind::Bc => monitored(workload, config, Bc::new(), NullSink),
        ExtKind::Sec => monitored(workload, config, Sec::new(), NullSink),
    };
    condense(&r)
}

fn monitored_profiled<E: flexcore::Extension>(
    workload: &Workload,
    config: SystemConfig,
    ext: E,
) -> (RunResult, PhaseStats) {
    let program = workload.program().expect("workload assembles");
    let mut sys = System::with_profiler(config, ext, NullSink, PhaseProfiler::new());
    sys.load_program(&program);
    let r = sys.try_run(MAX_INSTRUCTIONS).expect("simulation error");
    assert_eq!(
        r.exit,
        ExitReason::Halt(0),
        "{} under monitoring failed: {:?} / {:?}",
        workload.name(),
        r.exit,
        r.monitor_trap
    );
    (r, sys.into_profiler().into_stats())
}

/// Like [`run_extension`], but with the phase profiler attached:
/// returns the full [`RunResult`] (including `host_ns`) plus the
/// per-phase host-time attribution — the data behind `flexprof`.
pub fn run_extension_profiled(
    workload: &Workload,
    ext: ExtKind,
    config: SystemConfig,
) -> (RunResult, PhaseStats) {
    match ext {
        ExtKind::Umc => monitored_profiled(workload, config, Umc::new()),
        ExtKind::Dift => monitored_profiled(workload, config, Dift::new()),
        ExtKind::Bc => monitored_profiled(workload, config, Bc::new()),
        ExtKind::Sec => monitored_profiled(workload, config, Sec::new()),
    }
}

/// The paper-faithful system configuration for an extension: fabric at
/// half the core clock for UMC/DIFT/BC, a quarter for SEC (§V.C).
pub fn paper_config(ext: ExtKind) -> SystemConfig {
    match ext.paper_divisor() {
        4 => SystemConfig::fabric_quarter_speed(),
        _ => SystemConfig::fabric_half_speed(),
    }
}

/// The `--series <dir>` flag shared by the figure/table binaries: when
/// present, every monitored run also emits its cycle-resolved epoch
/// series as `<dir>/<stem>.jsonl`.
pub fn series_dir_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--series" {
            return Some(args.next().expect("--series needs a directory").into());
        }
    }
    None
}

/// Like [`run_extension`], but samples epoch metrics during the run and
/// writes them as JSONL to `<dir>/<stem>.jsonl` (creating `dir` as
/// needed). The sampled series is cross-checked against the run's final
/// aggregate counters before it is written.
///
/// # Panics
///
/// Panics on the same conditions as [`run_extension`], on an
/// epoch-vs-aggregate mismatch (an instrumentation bug), and on I/O
/// errors writing the series file.
pub fn run_extension_series(
    workload: &Workload,
    ext: ExtKind,
    config: SystemConfig,
    dir: &Path,
    stem: &str,
) -> RunSummary {
    let sampler = MetricsRecorder::new(MetricsRecorder::DEFAULT_EPOCH_CYCLES);
    let (r, m) = match ext {
        ExtKind::Umc => monitored(workload, config, Umc::new(), sampler),
        ExtKind::Dift => monitored(workload, config, Dift::new(), sampler),
        ExtKind::Bc => monitored(workload, config, Bc::new(), sampler),
        ExtKind::Sec => monitored(workload, config, Sec::new(), sampler),
    };
    if let Err(e) = m.check_against(&r) {
        panic!("{stem}: epoch series disagrees with the run result: {e}");
    }
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display()));
    let path = dir.join(format!("{stem}.jsonl"));
    std::fs::write(&path, m.to_jsonl(&r)).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    condense(&r)
}

/// Result of one named job executed by [`run_panic_tolerant`].
#[derive(Clone, Debug)]
pub struct JobReport<T> {
    /// The label the job was submitted under (benchmark × extension …).
    pub label: String,
    /// `Ok` with the job's value, or `Err` with the panic message.
    pub outcome: Result<T, String>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Runs every `(label, job)` pair on its own worker thread, converting
/// worker panics into `Err(message)` reports instead of propagating
/// them — one crashing benchmark/extension combination no longer takes
/// an entire sweep down with it.
///
/// At most `available_parallelism()` jobs run at a time, and reports
/// come back in submission order.
pub fn run_panic_tolerant<T, F>(jobs: Vec<(String, F)>) -> Vec<JobReport<T>>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    run_panic_tolerant_observed(jobs, |_, _, _| {})
}

/// [`run_panic_tolerant`] with a completion callback: `on_done(done,
/// total, report)` fires on the calling thread as each job is joined
/// (in submission order within a batch), which is where `faultsweep`
/// hangs its rate/ETA progress line.
pub fn run_panic_tolerant_observed<T, F, C>(
    jobs: Vec<(String, F)>,
    mut on_done: C,
) -> Vec<JobReport<T>>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
    C: FnMut(usize, usize, &JobReport<T>),
{
    let width = std::thread::available_parallelism().map_or(4, usize::from).max(1);
    let total = jobs.len();
    let mut reports = Vec::with_capacity(total);
    let mut queue = jobs.into_iter();
    loop {
        let handles: Vec<_> = queue
            .by_ref()
            .take(width)
            .map(|(label, job)| (label, std::thread::spawn(job)))
            .collect();
        if handles.is_empty() {
            break;
        }
        for (label, handle) in handles {
            let outcome = handle.join().map_err(panic_message);
            reports.push(JobReport { label, outcome });
            on_done(reports.len(), total, reports.last().expect("just pushed"));
        }
    }
    reports
}

/// Geometric mean of a slice of ratios.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity_is_identity() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_divisors() {
        assert_eq!(ExtKind::Umc.paper_divisor(), 2);
        assert_eq!(ExtKind::Sec.paper_divisor(), 4);
    }

    #[test]
    fn panic_tolerant_runner_reports_and_continues() {
        // Silence the default per-thread panic backtrace for the
        // intentionally-crashing job.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let jobs: Vec<(String, Box<dyn FnOnce() -> u32 + Send>)> = vec![
            ("first".to_string(), Box::new(|| 1)),
            ("crash".to_string(), Box::new(|| panic!("sha under DIFT died"))),
            ("last".to_string(), Box::new(|| 3)),
        ];
        let reports = run_panic_tolerant(jobs);
        std::panic::set_hook(prev);

        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].outcome, Ok(1));
        assert_eq!(reports[1].label, "crash");
        let err = reports[1].outcome.as_ref().unwrap_err();
        assert!(err.contains("sha under DIFT died"), "got: {err}");
        assert_eq!(reports[2].outcome, Ok(3));
    }
}
