//! Criterion micro-benchmarks: the assembler on the largest workload
//! sources.

use criterion::{criterion_group, criterion_main, Criterion};
use flexcore_asm::assemble;
use flexcore_workloads::Workload;

fn bench_assembler(c: &mut Criterion) {
    let sha = Workload::sha().source();
    let fft = Workload::fft().source();
    let mut g = c.benchmark_group("assemble");
    g.bench_function("sha", |b| b.iter(|| assemble(&sha).unwrap().len()));
    g.bench_function("fft", |b| b.iter(|| assemble(&fft).unwrap().len()));
    g.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_assembler
}
criterion_main!(benches);
