/root/repo/target/debug/deps/flexcore_fabric-cf46aed2df1169d4.d: crates/fabric/src/lib.rs crates/fabric/src/bitstream.rs crates/fabric/src/calib.rs crates/fabric/src/cost.rs crates/fabric/src/lutmap.rs crates/fabric/src/netlist.rs crates/fabric/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_fabric-cf46aed2df1169d4.rmeta: crates/fabric/src/lib.rs crates/fabric/src/bitstream.rs crates/fabric/src/calib.rs crates/fabric/src/cost.rs crates/fabric/src/lutmap.rs crates/fabric/src/netlist.rs crates/fabric/src/vcd.rs Cargo.toml

crates/fabric/src/lib.rs:
crates/fabric/src/bitstream.rs:
crates/fabric/src/calib.rs:
crates/fabric/src/cost.rs:
crates/fabric/src/lutmap.rs:
crates/fabric/src/netlist.rs:
crates/fabric/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
