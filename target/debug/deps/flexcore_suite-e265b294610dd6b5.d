/root/repo/target/debug/deps/flexcore_suite-e265b294610dd6b5.d: src/lib.rs

/root/repo/target/debug/deps/libflexcore_suite-e265b294610dd6b5.rlib: src/lib.rs

/root/repo/target/debug/deps/libflexcore_suite-e265b294610dd6b5.rmeta: src/lib.rs

src/lib.rs:
