//! The [`TraceSink`] trait, the zero-cost [`NullSink`], and the
//! [`Observer`] composite.

use flexcore_pipeline::TracePacket;

use crate::obs::{ChromeRecorder, FlightEntry, FlightRecorder, MetricsRecorder, TraceEvent};

/// A consumer of instrumentation events.
///
/// [`System`](crate::System) is generic over its sink and every hook
/// point is guarded by [`TraceSink::ENABLED`], so the default
/// [`NullSink`] monomorphizes to nothing: no event construction, no
/// call, no branch. Implementations that record should leave `ENABLED`
/// at its default `true`.
pub trait TraceSink {
    /// Whether hook points fire at all. `false` compiles the entire
    /// instrumentation path out of the hot loop.
    const ENABLED: bool = true;

    /// Receives one event.
    fn event(&mut self, ev: TraceEvent);

    /// Receives every committed instruction's trace packet (called
    /// alongside [`TraceEvent::Commit`]; packets are too large to embed
    /// in the event enum). Default: ignored.
    fn commit_packet(&mut self, _pkt: &TracePacket) {}

    /// Receives every *forwarded* packet (called alongside
    /// [`TraceEvent::Forward`]). Default: ignored.
    fn forward_packet(&mut self, _pkt: &TracePacket) {}

    /// The crash-context flight log, newest entry last. Default: empty.
    /// [`System`](crate::System) attaches this to deadlock snapshots
    /// and the final [`RunResult`](crate::RunResult).
    fn flight_log(&self) -> Vec<FlightEntry> {
        Vec::new()
    }

    /// Re-arms any frozen trap context (see
    /// [`FlightRecorder::rearm`](crate::obs::FlightRecorder::rearm)) so
    /// a post-recovery trap freezes fresh state. Default: ignored.
    fn rearm_flight(&mut self) {}
}

/// The default sink: observes nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _ev: TraceEvent) {}
}

/// A sink that records every event verbatim — for tests and ad-hoc
/// inspection, not for long runs.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// Every event, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for VecSink {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Captures the first N forwarded packets — the stimulus source for
/// netlist waveform (VCD) dumps.
#[derive(Clone, Debug)]
pub struct PacketTap {
    cap: usize,
    packets: Vec<TracePacket>,
}

impl PacketTap {
    /// Taps the first `cap` forwarded packets.
    pub fn new(cap: usize) -> PacketTap {
        PacketTap { cap, packets: Vec::with_capacity(cap.min(4096)) }
    }

    /// The captured packets, oldest first.
    pub fn packets(&self) -> &[TracePacket] {
        &self.packets
    }
}

impl TraceSink for PacketTap {
    fn event(&mut self, _ev: TraceEvent) {}

    fn forward_packet(&mut self, pkt: &TracePacket) {
        if self.packets.len() < self.cap {
            self.packets.push(*pkt);
        }
    }
}

/// A composite sink: any combination of metrics, Chrome trace, flight
/// recorder, and packet tap, so a single run feeds several exporters.
///
/// Dispatch to each member is a branch on an `Option` — still no `dyn`
/// anywhere.
#[derive(Debug, Default)]
pub struct Observer {
    /// Epoch-bucketed metrics, if sampling.
    pub metrics: Option<MetricsRecorder>,
    /// Chrome trace-event recording, if tracing.
    pub chrome: Option<ChromeRecorder>,
    /// Crash-context ring buffer, if flying.
    pub flight: Option<FlightRecorder>,
    /// Forwarded-packet capture, if tapping.
    pub packets: Option<PacketTap>,
}

impl Observer {
    /// An empty observer (records nothing until populated).
    pub fn new() -> Observer {
        Observer::default()
    }

    /// Adds an epoch-metrics sampler.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRecorder) -> Observer {
        self.metrics = Some(metrics);
        self
    }

    /// Adds a Chrome trace-event recorder.
    #[must_use]
    pub fn with_chrome(mut self, chrome: ChromeRecorder) -> Observer {
        self.chrome = Some(chrome);
        self
    }

    /// Adds a flight recorder holding the last `depth` commits.
    #[must_use]
    pub fn with_flight(mut self, depth: usize) -> Observer {
        self.flight = Some(FlightRecorder::new(depth));
        self
    }

    /// Adds a packet tap capturing the first `cap` forwarded packets.
    #[must_use]
    pub fn with_packet_tap(mut self, cap: usize) -> Observer {
        self.packets = Some(PacketTap::new(cap));
        self
    }

    /// Whether nothing is installed (an empty observer still pays the
    /// hook cost; prefer [`NullSink`] then).
    pub fn is_empty(&self) -> bool {
        self.metrics.is_none()
            && self.chrome.is_none()
            && self.flight.is_none()
            && self.packets.is_none()
    }
}

impl TraceSink for Observer {
    fn event(&mut self, ev: TraceEvent) {
        if let Some(m) = &mut self.metrics {
            m.event(ev);
        }
        if let Some(c) = &mut self.chrome {
            c.event(ev);
        }
        if let Some(f) = &mut self.flight {
            f.event(ev);
        }
    }

    fn commit_packet(&mut self, pkt: &TracePacket) {
        if let Some(f) = &mut self.flight {
            f.commit_packet(pkt);
        }
    }

    fn forward_packet(&mut self, pkt: &TracePacket) {
        if let Some(p) = &mut self.packets {
            p.forward_packet(pkt);
        }
    }

    fn flight_log(&self) -> Vec<FlightEntry> {
        self.flight.as_ref().map(TraceSink::flight_log).unwrap_or_default()
    }

    fn rearm_flight(&mut self) {
        if let Some(f) = &mut self.flight {
            f.rearm();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_isa::InstrClass;

    #[test]
    fn null_sink_is_disabled_and_zero_sized() {
        const { assert!(!NullSink::ENABLED) };
        assert_eq!(std::mem::size_of::<NullSink>(), 0);
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::default();
        s.event(TraceEvent::Forward { cycle: 1, class: InstrClass::Ld });
        s.event(TraceEvent::Forward { cycle: 2, class: InstrClass::St });
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].cycle(), 1);
    }

    #[test]
    fn packet_tap_caps_capture() {
        let mut tap = PacketTap::new(2);
        let pkt = crate::ext::tests_util::packet(flexcore_isa::Instruction::Sethi {
            rd: flexcore_isa::Reg::O0,
            imm22: 1,
        });
        for _ in 0..5 {
            tap.forward_packet(&pkt);
        }
        assert_eq!(tap.packets().len(), 2);
    }

    #[test]
    fn empty_observer_reports_empty() {
        assert!(Observer::new().is_empty());
        assert!(!Observer::new().with_flight(4).is_empty());
    }
}
