//! Micro-benchmarks: simulator throughput for the bare core and for
//! the full FlexCore system under each extension.
//!
//! The `system_100k_instructions/*` rows are the observability
//! *disabled-path* reference: `System::new` installs the [`NullSink`]
//! and the [`NullPhaseClock`], whose `ENABLED = false` compiles every
//! instrumentation hook out, so these rows must not move when the
//! `obs` or telemetry layers change. The `observed_100k_instructions/*`
//! rows run the same simulations with a live metrics sampler, and the
//! `profiled_100k_instructions/*` rows with the live phase profiler,
//! to show what turning each on costs.

use flexcore::ext::{Bc, Dift, Sec, Umc};
use flexcore::obs::{MetricsRecorder, NullSink};
use flexcore::{Extension, System, SystemConfig};
use flexcore_asm::Program;
use flexcore_bench::microbench::Harness;
use flexcore_mem::{MainMemory, SystemBus};
use flexcore_pipeline::{Core, CoreConfig};
use flexcore_telemetry::PhaseProfiler;
use flexcore_workloads::Workload;

const BUDGET: u64 = 100_000;

fn program() -> Program {
    Workload::bitcount().program().expect("assembles")
}

fn run_system<E: Extension>(program: &Program, ext: E) -> u64 {
    let mut sys = System::new(SystemConfig::fabric_half_speed(), ext);
    sys.load_program(program);
    sys.try_run(BUDGET).expect("simulation error").cycles
}

fn run_observed<E: Extension>(program: &Program, ext: E) -> u64 {
    let sampler = MetricsRecorder::new(MetricsRecorder::DEFAULT_EPOCH_CYCLES);
    let mut sys = System::with_sink(SystemConfig::fabric_half_speed(), ext, sampler);
    sys.load_program(program);
    sys.try_run(BUDGET).expect("simulation error").cycles
}

fn run_profiled<E: Extension>(program: &Program, ext: E) -> u64 {
    let mut sys = System::with_profiler(
        SystemConfig::fabric_half_speed(),
        ext,
        NullSink,
        PhaseProfiler::new(),
    );
    sys.load_program(program);
    sys.try_run(BUDGET).expect("simulation error").cycles
}

fn main() {
    let h = Harness::new();
    let program = program();

    h.run("core_100k_instructions", || {
        let mut mem = MainMemory::new();
        let mut bus = SystemBus::default();
        let mut core = Core::new(CoreConfig::leon3());
        core.load_program(&program, &mut mem);
        core.run(&mut mem, &mut bus, BUDGET)
    });

    h.run("system_100k_instructions/umc", || run_system(&program, Umc::new()));
    h.run("system_100k_instructions/dift", || run_system(&program, Dift::new()));
    h.run("system_100k_instructions/bc", || run_system(&program, Bc::new()));
    h.run("system_100k_instructions/sec", || run_system(&program, Sec::new()));

    h.run("observed_100k_instructions/umc", || run_observed(&program, Umc::new()));
    h.run("observed_100k_instructions/dift", || run_observed(&program, Dift::new()));

    h.run("profiled_100k_instructions/umc", || run_profiled(&program, Umc::new()));
    h.run("profiled_100k_instructions/dift", || run_profiled(&program, Dift::new()));
}
