/root/repo/target/release/deps/serde-69db0e49a9040ea5.d: crates/serde/src/lib.rs

/root/repo/target/release/deps/libserde-69db0e49a9040ea5.rlib: crates/serde/src/lib.rs

/root/repo/target/release/deps/libserde-69db0e49a9040ea5.rmeta: crates/serde/src/lib.rs

crates/serde/src/lib.rs:
