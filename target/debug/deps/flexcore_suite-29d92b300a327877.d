/root/repo/target/debug/deps/flexcore_suite-29d92b300a327877.d: src/lib.rs

/root/repo/target/debug/deps/flexcore_suite-29d92b300a327877: src/lib.rs

src/lib.rs:
