//! Epoch-bucketed metrics sampling.
//!
//! Every [`TraceEvent`] is binned into a fixed-width window of core
//! cycles (the *epoch*, e.g. 1000 cycles). The result is a time series
//! of exactly the quantities [`RunResult`](crate::RunResult) reports as
//! end-of-run aggregates — and the two views are *exactly* consistent:
//! summing (or max-ing, for occupancy) the epochs reproduces the
//! aggregate counters bit-for-bit. [`MetricsRecorder::check_against`]
//! enforces the invariant; the `observability` integration tests run it
//! on all six workloads.

use flexcore_isa::NUM_INSTR_CLASSES;

use crate::obs::{TraceEvent, TraceSink};
use crate::stats::RunResult;

/// Hard ceiling on the number of epochs a recorder allocates. Events
/// past the ceiling fold into the last epoch (and mark the series
/// truncated) instead of growing without bound — a backstop against
/// pathological schedules, not something healthy runs hit (at the
/// default 1000-cycle epoch the ceiling covers > 10^9 cycles).
pub const MAX_EPOCHS: usize = 1 << 20;

/// Counters accumulated over one epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochSample {
    /// Instructions committed in this epoch.
    pub committed: u64,
    /// Packets forwarded to the fabric.
    pub forwarded: u64,
    /// Packets dropped (either drop path).
    pub dropped: u64,
    /// Forwarded packets per instruction class.
    pub per_class: [u64; NUM_INSTR_CLASSES],
    /// Commit-stall cycles that began in this epoch.
    pub fifo_stall_cycles: u64,
    /// FIFO occupancy samples taken (one per enqueue).
    pub occ_samples: u64,
    /// Sum of occupancy samples (for the mean).
    pub occ_sum: u64,
    /// Highest occupancy sample.
    pub occ_peak: u64,
    /// Lowest occupancy sample (`u64::MAX` until the first sample; use
    /// [`EpochSample::fifo_occ_min`]).
    pub occ_min: u64,
    /// Cycles the fabric spent processing packets whose span started in
    /// this epoch.
    pub fabric_busy_cycles: u64,
    /// Meta-data cache misses.
    pub meta_misses: u64,
    /// Shared-bus transfers granted to the fabric.
    pub bus_fabric_transfers: u64,
    /// Cycles fabric bus requests waited for the bus.
    pub bus_fabric_wait_cycles: u64,
    /// Faults the injector applied.
    pub faults: u64,
    /// Monitor traps raised.
    pub traps: u64,
}

impl Default for EpochSample {
    fn default() -> EpochSample {
        EpochSample {
            committed: 0,
            forwarded: 0,
            dropped: 0,
            per_class: [0; NUM_INSTR_CLASSES],
            fifo_stall_cycles: 0,
            occ_samples: 0,
            occ_sum: 0,
            occ_peak: 0,
            occ_min: u64::MAX,
            fabric_busy_cycles: 0,
            meta_misses: 0,
            bus_fabric_transfers: 0,
            bus_fabric_wait_cycles: 0,
            faults: 0,
            traps: 0,
        }
    }
}

impl EpochSample {
    /// Cycles per committed instruction over a window of
    /// `epoch_cycles`; `None` when nothing committed.
    pub fn cpi(&self, epoch_cycles: u64) -> Option<f64> {
        (self.committed > 0).then(|| epoch_cycles as f64 / self.committed as f64)
    }

    /// Lowest FIFO occupancy sampled, if any enqueue happened.
    pub fn fifo_occ_min(&self) -> Option<u64> {
        (self.occ_samples > 0).then_some(self.occ_min)
    }

    /// Mean FIFO occupancy over the epoch's samples, if any.
    pub fn fifo_occ_mean(&self) -> Option<f64> {
        (self.occ_samples > 0).then(|| self.occ_sum as f64 / self.occ_samples as f64)
    }

    fn absorb(&mut self, other: &EpochSample) {
        self.committed += other.committed;
        self.forwarded += other.forwarded;
        self.dropped += other.dropped;
        for (a, b) in self.per_class.iter_mut().zip(&other.per_class) {
            *a += b;
        }
        self.fifo_stall_cycles += other.fifo_stall_cycles;
        self.occ_samples += other.occ_samples;
        self.occ_sum += other.occ_sum;
        self.occ_peak = self.occ_peak.max(other.occ_peak);
        self.occ_min = self.occ_min.min(other.occ_min);
        self.fabric_busy_cycles += other.fabric_busy_cycles;
        self.meta_misses += other.meta_misses;
        self.bus_fabric_transfers += other.bus_fabric_transfers;
        self.bus_fabric_wait_cycles += other.bus_fabric_wait_cycles;
        self.faults += other.faults;
        self.traps += other.traps;
    }
}

/// The epoch-bucketed metrics sampler (a [`TraceSink`]).
#[derive(Clone, Debug)]
pub struct MetricsRecorder {
    epoch_cycles: u64,
    epochs: Vec<EpochSample>,
    truncated: bool,
}

impl MetricsRecorder {
    /// The default epoch width in core cycles.
    pub const DEFAULT_EPOCH_CYCLES: u64 = 1000;

    /// Creates a sampler with the given epoch width (clamped to ≥ 1).
    pub fn new(epoch_cycles: u64) -> MetricsRecorder {
        MetricsRecorder { epoch_cycles: epoch_cycles.max(1), epochs: Vec::new(), truncated: false }
    }

    /// The configured epoch width in core cycles.
    pub fn epoch_cycles(&self) -> u64 {
        self.epoch_cycles
    }

    /// The sampled epochs, in time order. Epoch `i` covers cycles
    /// `[i * epoch_cycles, (i + 1) * epoch_cycles)`.
    pub fn epochs(&self) -> &[EpochSample] {
        &self.epochs
    }

    /// Whether any event folded into the final epoch because the
    /// [`MAX_EPOCHS`] ceiling was hit.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Sum (max, for occupancy) of every epoch — the aggregate view the
    /// consistency invariant compares against [`RunResult`].
    pub fn totals(&self) -> EpochSample {
        let mut total = EpochSample::default();
        for e in &self.epochs {
            total.absorb(e);
        }
        total
    }

    fn bucket(&mut self, cycle: u64) -> &mut EpochSample {
        let raw = (cycle / self.epoch_cycles) as usize;
        let idx = raw.min(MAX_EPOCHS - 1);
        if idx != raw {
            self.truncated = true;
        }
        if self.epochs.len() <= idx {
            self.epochs.resize_with(idx + 1, EpochSample::default);
        }
        &mut self.epochs[idx]
    }

    /// Checks the exact-consistency invariants against a finished run's
    /// aggregates.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching counter.
    pub fn check_against(&self, r: &RunResult) -> Result<(), String> {
        let t = self.totals();
        let checks: [(&str, u64, u64); 8] = [
            ("committed", t.committed, r.forward.committed),
            ("forwarded", t.forwarded, r.forward.forwarded),
            ("dropped", t.dropped, r.forward.dropped),
            ("fifo_stall_cycles", t.fifo_stall_cycles, r.forward.fifo_stall_cycles),
            ("peak_occupancy", t.occ_peak, r.forward.peak_occupancy),
            ("meta_misses", t.meta_misses, r.meta_cache.read_misses + r.meta_cache.write_misses),
            ("bus_fabric_transfers", t.bus_fabric_transfers, r.bus.fabric_transfers),
            ("faults", t.faults, r.resilience.faults_injected),
        ];
        for (name, sampled, aggregate) in checks {
            if sampled != aggregate {
                return Err(format!(
                    "epoch series {name} = {sampled} but RunResult aggregate = {aggregate}"
                ));
            }
        }
        for (i, (s, a)) in t.per_class.iter().zip(&r.forward.per_class).enumerate() {
            if s != a {
                return Err(format!(
                    "epoch series per_class[{i}] = {s} but RunResult aggregate = {a}"
                ));
            }
        }
        Ok(())
    }
}

impl TraceSink for MetricsRecorder {
    fn event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Commit { cycle, .. } => self.bucket(cycle).committed += 1,
            TraceEvent::Forward { cycle, class } => {
                let b = self.bucket(cycle);
                b.forwarded += 1;
                b.per_class[class.index()] += 1;
            }
            TraceEvent::Drop { cycle, .. } => self.bucket(cycle).dropped += 1,
            TraceEvent::FifoEnqueue { cycle, occupancy, .. } => {
                let b = self.bucket(cycle);
                b.occ_samples += 1;
                b.occ_sum += occupancy;
                b.occ_peak = b.occ_peak.max(occupancy);
                b.occ_min = b.occ_min.min(occupancy);
            }
            TraceEvent::CommitStall { cycle, until } => {
                self.bucket(cycle).fifo_stall_cycles += until.saturating_sub(cycle);
            }
            TraceEvent::FabricSpan { start, end, .. } => {
                self.bucket(start).fabric_busy_cycles += end.saturating_sub(start);
            }
            TraceEvent::MetaMiss { cycle, count } => self.bucket(cycle).meta_misses += count,
            TraceEvent::BusGrant { cycle, transfers, wait_cycles } => {
                let b = self.bucket(cycle);
                b.bus_fabric_transfers += transfers;
                b.bus_fabric_wait_cycles += wait_cycles;
            }
            TraceEvent::BitstreamRetry { .. } => {}
            // Recovery rewinds the clock to the restored snapshot, so
            // binning these would double-count the replayed window;
            // they are rendered in the Perfetto trace instead.
            TraceEvent::Recovery { .. }
            | TraceEvent::DegradedEnter { .. }
            | TraceEvent::SwapBegin { .. }
            | TraceEvent::SwapComplete { .. } => {}
            // Elisions are a per-run aggregate
            // (`ResilienceStats::elided_checks`); no epoch series.
            TraceEvent::CheckElided { .. } => {}
            TraceEvent::FaultInjected { cycle, .. } => self.bucket(cycle).faults += 1,
            TraceEvent::Trap { cycle, .. } => self.bucket(cycle).traps += 1,
        }
    }
}

/// Serialization of the series (JSONL) — behind the `serde` feature.
#[cfg(feature = "serde")]
mod export {
    use super::*;
    use flexcore_isa::InstrClass;
    use serde::Value;

    fn per_class_value(per_class: &[u64; NUM_INSTR_CLASSES]) -> Value {
        let mut obj = Value::object();
        for c in InstrClass::all() {
            let n = per_class[c.index()];
            if n > 0 {
                obj = obj.field(&format!("{c:?}").to_lowercase(), &n);
            }
        }
        obj.build()
    }

    impl MetricsRecorder {
        /// Serializes the series as JSON Lines: a `meta` header, one
        /// `epoch` record per window (empty windows included, so the
        /// series is a dense time axis), and a `total` footer carrying
        /// the [`RunResult`] aggregates for cross-checking. Output is
        /// byte-deterministic for a deterministic run.
        pub fn to_jsonl(&self, r: &RunResult) -> String {
            let mut out = String::new();
            let meta = Value::object()
                .field("type", &"meta")
                .field("epoch_cycles", &self.epoch_cycles)
                .field("epochs", &(self.epochs.len() as u64))
                .field("truncated", &self.truncated)
                .build();
            out.push_str(&serde::to_string(&meta));
            out.push('\n');
            for (i, e) in self.epochs.iter().enumerate() {
                let start = i as u64 * self.epoch_cycles;
                let line = Value::object()
                    .field("type", &"epoch")
                    .field("epoch", &(i as u64))
                    .field("start_cycle", &start)
                    .field("end_cycle", &(start + self.epoch_cycles))
                    .field("committed", &e.committed)
                    .field("cpi", &e.cpi(self.epoch_cycles))
                    .field("forwarded", &e.forwarded)
                    .field("dropped", &e.dropped)
                    .field("fifo_stall_cycles", &e.fifo_stall_cycles)
                    .field("fifo_occ_min", &e.fifo_occ_min())
                    .field("fifo_occ_mean", &e.fifo_occ_mean())
                    .field("fifo_occ_peak", &e.occ_peak)
                    .field("fabric_busy_cycles", &e.fabric_busy_cycles)
                    .field("meta_misses", &e.meta_misses)
                    .field("bus_fabric_transfers", &e.bus_fabric_transfers)
                    .field("bus_fabric_wait_cycles", &e.bus_fabric_wait_cycles)
                    .field("faults", &e.faults)
                    .field("traps", &e.traps)
                    .raw("per_class", per_class_value(&e.per_class))
                    .build();
                out.push_str(&serde::to_string(&line));
                out.push('\n');
            }
            let total = Value::object()
                .field("type", &"total")
                .field("committed", &r.forward.committed)
                .field("forwarded", &r.forward.forwarded)
                .field("dropped", &r.forward.dropped)
                .field("fifo_stall_cycles", &r.forward.fifo_stall_cycles)
                .field("peak_occupancy", &r.forward.peak_occupancy)
                .field("cycles", &r.cycles)
                .field("instret", &r.instret)
                .field("cpi", &r.cpi())
                .field("unmonitored_commits", &r.resilience.unmonitored_commits)
                .field("suppressed_checks", &r.resilience.suppressed_checks)
                .build();
            out.push_str(&serde::to_string(&total));
            out.push('\n');
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_isa::InstrClass;

    #[test]
    fn events_land_in_their_epoch() {
        let mut m = MetricsRecorder::new(100);
        m.event(TraceEvent::Commit { cycle: 5, pc: 0, instret: 1, class: InstrClass::Add });
        m.event(TraceEvent::Commit { cycle: 105, pc: 4, instret: 2, class: InstrClass::Add });
        m.event(TraceEvent::Forward { cycle: 105, class: InstrClass::Ld });
        assert_eq!(m.epochs().len(), 2);
        assert_eq!(m.epochs()[0].committed, 1);
        assert_eq!(m.epochs()[1].committed, 1);
        assert_eq!(m.epochs()[1].per_class[InstrClass::Ld.index()], 1);
    }

    #[test]
    fn occupancy_tracks_min_mean_peak() {
        let mut m = MetricsRecorder::new(1000);
        for occ in [3u64, 1, 7] {
            m.event(TraceEvent::FifoEnqueue { cycle: 10, dequeue_at: 20, occupancy: occ });
        }
        let e = &m.epochs()[0];
        assert_eq!(e.fifo_occ_min(), Some(1));
        assert_eq!(e.occ_peak, 7);
        assert!((e.fifo_occ_mean().unwrap() - 11.0 / 3.0).abs() < 1e-12);
        assert_eq!(EpochSample::default().fifo_occ_min(), None);
    }

    #[test]
    fn stall_cycles_are_the_interval_width() {
        let mut m = MetricsRecorder::new(1000);
        m.event(TraceEvent::CommitStall { cycle: 40, until: 100 });
        m.event(TraceEvent::CommitStall { cycle: 50, until: 50 });
        assert_eq!(m.epochs()[0].fifo_stall_cycles, 60);
    }

    #[test]
    fn far_future_events_fold_into_the_ceiling_epoch() {
        let mut m = MetricsRecorder::new(1);
        m.event(TraceEvent::Commit {
            cycle: u64::MAX / 2,
            pc: 0,
            instret: 1,
            class: InstrClass::Add,
        });
        assert!(m.truncated());
        assert_eq!(m.epochs().len(), MAX_EPOCHS);
        assert_eq!(m.totals().committed, 1, "folded, not lost");
    }

    #[test]
    fn totals_merge_min_and_peak() {
        let mut m = MetricsRecorder::new(10);
        m.event(TraceEvent::FifoEnqueue { cycle: 1, dequeue_at: 2, occupancy: 5 });
        m.event(TraceEvent::FifoEnqueue { cycle: 11, dequeue_at: 12, occupancy: 2 });
        let t = m.totals();
        assert_eq!(t.occ_peak, 5);
        assert_eq!(t.occ_min, 2);
        assert_eq!(t.occ_samples, 2);
    }
}
