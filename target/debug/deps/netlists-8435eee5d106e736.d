/root/repo/target/debug/deps/netlists-8435eee5d106e736.d: crates/flexcore/tests/netlists.rs

/root/repo/target/debug/deps/netlists-8435eee5d106e736: crates/flexcore/tests/netlists.rs

crates/flexcore/tests/netlists.rs:
