/root/repo/target/debug/deps/table3-90d9a4e1c4ba39d6.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-90d9a4e1c4ba39d6.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
