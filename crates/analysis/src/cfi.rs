//! Static control-flow-integrity edge extraction.
//!
//! Walks the recovered [`Cfg`](crate::Cfg) and collects the complete
//! set of legal control transfers in the image: direct branch edges
//! (source PC → static target), direct call targets, and return sites
//! (the instruction after each call's delay slot). The CFI monitoring
//! extension loads this table and traps on any committed transfer
//! outside it — a corrupted return address or a hijacked indirect jump
//! lands outside the whitelist.
//!
//! The extraction is deliberately conservative in the safe direction:
//! only transfers the disassembler *proved* reachable are whitelisted,
//! so an attack that redirects control to unreachable bytes always
//! traps. Indirect jumps (`jmpl` through a register) are checked
//! against the union of call targets and return sites, which covers
//! the workloads' `ret`/`retl` idiom and register-indirect tail calls
//! into known functions.

use flexcore_asm::Program;
use flexcore_isa::{Cond, Instruction};

use crate::cfg::build_cfg;

/// The legal-control-transfer sets recovered from one program image.
///
/// Plain sorted/deduplicated vectors so the crate stays independent of
/// any particular monitor implementation; the simulator side loads
/// them into its CFI extension's table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CfiEdges {
    /// Legal `(branch PC, branch target)` pairs for direct branches
    /// (`b<cond>` with a real condition — `bn` never transfers).
    pub branch_edges: Vec<(u32, u32)>,
    /// Legal direct-call targets (function entries), plus the program
    /// entry point.
    pub call_targets: Vec<u32>,
    /// Legal return sites: the re-entry address after each call
    /// (call PC + 8, past the delay slot).
    pub return_sites: Vec<u32>,
}

impl CfiEdges {
    /// `(branch edges, call targets, return sites)` counts.
    pub fn len(&self) -> (usize, usize, usize) {
        (self.branch_edges.len(), self.call_targets.len(), self.return_sites.len())
    }

    /// `true` when no transfer of any kind was recovered.
    pub fn is_empty(&self) -> bool {
        self.branch_edges.is_empty() && self.call_targets.is_empty() && self.return_sites.is_empty()
    }
}

/// Recovers the legal control transfers of `program` from its CFG.
///
/// Every reachable instruction (straight-line, terminating CTI, and
/// delay-slot instructions carried on edges) is examined, so a branch
/// hiding in a delay slot is still whitelisted.
pub fn cfi_edges(program: &Program) -> CfiEdges {
    let (cfg, _) = build_cfg(program);
    let mut edges = CfiEdges::default();
    let mut visit = |pc: u32, inst: &Instruction| match *inst {
        // `bn` never transfers control; every other branch (including
        // `ba`) has exactly one static target.
        Instruction::Branch { cond, disp22, .. } if cond != Cond::N => {
            edges.branch_edges.push((pc, pc.wrapping_add((disp22 as u32) << 2)));
        }
        Instruction::Call { disp30 } => {
            edges.call_targets.push(pc.wrapping_add((disp30 as u32) << 2));
            // Execution legally re-enters just past the delay slot.
            edges.return_sites.push(pc.wrapping_add(8));
        }
        _ => {}
    };
    for block in cfg.blocks() {
        for (pc, inst) in &block.insts {
            visit(*pc, inst);
        }
        for edge in &block.succs {
            if let Some((pc, inst)) = &edge.delay {
                visit(*pc, inst);
            }
        }
    }
    if let Some(entry) = cfg.entry() {
        edges.call_targets.push(cfg.blocks()[entry].start);
    }
    edges.branch_edges.sort_unstable();
    edges.branch_edges.dedup();
    edges.call_targets.sort_unstable();
    edges.call_targets.dedup();
    edges.return_sites.sort_unstable();
    edges.return_sites.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexcore_asm::assemble;

    #[test]
    fn recovers_branch_call_and_return_edges() {
        let program = assemble(
            "
            start:  call fn1
                    nop
                    cmp %o0, 3
                    be done
                    nop
                    ba done
                    nop
            fn1:    retl
                    mov 3, %o0
            done:   ta 0
            ",
        )
        .expect("assembles");
        let e = cfi_edges(&program);
        // `be` and `ba` each contribute one edge.
        assert_eq!(e.branch_edges.len(), 2, "{:?}", e.branch_edges);
        // fn1 plus the entry point.
        assert_eq!(e.call_targets.len(), 2, "{:?}", e.call_targets);
        // One call → one return site, 8 bytes past the call.
        let call_pc = e.return_sites[0] - 8;
        assert!(e.call_targets.contains(&(program.base())), "entry whitelisted");
        assert!(e.branch_edges.iter().all(|&(src, _)| src != call_pc));
    }

    #[test]
    fn bn_contributes_no_edge() {
        let program = assemble(
            "
            start:  bn nowhere
                    nop
                    ta 0
            nowhere: ta 0
            ",
        )
        .expect("assembles");
        let e = cfi_edges(&program);
        assert!(e.branch_edges.is_empty(), "{:?}", e.branch_edges);
    }

    #[test]
    fn empty_program_is_empty() {
        let program = assemble("start: ta 0").expect("assembles");
        let e = cfi_edges(&program);
        assert!(e.branch_edges.is_empty());
        assert_eq!(e.len().1, 1, "just the entry point");
        assert!(!e.is_empty());
    }
}
