//! `Serialize` implementations for the statistics and exit types
//! (behind the `serde` feature).

use flexcore_isa::InstrClass;
use serde::{Serialize, Value};

use crate::{CoreStats, ExitReason};

/// Per-class counter arrays serialize as an object keyed by class name,
/// omitting zero entries (32 mostly-zero keys would drown the signal).
pub(crate) fn per_class_value(per_class: &[u64]) -> Value {
    let mut obj = Value::object();
    for c in InstrClass::all() {
        let n = per_class[c.index()];
        if n > 0 {
            obj = obj.field(&format!("{c:?}").to_lowercase(), &n);
        }
    }
    obj.build()
}

impl Serialize for CoreStats {
    fn to_value(&self) -> Value {
        Value::object()
            .field("instret", &self.instret)
            .field("annulled", &self.annulled)
            .field("external_stall_cycles", &self.external_stall_cycles)
            .field("store_stall_cycles", &self.store_stall_cycles)
            .raw("per_class", per_class_value(&self.per_class))
            .build()
    }
}

impl Serialize for ExitReason {
    fn to_value(&self) -> Value {
        let (kind, detail) = match *self {
            ExitReason::Halt(code) => ("halt", Value::object().field("code", &code).build()),
            ExitReason::IllegalInstruction { pc, word } => (
                "illegal_instruction",
                Value::object()
                    .field("pc", &format!("{pc:#010x}"))
                    .field("word", &format!("{word:#010x}"))
                    .build(),
            ),
            ExitReason::MisalignedAccess { pc, addr } => (
                "misaligned_access",
                Value::object()
                    .field("pc", &format!("{pc:#010x}"))
                    .field("addr", &format!("{addr:#010x}"))
                    .build(),
            ),
            ExitReason::DivideByZero { pc } => {
                ("divide_by_zero", Value::object().field("pc", &format!("{pc:#010x}")).build())
            }
            ExitReason::InstructionLimit => ("instruction_limit", Value::object().build()),
            ExitReason::MonitorTrap { pc } => {
                ("monitor_trap", Value::object().field("pc", &format!("{pc:#010x}")).build())
            }
        };
        Value::object().field("kind", &kind).raw("detail", detail).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_reason_tags_its_kind() {
        let v = ExitReason::Halt(0).to_value();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("halt"));
        let v = ExitReason::MonitorTrap { pc: 0x40 }.to_value();
        assert_eq!(
            v.get("detail").and_then(|d| d.get("pc")).and_then(Value::as_str),
            Some("0x00000040")
        );
    }

    #[test]
    fn per_class_omits_zeroes() {
        let mut s = CoreStats { instret: 2, ..CoreStats::default() };
        s.per_class[InstrClass::Ld.index()] = 2;
        let v = s.to_value();
        let pc = v.get("per_class").expect("present");
        assert_eq!(pc.get("ld").and_then(Value::as_u64), Some(2));
        assert!(pc.get("st").is_none());
    }
}
