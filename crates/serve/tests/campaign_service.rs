//! End-to-end robustness contract of the `flexserve` campaign service:
//! interruption at *any* trial + resume reproduces the clean run's
//! trial log bit-for-bit; chaos panics are supervised into retries or
//! typed quarantines; saturation is typed backpressure, not collapse.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use flexcore_bench::trial;
use flexcore_serve::{
    AdmitError, JobSpec, JobState, LoggedOutcome, Server, ServerConfig, TrialFailure, WorkerPolicy,
};
use proptest::prelude::*;

const TRIALS: usize = 6;

fn job() -> JobSpec {
    JobSpec {
        name: "contract".into(),
        trials: TRIALS,
        workloads: vec!["bitcount".into()],
        ..JobSpec::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flexserve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmpdir");
    dir
}

fn config(dir: &Path, workers: usize) -> ServerConfig {
    ServerConfig {
        journal_dir: dir.to_path_buf(),
        worker_policy: WorkerPolicy { workers, backoff_base_ms: 1, ..WorkerPolicy::default() },
        ..ServerConfig::default()
    }
}

/// The clean single-threaded trial log — exactly what `faultsweep`
/// would append for this campaign — computed once.
fn clean_log() -> &'static str {
    static LOG: OnceLock<String> = OnceLock::new();
    LOG.get_or_init(|| {
        job()
            .trial_specs()
            .expect("expands")
            .iter()
            .map(|t| {
                serde::to_string(&trial::outcome_record(&t.label, &trial::run_trial(t, None)))
                    + "\n"
            })
            .collect()
    })
}

fn merged_log_of(dir: &Path, workers: usize, resume: bool, stop_after: Option<u64>) -> JobState {
    let mut cfg = config(dir, workers);
    cfg.resume = resume;
    cfg.stop_after = stop_after;
    let server = Server::new(cfg);
    server.submit(job()).expect("admitted");
    let report = server.run().expect("drains");
    report.jobs[0].state.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite 3: a campaign interrupted at an arbitrary trial and
    /// resumed produces a trial log bit-identical to the uninterrupted
    /// run — across pool widths, with zero lost and zero duplicated
    /// trials.
    #[test]
    fn interrupted_campaign_resumes_bit_identically(
        stop_at in 1u64..(TRIALS as u64),
        workers in 1usize..4,
    ) {
        let dir = tmpdir(&format!("prop-{stop_at}-{workers}"));

        // Phase 1: interrupt after `stop_at` records. With several
        // workers, trials already in flight at the stop still finish,
        // so a late stop can complete the whole job — both terminal
        // states are legitimate here.
        let state = merged_log_of(&dir, workers, false, Some(stop_at));
        prop_assert!(
            state == JobState::Interrupted || state == JobState::Completed,
            "unexpected state {state:?}"
        );

        // Phase 2: resume to completion on a different pool width.
        let mut cfg = config(&dir, 4 - workers);
        cfg.resume = true;
        let server = Server::new(cfg);
        server.submit(job()).expect("admitted");
        let report = server.run().expect("drains");
        let done = &report.jobs[0];
        prop_assert_eq!(&done.state, &JobState::Completed);
        prop_assert!(done.stats.reused >= stop_at, "journaled prefix was reused");
        prop_assert_eq!(
            done.stats.reused + done.stats.executed,
            TRIALS as u64,
            "zero lost, zero duplicated"
        );
        let merged = std::fs::read_to_string(done.merged_log.as_ref().expect("merged log"))
            .expect("readable");
        prop_assert_eq!(merged, clean_log(), "resumed log differs from the clean run");
    }
}

/// Chaos panics on every trial's first attempt are retried into the
/// exact clean outcomes — supervision changes nothing observable.
#[test]
fn chaos_retries_do_not_change_the_log() {
    let dir = tmpdir("chaos-retry");
    let mut cfg = config(&dir, 2);
    cfg.worker_policy.chaos_panic_every = Some(1);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let server = Server::new(cfg);
    server.submit(job()).expect("admitted");
    let report = server.run().expect("drains");
    std::panic::set_hook(prev);

    let done = &report.jobs[0];
    assert_eq!(done.state, JobState::Completed);
    assert_eq!(done.stats.retried, TRIALS as u64, "every trial panicked once, then recovered");
    assert_eq!(done.stats.quarantined, 0);
    let merged =
        std::fs::read_to_string(done.merged_log.as_ref().expect("merged log")).expect("readable");
    assert_eq!(merged, clean_log(), "retried outcomes must equal clean outcomes");
}

/// Exhausted chaos becomes a typed quarantine in the journal, and a
/// resume without chaos heals the campaign to the clean log.
#[test]
fn quarantine_is_typed_and_heals_on_resume() {
    let dir = tmpdir("chaos-quarantine");
    let mut cfg = config(&dir, 2);
    cfg.worker_policy.chaos_panic_every = Some(1);
    cfg.worker_policy.chaos_all_attempts = true;
    cfg.worker_policy.max_attempts = 2;
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let server = Server::new(cfg);
    server.submit(job()).expect("admitted");
    let report = server.run().expect("drains");
    std::panic::set_hook(prev);

    let done = &report.jobs[0];
    assert_eq!(done.stats.quarantined, TRIALS as u64, "all trials exhausted their attempts");
    assert_eq!(report.quarantined(), TRIALS as u64);
    assert!(done.merged_log.is_none(), "no merged log while trials are missing");

    // The journal records the failures as typed outcomes...
    let spec = job();
    let (_, recovery) =
        flexcore_serve::Journal::open(&done.journal, &spec.header(), &spec.canonical(), true, 8)
            .expect("journal replays");
    let quarantined = recovery
        .outcomes
        .values()
        .filter(|o| matches!(o, LoggedOutcome::Quarantined { .. }))
        .count();
    assert_eq!(quarantined, TRIALS, "every quarantine is journaled, none swallowed");

    // ...and a chaos-free resume retries them to the clean log.
    let state = merged_log_of(&dir, 2, true, None);
    assert_eq!(state, JobState::Completed);
    let merged =
        std::fs::read_to_string(dir.join(format!("{}.trials.jsonl", spec.id()))).expect("readable");
    assert_eq!(merged, clean_log(), "healed campaign matches the clean run");
}

/// The typed quarantine failure carries the attempt budget and panic
/// message (exercised through the public worker API).
#[test]
fn worker_failure_type_carries_the_evidence() {
    let trials = job().trial_specs().expect("expands");
    let policy = WorkerPolicy {
        workers: 1,
        max_attempts: 2,
        backoff_base_ms: 1,
        chaos_panic_every: Some(1),
        chaos_all_attempts: true,
        ..WorkerPolicy::default()
    };
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut failures = Vec::new();
    flexcore_serve::run_job(&trials[..1], &HashSet::new(), &policy, None, |r| {
        failures.push(r.outcome.clone());
    });
    std::panic::set_hook(prev);
    let Err(TrialFailure::Panicked { attempts, last_message }) = &failures[0] else {
        panic!("expected a typed quarantine, got {:?}", failures[0]);
    };
    assert_eq!(*attempts, 2);
    assert!(last_message.contains("chaos"), "got: {last_message}");
}

/// Queue saturation: typed rejection with a backpressure hint for
/// equal-priority work, graceful shedding (with accounting) for
/// higher-priority work — and the surviving jobs still complete.
#[test]
fn saturation_is_backpressure_not_collapse() {
    let dir = tmpdir("saturation");
    let mut cfg = config(&dir, 2);
    cfg.max_depth = 1;
    let server = Server::new(cfg);
    let low = JobSpec { name: "low".into(), seed: 1, trials: 2, priority: 1, ..job() };
    let low_id = server.submit(low).expect("admitted");

    // Same priority: typed rejection with a retry hint.
    let peer = JobSpec { name: "peer".into(), seed: 2, trials: 2, priority: 1, ..job() };
    let Err(AdmitError::Rejected { retry_after_ms, .. }) = server.submit(peer) else {
        panic!("expected typed backpressure");
    };
    assert!(retry_after_ms > 0);

    // Higher priority: the low job is shed, with an accounting trail.
    let high = JobSpec { name: "high".into(), seed: 3, trials: 2, priority: 5, ..job() };
    let high_id = server.submit(high).expect("displaces the low job");
    let report = server.run().expect("drains");
    assert_eq!(report.jobs.len(), 1, "only the surviving job ran");
    assert_eq!(report.jobs[0].id, high_id);
    assert_eq!(report.jobs[0].state, JobState::Completed);
    assert_eq!(report.shed.len(), 1);
    assert_eq!(report.shed[0].id, low_id);
    assert_eq!(report.shed[0].displaced_by, high_id);
    assert_eq!(report.admission.rejected, 1);
    assert_eq!(report.admission.shed, 1);
}
