//! The meta-data cache: data-carrying, write-back, bit-maskable.

use std::collections::HashMap;

use crate::{BusMaster, CacheConfig, CacheStats, MainMemory, SystemBus, TimingCache, WritePolicy};

/// Result of one meta-data cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MetaAccess {
    /// The word read, or (for writes) the merged word that now resides
    /// in the cache.
    pub value: u32,
    /// Whether the access hit.
    pub hit: bool,
    /// Core-clock cycle at which the access (including any refill and
    /// victim write-back over the shared bus) completes.
    pub ready_at: u64,
}

/// Complete checkpointable state of a [`MetaDataCache`]: the tag array
/// plus every resident line's bytes, sorted by line base address.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetaCacheSnapshot {
    /// Tag/LRU/statistics state.
    pub tags: crate::CacheSnapshot,
    /// `(line base address, line bytes)`, sorted by base.
    pub lines: Vec<(u32, Vec<u8>)>,
}

/// The reconfigurable fabric's private L1 cache for meta-data.
///
/// Per the paper (§III.D): "The meta-data cache is almost identical to
/// regular data caches except for the capability to write at a bit
/// granularity. Meta-data cache reads return 32-bit words as in regular
/// caches. For writes, the meta-data cache is given a 32-bit write
/// enable mask in addition to an address and a data word, and only
/// updates bits within the cache word where the bit mask is set."
///
/// Unlike the L1 timing caches, this cache carries real data: it is
/// write-back / write-allocate so repeated small tag updates stay on
/// chip, and the merged bits only reach [`MainMemory`] when a dirty line
/// is evicted or the cache is flushed.
///
/// All bus traffic (refills, write-backs) goes through the shared
/// [`SystemBus`], so meta-data misses contend with the main core — the
/// second overhead source in the paper's Table IV.
#[derive(Clone, Debug)]
pub struct MetaDataCache {
    tags: TimingCache,
    /// Resident line data, keyed by line base address.
    data: HashMap<u32, Vec<u8>>,
    line_bytes: u32,
}

impl MetaDataCache {
    /// Creates an empty meta-data cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid or the write policy is not
    /// [`WritePolicy::WriteBackAllocate`] (bit-masked writes require the
    /// line to be resident).
    pub fn new(config: CacheConfig) -> MetaDataCache {
        assert_eq!(
            config.write_policy,
            WritePolicy::WriteBackAllocate,
            "the meta-data cache must be write-back/write-allocate"
        );
        let line_bytes = config.line_bytes;
        MetaDataCache { tags: TimingCache::new(config), data: HashMap::new(), line_bytes }
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.tags.stats()
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        self.tags.config()
    }

    fn line_base(&self, addr: u32) -> u32 {
        addr & !(self.line_bytes - 1)
    }

    /// Services a miss: writes back the victim (if dirty) and refills
    /// the requested line. Returns the completion cycle.
    fn service(
        &mut self,
        lookup: crate::Lookup,
        addr: u32,
        mem: &mut MainMemory,
        bus: &mut SystemBus,
        master: BusMaster,
        now: u64,
    ) -> u64 {
        let words = self.tags.config().line_words();
        let mut t = now;
        if let Some(victim_base) = lookup.writeback_of {
            let line =
                self.data.remove(&victim_base).expect("dirty victim must have resident data");
            mem.load(victim_base, &line);
            t = bus.transfer(master, t, words);
        }
        if lookup.refill {
            let base = self.line_base(addr);
            // A previous clean eviction of this set may have left the
            // victim's stale data entry if the victim was clean; remove
            // lazily on insert collision is unnecessary because clean
            // victims are removed below in `evict_clean`.
            let line = mem.dump(base, self.line_bytes as usize);
            self.data.insert(base, line);
            t = bus.transfer(master, t, words);
        }
        t
    }

    /// Drops data for lines the tag array no longer holds. Clean
    /// evictions don't report a write-back, so we garbage-collect here.
    fn evict_clean(&mut self) {
        let tags = &self.tags;
        self.data.retain(|&base, _| tags.probe(base));
    }

    /// Reads the aligned 32-bit word containing `addr`.
    ///
    /// `now` is the current core-clock cycle; the returned
    /// [`MetaAccess::ready_at`] accounts for any refill and write-back
    /// over the shared bus.
    pub fn read_word(
        &mut self,
        addr: u32,
        mem: &mut MainMemory,
        bus: &mut SystemBus,
        master: BusMaster,
        now: u64,
    ) -> MetaAccess {
        let addr = addr & !3;
        let lookup = self.tags.access(addr, false);
        let ready_at = if lookup.hit {
            now
        } else {
            let t = self.service(lookup, addr, mem, bus, master, now);
            self.evict_clean();
            t
        };
        let base = self.line_base(addr);
        let line = self.data.get(&base).expect("resident line has data");
        let off = (addr - base) as usize;
        let value = u32::from_be_bytes([line[off], line[off + 1], line[off + 2], line[off + 3]]);
        MetaAccess { value, hit: lookup.hit, ready_at }
    }

    /// Writes `data` into the aligned word containing `addr`, but only
    /// the bits selected by `bitmask` — the paper's bit-granular write
    /// enable. Bits where `bitmask` is 0 keep their old value.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware port list: addr/data/mask + memory side + clock
    pub fn write_masked(
        &mut self,
        addr: u32,
        data: u32,
        bitmask: u32,
        mem: &mut MainMemory,
        bus: &mut SystemBus,
        master: BusMaster,
        now: u64,
    ) -> MetaAccess {
        let addr = addr & !3;
        let lookup = self.tags.access(addr, true);
        let ready_at = if lookup.hit {
            now
        } else {
            let t = self.service(lookup, addr, mem, bus, master, now);
            self.evict_clean();
            t
        };
        let base = self.line_base(addr);
        let line = self.data.get_mut(&base).expect("resident line has data");
        let off = (addr - base) as usize;
        let old = u32::from_be_bytes([line[off], line[off + 1], line[off + 2], line[off + 3]]);
        let merged = (old & !bitmask) | (data & bitmask);
        line[off..off + 4].copy_from_slice(&merged.to_be_bytes());
        MetaAccess { value: merged, hit: lookup.hit, ready_at }
    }

    /// Flips the bits selected by `mask` in the aligned word containing
    /// `addr`, if that line is resident — a fault-injection hook
    /// modeling a particle strike on the meta-data array. Tag state,
    /// statistics, and timing are untouched; a non-resident line
    /// absorbs the strike (returns `false`).
    pub fn poison(&mut self, addr: u32, mask: u32) -> bool {
        let addr = addr & !3;
        let base = self.line_base(addr);
        let Some(line) = self.data.get_mut(&base) else {
            return false;
        };
        let off = (addr - base) as usize;
        let old = u32::from_be_bytes([line[off], line[off + 1], line[off + 2], line[off + 3]]);
        line[off..off + 4].copy_from_slice(&(old ^ mask).to_be_bytes());
        true
    }

    /// Captures the complete cache state (tag array plus resident line
    /// data, sorted by line base) for checkpointing.
    pub fn snapshot(&self) -> MetaCacheSnapshot {
        let mut lines: Vec<(u32, Vec<u8>)> =
            self.data.iter().map(|(&base, line)| (base, line.clone())).collect();
        lines.sort_unstable_by_key(|&(base, _)| base);
        MetaCacheSnapshot { tags: self.tags.snapshot(), lines }
    }

    /// Restores state captured by [`MetaDataCache::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match this cache's geometry.
    pub fn restore(&mut self, snap: &MetaCacheSnapshot) {
        self.tags.restore(&snap.tags);
        self.data.clear();
        for (base, line) in &snap.lines {
            assert_eq!(line.len(), self.line_bytes as usize, "meta line size mismatch");
            self.data.insert(*base, line.clone());
        }
    }

    /// Writes every resident line back to memory and empties the cache.
    ///
    /// Used at simulation end so that final meta-data state can be
    /// inspected in [`MainMemory`]; performs no bus timing.
    pub fn flush(&mut self, mem: &mut MainMemory) {
        for (base, line) in self.data.drain() {
            mem.load(base, &line);
        }
        self.tags.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MetaDataCache, MainMemory, SystemBus) {
        (MetaDataCache::new(CacheConfig::meta_default()), MainMemory::new(), SystemBus::default())
    }

    #[test]
    fn masked_write_only_touches_selected_bits() {
        let (mut c, mut mem, mut bus) = setup();
        mem.write_u32(0x4000_0000, 0xffff_0000);
        c.write_masked(
            0x4000_0000,
            0x0000_00ff,
            0x0000_ffff,
            &mut mem,
            &mut bus,
            BusMaster::Fabric,
            0,
        );
        let r = c.read_word(0x4000_0000, &mut mem, &mut bus, BusMaster::Fabric, 0);
        assert_eq!(r.value, 0xffff_00ff);
    }

    #[test]
    fn unaligned_addresses_use_containing_word() {
        let (mut c, mut mem, mut bus) = setup();
        c.write_masked(0x4000_0003, 1, 1, &mut mem, &mut bus, BusMaster::Fabric, 0);
        let r = c.read_word(0x4000_0000, &mut mem, &mut bus, BusMaster::Fabric, 0);
        assert_eq!(r.value, 1);
    }

    #[test]
    fn dirty_data_reaches_memory_only_on_eviction_or_flush() {
        let (mut c, mut mem, mut bus) = setup();
        c.write_masked(0x100, 0xdead_beef, !0, &mut mem, &mut bus, BusMaster::Fabric, 0);
        assert_eq!(mem.read_u32(0x100), 0, "write-back: memory still stale");
        c.flush(&mut mem);
        assert_eq!(mem.read_u32(0x100), 0xdead_beef);
    }

    #[test]
    fn eviction_writes_back_dirty_line() {
        let (mut c, mut mem, mut bus) = setup();
        // meta_default: 4 KB, 2-way, 32 B lines -> 64 sets; stride
        // 64*32 = 2048 maps to the same set.
        c.write_masked(0x0000, 0x11, !0, &mut mem, &mut bus, BusMaster::Fabric, 0);
        c.write_masked(0x0800, 0x22, !0, &mut mem, &mut bus, BusMaster::Fabric, 0);
        c.write_masked(0x1000, 0x33, !0, &mut mem, &mut bus, BusMaster::Fabric, 0);
        // One of the first two lines was evicted and written back.
        let in_mem = (mem.read_u32(0x0000), mem.read_u32(0x0800));
        assert!(in_mem == (0x11, 0) || in_mem == (0, 0x22), "{in_mem:?}");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn miss_timing_goes_over_the_bus() {
        let (mut c, mut mem, _) = setup();
        let mut bus =
            SystemBus::new(crate::SdramTiming { first_word: 20, per_word: 2, write_word: 6 });
        let r = c.read_word(0x40, &mut mem, &mut bus, BusMaster::Fabric, 10);
        assert!(!r.hit);
        // 8-word refill at default SDRAM timing = 20 + 7*2 = 34 cycles.
        assert_eq!(r.ready_at, 10 + 34);
        let r2 = c.read_word(0x44, &mut mem, &mut bus, BusMaster::Fabric, r.ready_at);
        assert!(r2.hit);
        assert_eq!(r2.ready_at, r.ready_at);
    }

    #[test]
    fn read_after_refill_sees_memory_contents() {
        let (mut c, mut mem, mut bus) = setup();
        mem.write_u32(0x200, 0xcafe_f00d);
        let r = c.read_word(0x200, &mut mem, &mut bus, BusMaster::Fabric, 0);
        assert_eq!(r.value, 0xcafe_f00d);
    }

    #[test]
    #[should_panic(expected = "write-back")]
    fn rejects_write_through_config() {
        let mut cfg = CacheConfig::meta_default();
        cfg.write_policy = WritePolicy::WriteThroughNoAllocate;
        let _ = MetaDataCache::new(cfg);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// Random interleavings of masked writes and reads through the cache
    /// must be indistinguishable from a flat reference memory.
    #[test]
    fn cache_is_transparent_wrt_reference_model() {
        // Implemented as a proptest below; this empty test documents
        // the property name in plain `cargo test` listings.
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn masked_writes_match_flat_reference(
            ops in prop::collection::vec(
                (0u32..0x2000, any::<u32>(), any::<u32>(), any::<bool>()),
                1..200
            )
        ) {
            let mut cache = MetaDataCache::new(CacheConfig {
                size_bytes: 512, // small: force lots of evictions
                line_bytes: 32,
                ways: 2,
                write_policy: WritePolicy::WriteBackAllocate,
            });
            let mut mem = MainMemory::new();
            let mut bus = SystemBus::default();
            let mut reference: std::collections::HashMap<u32, u32> = Default::default();

            for (addr, data, mask, is_write) in ops {
                let word_addr = addr & !3;
                if is_write {
                    let r = cache.write_masked(addr, data, mask, &mut mem, &mut bus, BusMaster::Fabric, 0);
                    let old = reference.get(&word_addr).copied().unwrap_or(0);
                    let merged = (old & !mask) | (data & mask);
                    reference.insert(word_addr, merged);
                    prop_assert_eq!(r.value, merged);
                } else {
                    let r = cache.read_word(addr, &mut mem, &mut bus, BusMaster::Fabric, 0);
                    let expect = reference.get(&word_addr).copied().unwrap_or(0);
                    prop_assert_eq!(r.value, expect);
                }
            }

            // After a flush, main memory agrees with the reference.
            cache.flush(&mut mem);
            for (addr, val) in reference {
                prop_assert_eq!(mem.read_u32(addr), val);
            }
        }
    }
}
