/root/repo/target/debug/deps/monitoring-ab3a5e45150eebe2.d: tests/monitoring.rs Cargo.toml

/root/repo/target/debug/deps/libmonitoring-ab3a5e45150eebe2.rmeta: tests/monitoring.rs Cargo.toml

tests/monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
