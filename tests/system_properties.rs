//! System-level properties on random programs: monitoring is
//! *transparent* (architectural results identical to the bare core)
//! and never free (monitored cycles >= baseline cycles), for every
//! extension, on arbitrary straight-line programs.

use flexcore_suite::flexcore::ext::{Bc, Dift, Extension, Mprot, Sec, Umc};
use flexcore_suite::flexcore::{System, SystemConfig};
use flexcore_suite::isa::{encode, Cond, Instruction, Opcode, Operand2, Reg};
use flexcore_suite::mem::{MainMemory, SystemBus};
use flexcore_suite::pipeline::{Core, CoreConfig, ExitReason};
use proptest::prelude::*;

const SCRATCH: u32 = 0x0003_0000;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

/// Straight-line programs over ALU + aligned memory ops, with %g7
/// reserved as the scratch-window base.
fn arb_program() -> impl Strategy<Value = Vec<Instruction>> {
    use Opcode::*;
    let alu_ops =
        vec![Add, Addcc, Sub, Subcc, And, Or, Xor, Xorcc, Andn, Xnor, Sll, Srl, Sra, Umul, Smul];
    let inst = prop_oneof![
        4 => (prop::sample::select(alu_ops), arb_reg(), arb_reg(), -2048i32..2048)
            .prop_map(|(op, rs1, rd, imm)| Instruction::Alu { op, rd, rs1, op2: Operand2::Imm(imm) }),
        1 => (arb_reg(), 0u32..(1 << 22)).prop_map(|(rd, imm22)| Instruction::Sethi { rd, imm22 }),
        2 => (prop::sample::select(vec![Ld, St]), arb_reg(), 0i32..32)
            .prop_map(|(op, rd, w)| Instruction::Mem { op, rd, rs1: Reg::G7, op2: Operand2::Imm(w * 4) }),
    ];
    prop::collection::vec(inst, 1..40).prop_map(|mut v| {
        for inst in &mut v {
            match inst {
                Instruction::Alu { rd, .. } | Instruction::Sethi { rd, .. } if *rd == Reg::G7 => {
                    *rd = Reg::G5;
                }
                Instruction::Mem { op, rd, .. } if op.is_load() && *rd == Reg::G7 => *rd = Reg::G5,
                _ => {}
            }
        }
        v
    })
}

fn image(insts: &[Instruction]) -> MainMemory {
    let mut mem = MainMemory::new();
    for (i, inst) in insts.iter().enumerate() {
        mem.write_u32(4 * i as u32, encode(inst));
    }
    let halt = Instruction::Trap { cond: Cond::A, rs1: Reg::G0, op2: Operand2::Imm(0) };
    mem.write_u32(4 * insts.len() as u32, encode(&halt));
    mem
}

fn with_prologue(insts: &[Instruction]) -> Vec<Instruction> {
    let mut v = vec![
        Instruction::Sethi { rd: Reg::G7, imm22: SCRATCH >> 10 },
        Instruction::Alu {
            op: Opcode::Or,
            rd: Reg::G7,
            rs1: Reg::G7,
            op2: Operand2::Imm((SCRATCH & 0x3ff) as i32),
        },
    ];
    v.extend_from_slice(insts);
    v
}

fn run_monitored2<E: Extension>(insts: &[Instruction], ext: E) -> (Vec<u32>, u64) {
    let full = with_prologue(insts);
    let mut sys = System::new(SystemConfig::fabric_half_speed(), ext);
    {
        let img = image(&full);
        let mem = sys.memory_mut();
        for i in 0..=full.len() {
            let a = 4 * i as u32;
            mem.write_u32(a, img.read_u32(a));
        }
    }
    let r = sys.try_run(1_000_000).expect("simulation error");
    assert_eq!(r.exit, ExitReason::Halt(0), "monitor trap? {:?}", r.monitor_trap);
    (Reg::all().map(|reg| sys.core().reg(reg)).collect(), r.cycles)
}

fn run_bare2(insts: &[Instruction]) -> (Vec<u32>, u64) {
    let full = with_prologue(insts);
    let mut mem = image(&full);
    let mut bus = SystemBus::default();
    let mut core = Core::new(CoreConfig::leon3());
    let exit = core.run(&mut mem, &mut bus, 1_000_000);
    assert_eq!(exit, ExitReason::Halt(0));
    (Reg::all().map(|r| core.reg(r)).collect(), core.quiesced_at())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every extension is architecturally transparent and costs
    /// non-negative cycles on arbitrary programs. (Traps cannot happen:
    /// the generated programs only touch scratch memory they first
    /// write... UMC is excluded since random programs do read-before-
    /// write freely; it is covered by targeted tests instead.)
    #[test]
    fn monitoring_is_transparent_and_never_free(insts in arb_program()) {
        let (regs_base, cycles_base) = run_bare2(&insts);
        let (regs_sec, cycles_sec) = run_monitored2(&insts, Sec::new());
        prop_assert_eq!(&regs_base, &regs_sec, "SEC changed results");
        prop_assert!(cycles_sec >= cycles_base);

        let (regs_dift, cycles_dift) = run_monitored2(&insts, Dift::new());
        prop_assert_eq!(&regs_base, &regs_dift, "DIFT changed results");
        prop_assert!(cycles_dift >= cycles_base);

        let (regs_bc, cycles_bc) = run_monitored2(&insts, Bc::new());
        prop_assert_eq!(&regs_base, &regs_bc, "BC changed results");
        prop_assert!(cycles_bc >= cycles_base);

        let (regs_mp, cycles_mp) = run_monitored2(&insts, Mprot::new());
        prop_assert_eq!(&regs_base, &regs_mp, "MPROT changed results");
        prop_assert!(cycles_mp >= cycles_base);
    }

    /// UMC transparency on write-before-read programs: prefixing the
    /// body with stores that initialize the whole scratch window makes
    /// random programs UMC-clean.
    #[test]
    fn umc_is_transparent_on_initialized_windows(insts in arb_program()) {
        let mut prefixed: Vec<Instruction> = (0..32)
            .map(|w| Instruction::Mem {
                op: Opcode::St,
                rd: Reg::G0,
                rs1: Reg::G7,
                op2: Operand2::Imm(w * 4),
            })
            .collect();
        prefixed.extend_from_slice(&insts);
        let (regs_base, cycles_base) = run_bare2(&prefixed);
        let (regs_umc, cycles_umc) = run_monitored2(&prefixed, Umc::new());
        prop_assert_eq!(&regs_base, &regs_umc);
        prop_assert!(cycles_umc >= cycles_base);
    }
}
