/root/repo/target/debug/deps/flexcore_workloads-095fcb20f8ea7451.d: crates/workloads/src/lib.rs crates/workloads/src/basicmath.rs crates/workloads/src/bitcount.rs crates/workloads/src/crc32.rs crates/workloads/src/dijkstra.rs crates/workloads/src/fft.rs crates/workloads/src/gmac.rs crates/workloads/src/qsort.rs crates/workloads/src/sha.rs crates/workloads/src/stringsearch.rs

/root/repo/target/debug/deps/libflexcore_workloads-095fcb20f8ea7451.rmeta: crates/workloads/src/lib.rs crates/workloads/src/basicmath.rs crates/workloads/src/bitcount.rs crates/workloads/src/crc32.rs crates/workloads/src/dijkstra.rs crates/workloads/src/fft.rs crates/workloads/src/gmac.rs crates/workloads/src/qsort.rs crates/workloads/src/sha.rs crates/workloads/src/stringsearch.rs

crates/workloads/src/lib.rs:
crates/workloads/src/basicmath.rs:
crates/workloads/src/bitcount.rs:
crates/workloads/src/crc32.rs:
crates/workloads/src/dijkstra.rs:
crates/workloads/src/fft.rs:
crates/workloads/src/gmac.rs:
crates/workloads/src/qsort.rs:
crates/workloads/src/sha.rs:
crates/workloads/src/stringsearch.rs:
