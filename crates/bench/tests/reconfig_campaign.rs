//! Campaign-level checks of the reconfig-window machinery: the
//! faultsweep/flexserve trial path triages swap-window bitstream
//! strikes with zero SDC, and sampled-boundary hot-swaps on the real
//! paper kernels leave the architectural outcome bit-identical to the
//! statically-configured run.

use flexcore::ext::Extension;
use flexcore::recovery::FaultOutcome;
use flexcore::{RunResult, SwapPolicy, System, SystemConfig};
use flexcore_asm::Program;
use flexcore_bench::swap::{self, SwapPoint};
use flexcore_bench::trial::{reconfig_trials, run_trial, swap_reference_run, CampaignSpec};
use flexcore_bench::MAX_INSTRUCTIONS;
use flexcore_workloads::Workload;

/// The supervised reconfig campaign exactly as `faultsweep --reconfig
/// --recover` and a `flexserve` reconfig job run it: even trials take
/// one bitstream strike (a retry masks it), odd trials exhaust the
/// retry budget and must come back as detected-recovered through the
/// ladder's deterministic swap replay. Nothing may classify as SDC,
/// DUE, or unclassified.
#[test]
fn reconfig_campaign_triages_strikes_and_exhaustions_cleanly() {
    let workload = Workload::bitcount();
    let spec = CampaignSpec { seed: 0xf1ec, trials: 4, recover: true, ..CampaignSpec::default() };
    let reference = swap_reference_run(&workload);
    let trials = reconfig_trials(&spec, &[workload]);
    assert_eq!(trials.len(), 4);
    for (i, t) in trials.iter().enumerate() {
        let o = run_trial(t, Some(&reference));
        let triage = o.triage.expect("supervised swap trials always classify");
        if i % 2 == 0 {
            assert_eq!(triage, FaultOutcome::Masked, "{}: one strike, one retry", t.label);
        } else {
            assert_eq!(
                triage,
                FaultOutcome::DetectedRecovered,
                "{}: exhaustion walks the ladder",
                t.label
            );
            assert!(o.mttr.unwrap_or(0) > 0, "{}: recovery took cycles", t.label);
        }
    }
}

fn run_static(program: &Program, ext: &str) -> RunResult {
    let e = swap::build_extension(ext, program).expect("known extension");
    let mut sys = System::new(SystemConfig::fabric_half_speed(), e);
    sys.load_program(program);
    sys.try_run(MAX_INSTRUCTIONS).expect("static run completes")
}

/// Hot-swaps on the real paper kernels at sampled boundaries (the
/// every-boundary sweep lives in the suite-level `hot_swap` test on
/// purpose-built short kernels): for two kernels and two extension
/// pairs, the swapped run's architectural outcome must be
/// bit-identical to the static outgoing run, with the swap completed
/// and no monitor trap.
#[test]
fn sampled_boundary_swaps_match_the_static_run_on_real_workloads() {
    for workload in [Workload::sha(), Workload::bitcount()] {
        let program = workload.program().expect("workload assembles");
        for (from, to) in [("umc", "cfi"), ("sec", "nop")] {
            let reference = run_static(&program, from);
            assert!(reference.monitor_trap.is_none(), "{} is benign under {from}", workload.name());
            let incoming = run_static(&program, to);
            assert!(incoming.monitor_trap.is_none(), "{} is benign under {to}", workload.name());
            for num in [1u64, 2, 4] {
                let boundary = (reference.instret * num / 5).max(1);
                let mut sys: System<Box<dyn Extension>> = System::new(
                    SystemConfig::fabric_half_speed(),
                    swap::build_extension(from, &program).expect("known extension"),
                );
                sys.load_program(&program);
                let point =
                    SwapPoint { at_commit: boundary, to: to.into(), policy: SwapPolicy::Reset };
                swap::schedule(&mut sys, &point, &program).expect("swap schedules");
                let r = sys.try_run(MAX_INSTRUCTIONS).expect("swapped run completes");
                let ctx = format!("{} {from}->{to} at {boundary}", workload.name());
                assert!(r.monitor_trap.is_none(), "{ctx}");
                assert_eq!(r.exit, reference.exit, "{ctx}");
                assert_eq!(r.instret, reference.instret, "{ctx}");
                assert_eq!(r.console, reference.console, "{ctx}");
                assert_eq!(r.resilience.swaps_completed, 1, "{ctx}");
                let [report] = sys.swap_reports() else {
                    panic!("{ctx}: exactly one swap report");
                };
                assert_eq!(report.at_commit, boundary, "{ctx}");
                assert_eq!(report.policy, SwapPolicy::Reset, "{ctx}");
                assert!(report.frames > 0, "{ctx}: bitstream was framed");
                assert!(report.rearmed_cycle > report.quiesce_cycle, "{ctx}");
            }
        }
    }
}
