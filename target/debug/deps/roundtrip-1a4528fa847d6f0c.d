/root/repo/target/debug/deps/roundtrip-1a4528fa847d6f0c.d: crates/asm/tests/roundtrip.rs

/root/repo/target/debug/deps/libroundtrip-1a4528fa847d6f0c.rmeta: crates/asm/tests/roundtrip.rs

crates/asm/tests/roundtrip.rs:
