/root/repo/target/debug/deps/faultsweep-624e940fbf21e446.d: crates/bench/src/bin/faultsweep.rs Cargo.toml

/root/repo/target/debug/deps/libfaultsweep-624e940fbf21e446.rmeta: crates/bench/src/bin/faultsweep.rs Cargo.toml

crates/bench/src/bin/faultsweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
