//! Micro-benchmarks: the netlist construction, technology mapping, and
//! cost-model pipeline behind Table III.

use flexcore::ext::{Bc, Dift, Sec, Umc};
use flexcore::Extension;
use flexcore_bench::microbench::Harness;
use flexcore_fabric::{map_to_luts, AsicCost, FpgaCost};

fn main() {
    let h = Harness::new();

    h.run("netlist_build/umc", || Umc::new().netlist());
    h.run("netlist_build/sec", || Sec::new().netlist());

    for (name, netlist) in [
        ("lut_mapping/umc", Umc::new().netlist()),
        ("lut_mapping/dift", Dift::new().netlist()),
        ("lut_mapping/bc", Bc::new().netlist()),
        ("lut_mapping/sec", Sec::new().netlist()),
    ] {
        h.run(name, || map_to_luts(&netlist, 6).lut_count());
    }

    let netlist = Sec::new().netlist();
    h.run("fpga_cost_sec", || FpgaCost::of(&netlist).area_um2());
    h.run("asic_cost_sec", || AsicCost::of(&netlist).area_um2());
}
