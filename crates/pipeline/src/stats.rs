//! Core execution statistics.

use flexcore_isa::{InstrClass, NUM_INSTR_CLASSES};

/// Counters the core maintains while executing.
///
/// Cache statistics live on the caches themselves (see
/// [`Core::icache_stats`](crate::Core::icache_stats) /
/// [`Core::dcache_stats`](crate::Core::dcache_stats)); bus statistics on
/// the [`SystemBus`](flexcore_mem::SystemBus).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Committed (architecturally executed) instructions.
    pub instret: u64,
    /// Delay-slot instructions annulled by a branch.
    pub annulled: u64,
    /// Committed instructions per [`InstrClass`].
    pub per_class: [u64; NUM_INSTR_CLASSES],
    /// Cycles spent stalled because an external agent (the FlexCore
    /// forward FIFO) back-pressured the commit stage.
    pub external_stall_cycles: u64,
    /// Cycles spent waiting on the write-through store buffer.
    pub store_stall_cycles: u64,
}

impl CoreStats {
    /// Committed instructions of one class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        self.per_class[class.index()]
    }

    /// Fraction of committed instructions in classes selected by
    /// `pred` (e.g. loads+stores). Returns 0 for an empty run.
    pub fn class_fraction(&self, mut pred: impl FnMut(InstrClass) -> bool) -> f64 {
        if self.instret == 0 {
            return 0.0;
        }
        let selected: u64 =
            InstrClass::all().filter(|&c| pred(c)).map(|c| self.per_class[c.index()]).sum();
        selected as f64 / self.instret as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_fraction_of_empty_run_is_zero() {
        let s = CoreStats::default();
        assert_eq!(s.class_fraction(|_| true), 0.0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // per_class is an array; a literal would be noise
    fn class_fraction_counts_selected_classes() {
        let mut s = CoreStats::default();
        s.instret = 10;
        s.per_class[InstrClass::Ld.index()] = 3;
        s.per_class[InstrClass::St.index()] = 2;
        s.per_class[InstrClass::Add.index()] = 5;
        assert_eq!(s.class_fraction(|c| c.is_mem()), 0.5);
        assert_eq!(s.class_fraction(|c| c.is_load()), 0.3);
    }
}
