/root/repo/target/debug/deps/mem_subsystem-968a07e3514239f4.d: crates/bench/benches/mem_subsystem.rs

/root/repo/target/debug/deps/libmem_subsystem-968a07e3514239f4.rmeta: crates/bench/benches/mem_subsystem.rs

crates/bench/benches/mem_subsystem.rs:
