//! The bounded, priority-ordered job queue.
//!
//! Thread-safe (clients submit while the scheduler drains), bounded
//! (admission applies backpressure instead of growing without limit),
//! and accountable (shed jobs leave a [`ShedRecord`] trail).

use std::sync::Mutex;

use crate::admission::{AdmissionStats, AdmitError, ShedRecord};
use crate::job::{JobId, JobSpec};

/// Per-queued-job backpressure hint: each job ahead of a resubmission
/// is assumed to cost at least this long, so the hint scales with
/// depth.
const RETRY_HINT_MS_PER_JOB: u64 = 500;

#[derive(Debug)]
struct Queued {
    spec: JobSpec,
    id: JobId,
    seq: u64,
}

#[derive(Debug, Default)]
struct Inner {
    jobs: Vec<Queued>,
    stats: AdmissionStats,
    shed: Vec<ShedRecord>,
    seq: u64,
}

/// Bounded priority queue of campaign jobs.
#[derive(Debug)]
pub struct JobQueue {
    max_depth: usize,
    inner: Mutex<Inner>,
}

impl JobQueue {
    /// An empty queue admitting at most `max_depth` queued jobs
    /// (clamped to ≥ 1).
    pub fn new(max_depth: usize) -> JobQueue {
        JobQueue { max_depth: max_depth.max(1), inner: Mutex::new(Inner::default()) }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned queue mutex means a panic while holding the lock;
        // the queue state itself is just Vec bookkeeping, so recover it
        // rather than cascading the panic into every other client.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Submits a job, applying admission control:
    ///
    /// * duplicate campaign hash → typed [`AdmitError::Duplicate`];
    /// * full queue, but the new job outranks the lowest-priority
    ///   queued job → that job is shed (recorded) and the new one
    ///   admitted — graceful degradation under overload;
    /// * full queue otherwise → typed [`AdmitError::Rejected`] with a
    ///   `retry_after_ms` backpressure hint.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, AdmitError> {
        let id = spec.id();
        let mut inner = self.locked();
        if inner.jobs.iter().any(|q| q.id == id) {
            inner.stats.duplicates += 1;
            return Err(AdmitError::Duplicate { id });
        }
        if inner.jobs.len() >= self.max_depth {
            // Shed the lowest-priority queued job iff strictly below
            // the newcomer; among equals the newest submission goes
            // (oldest work has waited longest and keeps its slot).
            let victim = inner
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, q)| q.spec.priority < spec.priority)
                .min_by_key(|(_, q)| (q.spec.priority, std::cmp::Reverse(q.seq)))
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let gone = inner.jobs.remove(i);
                    inner.stats.shed += 1;
                    inner.shed.push(ShedRecord {
                        id: gone.id,
                        name: gone.spec.name,
                        priority: gone.spec.priority,
                        displaced_by: id,
                    });
                }
                None => {
                    inner.stats.rejected += 1;
                    let depth = inner.jobs.len();
                    return Err(AdmitError::Rejected {
                        depth,
                        max_depth: self.max_depth,
                        retry_after_ms: depth as u64 * RETRY_HINT_MS_PER_JOB,
                    });
                }
            }
        }
        inner.seq += 1;
        let seq = inner.seq;
        inner.jobs.push(Queued { spec, id, seq });
        inner.stats.admitted += 1;
        Ok(id)
    }

    /// Removes and returns the next job: highest priority first, FIFO
    /// within a priority.
    pub fn pop(&self) -> Option<JobSpec> {
        let mut inner = self.locked();
        let best = inner
            .jobs
            .iter()
            .enumerate()
            .max_by_key(|(_, q)| (q.spec.priority, std::cmp::Reverse(q.seq)))
            .map(|(i, _)| i)?;
        Some(inner.jobs.remove(best).spec)
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.locked().jobs.len()
    }

    /// Admission counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.locked().stats
    }

    /// The accounting trail of every shed job, in shedding order.
    pub fn shed_log(&self) -> Vec<ShedRecord> {
        self.locked().shed.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, seed: u64, priority: u8) -> JobSpec {
        JobSpec { name: name.into(), seed, priority, ..JobSpec::default() }
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(8);
        q.submit(job("low-a", 1, 1)).expect("admitted");
        q.submit(job("high", 2, 5)).expect("admitted");
        q.submit(job("low-b", 3, 1)).expect("admitted");
        assert_eq!(q.pop().expect("job").name, "high");
        assert_eq!(q.pop().expect("job").name, "low-a");
        assert_eq!(q.pop().expect("job").name, "low-b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn duplicates_are_typed() {
        let q = JobQueue::new(8);
        let id = q.submit(job("a", 1, 1)).expect("admitted");
        // Same work-defining fields, different name: same campaign.
        let err = q.submit(job("a-again", 1, 3)).expect_err("duplicate");
        assert_eq!(err, AdmitError::Duplicate { id });
        assert_eq!(q.stats().duplicates, 1);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn full_queue_rejects_with_backpressure_hint() {
        let q = JobQueue::new(2);
        q.submit(job("a", 1, 2)).expect("admitted");
        q.submit(job("b", 2, 2)).expect("admitted");
        let err = q.submit(job("c", 3, 2)).expect_err("equal priority cannot displace");
        let AdmitError::Rejected { depth, max_depth, retry_after_ms } = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert_eq!((depth, max_depth), (2, 2));
        assert!(retry_after_ms > 0, "the hint tells the client when to retry");
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn overload_sheds_the_lowest_priority_with_accounting() {
        let q = JobQueue::new(2);
        let low = q.submit(job("low", 1, 1)).expect("admitted");
        q.submit(job("mid", 2, 3)).expect("admitted");
        let high = q.submit(job("high", 3, 5)).expect("displaces the low job");
        assert_eq!(q.depth(), 2);
        let shed = q.shed_log();
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, low);
        assert_eq!(shed[0].name, "low");
        assert_eq!(shed[0].displaced_by, high);
        assert_eq!(q.stats(), AdmissionStats { admitted: 3, rejected: 0, duplicates: 0, shed: 1 });
        // The shed job is really gone; the survivors drain by priority.
        assert_eq!(q.pop().expect("job").name, "high");
        assert_eq!(q.pop().expect("job").name, "mid");
        assert!(q.pop().is_none());
    }
}
