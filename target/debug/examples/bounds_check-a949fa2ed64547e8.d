/root/repo/target/debug/examples/bounds_check-a949fa2ed64547e8.d: examples/bounds_check.rs Cargo.toml

/root/repo/target/debug/examples/libbounds_check-a949fa2ed64547e8.rmeta: examples/bounds_check.rs Cargo.toml

examples/bounds_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
