//! SPARC-V8-subset instruction set model.
//!
//! This crate models the instruction set executed by the Leon3-like core
//! in the FlexCore reproduction. It covers the subset of SPARC V8 needed
//! by the MiBench-style workloads and by the FlexCore co-processor
//! interface:
//!
//! * format-3 integer ALU operations (with and without condition-code
//!   updates), shifts, multiply and divide,
//! * format-3 loads and stores (word, halfword, byte; signed and
//!   unsigned),
//! * format-2 `sethi` and conditional branches (with annul bit),
//! * format-1 `call`, plus `jmpl` for indirect jumps and returns,
//! * `save`/`restore` (modeled as plain adds on a flat register file),
//! * the two co-processor opcode spaces `cpop1`/`cpop2`, which FlexCore
//!   uses for software-visible monitor operations (set/clear tags, read
//!   from co-processor, set policy registers),
//! * `ta` (trap always), used by workloads to terminate.
//!
//! The crate provides bidirectional conversion between the 32-bit
//! machine encoding and a decoded [`Instruction`] value, a disassembler,
//! and the classification of every instruction into one of the 32
//! *instruction types* that the FlexCore forwarding configuration
//! register (CFGR) switches on (Table II of the paper).
//!
//! # Example
//!
//! ```
//! use flexcore_isa::{decode, encode, Instruction, Opcode, Operand2, Reg};
//!
//! // add %g1, 4, %g2
//! let inst = Instruction::alu(Opcode::Add, Reg::G1, Reg::G2, Operand2::Imm(4));
//! let word = encode(&inst);
//! assert_eq!(decode(word).unwrap(), inst);
//! assert_eq!(inst.to_string(), "add %g1, 4, %g2");
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod class;
mod cond;
mod decode;
mod disasm;
mod encode;
mod inst;
pub mod interp;
mod opcode;
mod reg;

pub use class::{classify, InstrClass, NUM_INSTR_CLASSES};
pub use cond::{Cond, IccFlags, ParseCondError};
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use inst::{Instruction, Operand2};
pub use opcode::Opcode;
pub use reg::{ParseRegError, Reg, NUM_REGS};
