/root/repo/target/debug/deps/flexcore_pipeline-504f53199f502188.d: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

/root/repo/target/debug/deps/flexcore_pipeline-504f53199f502188: crates/pipeline/src/lib.rs crates/pipeline/src/alu.rs crates/pipeline/src/config.rs crates/pipeline/src/core.rs crates/pipeline/src/stats.rs crates/pipeline/src/trace.rs

crates/pipeline/src/lib.rs:
crates/pipeline/src/alu.rs:
crates/pipeline/src/config.rs:
crates/pipeline/src/core.rs:
crates/pipeline/src/stats.rs:
crates/pipeline/src/trace.rs:
