/root/repo/target/debug/deps/flexcore_asm-6f6607c5ab42337d.d: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs Cargo.toml

/root/repo/target/debug/deps/libflexcore_asm-6f6607c5ab42337d.rmeta: crates/asm/src/lib.rs crates/asm/src/emit.rs crates/asm/src/error.rs crates/asm/src/parse.rs crates/asm/src/program.rs Cargo.toml

crates/asm/src/lib.rs:
crates/asm/src/emit.rs:
crates/asm/src/error.rs:
crates/asm/src/parse.rs:
crates/asm/src/program.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
