/root/repo/target/debug/examples/custom_monitor-a5364df0ec6e8050.d: examples/custom_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_monitor-a5364df0ec6e8050.rmeta: examples/custom_monitor.rs Cargo.toml

examples/custom_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
