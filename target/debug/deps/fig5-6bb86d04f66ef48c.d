/root/repo/target/debug/deps/fig5-6bb86d04f66ef48c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-6bb86d04f66ef48c.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
