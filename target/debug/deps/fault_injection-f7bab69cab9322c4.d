/root/repo/target/debug/deps/fault_injection-f7bab69cab9322c4.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-f7bab69cab9322c4: tests/fault_injection.rs

tests/fault_injection.rs:
